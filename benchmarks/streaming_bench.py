#!/usr/bin/env python
"""Giga-trace streaming benchmark: bounded-RSS, bit-identical smoke.

Synthesizes a multi-million-instruction binary ChampSim capture and
drives ``python -m repro trace simulate`` as *subprocesses*, one per
phase, so each phase's ``resource.getrusage`` peak RSS is isolated
(``ru_maxrss`` is process-lifetime-max — in-process phases would
contaminate each other).  Phases::

    streamed fast      --+
    streamed batched   --+-- peak RSS must stay under --rss-cap-mib
    materialized reference   (no cap: the low-memory unchunked kernel,
                              the ground truth the digests diff against)

The run FAILS (exit 1) when any ``stats_sha256`` diverges or a streamed
phase exceeds the RSS cap; both are hard acceptance contracts of the
streaming pipeline, not advisory trends.  Per-kernel streamed ==
materialized identity at full kernel coverage is enforced by the tier-1
suite (``tests/sim/test_streaming_exec.py``); this script scales two
streamed kernels to giga-trace length where materializing *boxed*
kernels would not fit the cap.

The fixture mixes a small L1-resident hot set into a 64K-line footprint
(``hot_fraction=0.95``) so the run exercises the streaming machinery at
realistic per-record cost instead of benchmarking the miss path.

Usage::

    PYTHONPATH=src python benchmarks/streaming_bench.py \
        --records 10000000 --out benchmarks/BENCH_streaming.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fixture shape — keep in sync with BENCH_streaming.json when changed.
FIXTURE = {
    "seed": 7,
    "cores": 4,
    "footprint_lines": 1 << 16,
    "hot_lines": 6,
    "hot_fraction": 0.95,
    "write_fraction": 0.05,
}

PHASES = (
    {"name": "streamed-fast", "kernel": "fast", "stream": True},
    {"name": "streamed-batched", "kernel": "batched", "stream": True},
    {"name": "materialized-reference", "kernel": "reference", "stream": False},
)


def synthesize(path: Path, records: int) -> float:
    from repro.workloads.champsim_bin import synthesize_champsim_bin

    start = time.monotonic()
    synthesize_champsim_bin(path, records, **FIXTURE_KWARGS())
    return time.monotonic() - start


def FIXTURE_KWARGS() -> dict:
    kwargs = dict(FIXTURE)
    kwargs.pop("cores")
    return kwargs


def run_phase(capture: Path, phase: dict, scheme: str) -> dict:
    argv = [
        sys.executable, "-m", "repro", "trace", "simulate", str(capture),
        "--cores", str(FIXTURE["cores"]), "--scheme", scheme,
        "--kernel", phase["kernel"], "--json",
    ]
    if not phase["stream"]:
        argv.append("--no-stream")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    start = time.monotonic()
    proc = subprocess.run(argv, capture_output=True, text=True, env=env)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        raise SystemExit(
            f"phase {phase['name']} failed ({proc.returncode}):\n{proc.stderr}"
        )
    result = json.loads(proc.stdout.strip().splitlines()[-1])
    result["phase"] = phase["name"]
    result["elapsed_s"] = round(elapsed, 2)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000_000,
                        help="fixture length in instructions (default 10M)")
    parser.add_argument("--rss-cap-mib", type=int, default=512,
                        help="hard peak-RSS ceiling for streamed phases")
    parser.add_argument("--scheme", default="RT-3")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here (e.g. "
                             "benchmarks/BENCH_streaming.json)")
    parser.add_argument("--keep-fixture", type=Path, default=None,
                        help="synthesize into this path and keep it")
    args = parser.parse_args(argv)

    workdir = None
    if args.keep_fixture is not None:
        capture = args.keep_fixture
    else:
        workdir = tempfile.TemporaryDirectory(prefix="streaming-bench-")
        capture = Path(workdir.name) / "fixture.trace.xz"

    try:
        synth_s = synthesize(capture, args.records)
        size_mib = capture.stat().st_size / (1 << 20)
        print(f"fixture: {args.records} instructions, "
              f"{size_mib:.1f} MiB compressed, synthesized in {synth_s:.1f}s")

        results = [run_phase(capture, phase, args.scheme) for phase in PHASES]
        for result in results:
            print(f"  {result['phase']:<24} {result['elapsed_s']:>7.1f}s  "
                  f"rss {result['max_rss_kib'] / 1024:>6.1f} MiB  "
                  f"sha256 {result['stats_sha256'][:12]}")

        failures = []
        digests = {result["stats_sha256"] for result in results}
        if len(digests) != 1:
            failures.append(f"stats digests diverge: {sorted(digests)}")
        for result in results:
            if result["records"] != args.records:
                failures.append(
                    f"{result['phase']}: simulated {result['records']} "
                    f"records, expected {args.records}")
        cap_kib = args.rss_cap_mib * 1024
        for result, phase in zip(results, PHASES):
            if phase["stream"] and result["max_rss_kib"] > cap_kib:
                failures.append(
                    f"{result['phase']}: peak RSS "
                    f"{result['max_rss_kib'] / 1024:.0f} MiB exceeds the "
                    f"{args.rss_cap_mib} MiB cap")

        report = {
            "note": (
                "Streaming giga-trace smoke record (benchmarks/"
                "streaming_bench.py). stats_sha256 equality and the "
                "streamed RSS cap are hard gates; elapsed seconds are "
                "machine-specific context."
            ),
            "records": args.records,
            "scheme": args.scheme,
            # compressed_mib stays OUT of "fixture": the recipe dict is
            # diffed machine-to-machine in CI and xz output size can
            # vary across liblzma versions.
            "fixture": dict(FIXTURE),
            "compressed_mib": round(size_mib, 1),
            "rss_cap_mib": args.rss_cap_mib,
            "phases": results,
            "ok": not failures,
        }
        if args.out is not None:
            args.out.write_text(json.dumps(report, indent=2, sort_keys=True)
                                + "\n", encoding="utf-8")
            print(f"report written to {args.out}")

        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"OK: {len(results)} phases bit-identical, streamed RSS under "
              f"{args.rss_cap_mib} MiB at {args.records} records")
        return 0
    finally:
        if workdir is not None:
            workdir.cleanup()


if __name__ == "__main__":
    sys.exit(main())
