"""Figure 10: cluster-size sensitivity for replica placement."""

from repro.experiments.fig10_cluster import (
    normalized_tables,
    render_fig10,
    run_fig10,
)
from repro.experiments.reporting import geomean

FIG10_SUBSET = ("BARNES", "STREAMCLUSTER", "RAYTRACE", "FLUIDANIMATE")


def test_fig10_cluster(benchmark, setup):
    results = benchmark.pedantic(
        run_fig10, args=(setup, FIG10_SUBSET), rounds=1, iterations=1
    )
    energy, completion = normalized_tables(results)
    print()
    print(render_fig10(energy, completion))
    labels = list(next(iter(completion.values())).keys())
    largest = labels[-1]
    # The paper's conclusion: cluster size 1 is optimal on average —
    # larger clusters lose data locality without enough miss-rate gain.
    geo_c1 = geomean(row["C-1"] for row in completion.values())
    geo_largest = geomean(row[largest] for row in completion.values())
    assert geo_c1 <= geo_largest
