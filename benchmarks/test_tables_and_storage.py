"""Tables 1 and 2 plus the Section 2.4.1 storage-overhead table."""

import pytest

from repro.common.params import MachineConfig
from repro.experiments.storage import render_storage, storage_report
from repro.experiments.tables import render_table1, render_table2


def test_table1(benchmark):
    text = benchmark(render_table1, MachineConfig.paper())
    print()
    print(text)
    assert "64 @ 1 GHz" in text
    assert "ACKwise_4" in text


def test_table2(benchmark):
    text = benchmark(render_table2)
    print()
    print(text)
    assert "BARNES" in text
    assert "64K particles" in text


def test_storage_overheads(benchmark):
    report = benchmark(storage_report, MachineConfig.paper())
    print()
    print(render_storage(report))
    assert report.replica_reuse_kb == pytest.approx(1.0)
    assert report.limited_k_kb == pytest.approx(13.5)
    assert report.complete_kb == pytest.approx(96.0)
    assert report.locality_total_kb == pytest.approx(14.5)
