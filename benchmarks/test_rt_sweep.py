"""Section 4.1's RT exploration: RT between 1 and 8."""

from repro.experiments.rt_sweep import (
    best_rt_by_edp,
    render_rt_sweep,
    run_rt_sweep,
)

SWEEP_SUBSET = ("BARNES", "FLUIDANIMATE", "STREAMCLUSTER")
RT_POINTS = (1, 2, 3, 4, 8)


def test_rt_sweep(benchmark, setup):
    results = benchmark.pedantic(
        run_rt_sweep,
        args=(setup, SWEEP_SUBSET, RT_POINTS),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_rt_sweep(results))
    best = best_rt_by_edp(results)
    # The paper finds a mid-range threshold optimal (RT = 3); at reduced
    # scale we accept any interior optimum — the extremes must not win
    # outright on the pressure benchmarks.
    assert best in (1, 2, 3, 4)
    fluid = results["FLUIDANIMATE"]
    assert fluid[3].total_energy <= fluid[1].total_energy * 1.02
