"""Engine micro-benchmarks: simulated accesses per second per scheme.

These measure the *simulator's* throughput (not the modelled machine),
which is what a user extending the library cares about when sizing
experiments.
"""

import pytest

from repro.common.params import MachineConfig
from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import build_trace, get_profile


@pytest.fixture(scope="module")
def shared_trace():
    config = MachineConfig.small()
    return config, build_trace(get_profile("WATER-NSQ"), config, scale=0.15, seed=1)


@pytest.mark.parametrize("scheme", ["S-NUCA", "R-NUCA", "VR", "ASR", "RT-3"])
def test_scheme_throughput(benchmark, shared_trace, scheme):
    config, traces = shared_trace

    def run():
        return simulate(make_scheme(scheme, config), traces)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.completion_time > 0


def test_trace_generation_throughput(benchmark):
    config = MachineConfig.small()

    def build():
        return build_trace(get_profile("BARNES"), config, scale=0.5, seed=11)

    traces = benchmark.pedantic(build, rounds=3, iterations=1)
    assert traces.total_accesses() > 0
