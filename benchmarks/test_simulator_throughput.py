"""Engine micro-benchmarks: simulated accesses per second per scheme.

These measure the *simulator's* throughput (not the modelled machine),
which is what a user extending the library cares about when sizing
experiments.  Three workload regimes are measured:

* ``WATER-NSQ`` at reduced scale — miss-heavy, dominated by the protocol
  engine (directory, mesh, DRAM models);
* ``HOTLOOP`` — an L1-resident loop where ~95% of accesses hit and all
  cores progress in lockstep; the event loop itself is the throughput
  ceiling and the fast kernel's hoisting pays (≥2× over reference is
  asserted here);
* ``RUNHEAVY`` — a load-imbalanced trace where one hit-heavy core runs
  long same-core L1-hit runs while the other cores stream and park at
  barriers.  This is the regime the batched kernel targets: whole runs
  are serviced per scheduler entry, and ≥1.3× over the *fast* kernel is
  asserted here;
* ``REPLHEAVY`` — the same load-imbalanced shape, but the straggler's
  working set overflows its L1 and is *shared*, so under the
  locality-aware scheme most of its accesses are serviced by local LLC
  replicas.  This is the paper's headline regime and the target of the
  batched kernel's local-replica fast path: replica hits batch like L1
  hits instead of single-stepping the miss path, and ≥1.3× over the
  *fast* kernel is asserted here.

The ``RUNHEAVY`` regime is also the vector kernel's acceptance gate:
its long zero-gap hit runs are serviced array-at-a-time (one numpy
span commit instead of tens of thousands of scheduler entries), and
≥10× over the *reference* kernel is asserted here.  The other regimes
cannot reach 10× by construction — ``HOTLOOP``'s lockstep scheduling
caps every span at a handful of records, and ``REPLHEAVY``'s replica
hits delegate to the batched closure's sequential LRU churn — so, as
with the batched gate, the vector floor is asserted only where the
kernel's design target lies; everywhere else the differential tests
pin bit-identity and ``choose_kernel`` is asserted to pick vector only
where it wins.

Every regime is measured under all four kernels so the uploaded
benchmark JSON (and the checked-in ``benchmarks/baseline.json`` trend
diff) tracks each kernel separately.
"""

import os
import time

import numpy as np
import pytest

#: Minimum fast/reference speedup asserted by the kernel gate.  Defaults
#: to the 2x acceptance bar (locally measured ~3x); noisy shared CI
#: runners can relax it via the environment without losing the gate.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_KERNEL_SPEEDUP_MIN", "2.0"))

#: Minimum batched/fast speedup on the run-heavy regime (locally ~1.5x).
BATCHED_SPEEDUP_FLOOR = float(os.environ.get("REPRO_BATCHED_SPEEDUP_MIN", "1.3"))

#: Minimum vector/reference speedup on the run-heavy regime (locally
#: ~10-14x; noisy shared CI runners relax it via the environment).
VECTOR_SPEEDUP_FLOOR = float(os.environ.get("REPRO_VECTOR_SPEEDUP_MIN", "10.0"))

from repro.common.addr import Region
from repro.common.params import MachineConfig
from repro.common.types import AccessType, LineClass
from repro.schemes.factory import make_scheme
from repro.sim.kernel import choose_kernel, kernel_names
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import BenchmarkProfile, build_trace, get_profile
from repro.workloads.trace import CoreTrace, TraceSet

KERNELS = tuple(kernel_names())  # ("reference", "fast", "batched", "vector")

#: L1-resident loop: the hit-heavy regime where loop overhead dominates.
HOTLOOP_PROFILE = BenchmarkProfile(
    name="HOTLOOP",
    description="L1-resident loop mix exercising the simulator hot path",
    f_ifetch=0.15,
    f_private=0.70,
    f_shared_ro=0.10,
    f_shared_rw=0.05,
    instr_ws_x_l1i=0.3,
    private_ws_x_l1d=0.4,
    shared_ro_ws_x_l1d=0.3,
    shared_rw_ws_x_l1d=0.3,
    private_burst=10,
    write_frac_rw=0.02,
    mean_gap=1.0,
    accesses_per_core=20000,
    barriers=2,
)


def build_runheavy_traces(
    config: MachineConfig,
    phases: int = 6,
    hit_per_phase: int = 10000,
    stream_per_phase: int = 12,
) -> TraceSet:
    """Load-imbalanced trace with long same-core L1-hit runs.

    Core 0 sweeps an L1-resident region with zero compute gaps (pure
    hit bursts); every other core issues a handful of streaming accesses
    over a region far beyond the LLC and parks at the phase barrier.
    Once the streamers park, core 0 runs the rest of its phase with an
    empty ready heap — the longest possible scheduling runs, which is
    exactly where the batched kernel's run servicing pays.
    """
    num_cores = config.num_cores
    hit_lines = max(4, config.l1d.lines // 2)
    stream_lines = config.llc_slice.lines * num_cores * 4
    hit_region = Region(0, hit_lines)
    stream_region = Region(hit_lines, stream_lines)
    regions = [(hit_region, LineClass.PRIVATE), (stream_region, LineClass.SHARED_RW)]
    barrier = np.uint8(AccessType.BARRIER)

    def phased(types, lines, gaps, per_phase):
        chunks = []
        for phase in range(phases):
            start = phase * per_phase
            chunks.append((types[start:start + per_phase],
                           lines[start:start + per_phase],
                           gaps[start:start + per_phase]))
        out_types = np.concatenate(
            [part for t, _l, _g in chunks for part in (t, np.full(1, barrier))]
        )
        out_lines = np.concatenate(
            [part for _t, l, _g in chunks
             for part in (l, np.zeros(1, dtype=np.int64))]
        )
        out_gaps = np.concatenate(
            [part for _t, _l, g in chunks
             for part in (g, np.zeros(1, dtype=np.uint16))]
        )
        return CoreTrace(out_types, out_lines, out_gaps)

    cores = []
    total_hits = phases * hit_per_phase
    offsets = np.arange(total_hits) % hit_lines
    cores.append(phased(
        np.full(total_hits, int(AccessType.READ), dtype=np.uint8),
        (hit_region.base + offsets).astype(np.int64),
        np.zeros(total_hits, dtype=np.uint16),
        hit_per_phase,
    ))
    total_stream = phases * stream_per_phase
    for core in range(1, num_cores):
        offsets = (np.arange(total_stream) * 7 + core * 1013) % stream_lines
        cores.append(phased(
            np.full(total_stream, int(AccessType.READ), dtype=np.uint8),
            (stream_region.base + offsets).astype(np.int64),
            np.full(total_stream, 20, dtype=np.uint16),
            stream_per_phase,
        ))
    return TraceSet("RUNHEAVY", cores, regions)


def build_replheavy_traces(
    config: MachineConfig,
    phases: int = 6,
    hit_per_phase: int = 10000,
    stream_per_phase: int = 12,
    ws_x_l1d: float = 2.0,
) -> TraceSet:
    """Load-imbalanced trace whose straggler is replica-hit-dominated.

    Core 0 sweeps a *shared* region twice the L1-D capacity with zero
    compute gaps: too big to live in the L1, small enough that (under
    the locality-aware scheme) every line earns a local replica, so in
    steady state each access is either an L1 hit or a local-replica hit
    with a local victim merge — exactly the constant-latency run the
    replica fast path batches.  Every other core makes one pass over the
    region in the first phase (marking its pages shared, so R-NUCA
    distributes the homes and replicas actually help), then streams far
    beyond the LLC and parks at the phase barrier, leaving core 0 the
    longest possible scheduling runs.
    """
    num_cores = config.num_cores
    replica_lines = max(8, round(config.l1d.lines * ws_x_l1d))
    stream_lines = config.llc_slice.lines * num_cores * 4
    replica_region = Region(0, replica_lines)
    stream_region = Region(replica_lines, stream_lines)
    regions = [
        (replica_region, LineClass.SHARED_RO),
        (stream_region, LineClass.SHARED_RW),
    ]
    barrier = np.uint8(AccessType.BARRIER)

    def with_barriers(chunks):
        out_types = np.concatenate(
            [part for t, _l, _g in chunks for part in (t, np.full(1, barrier))]
        )
        out_lines = np.concatenate(
            [part for _t, l, _g in chunks
             for part in (l, np.zeros(1, dtype=np.int64))]
        )
        out_gaps = np.concatenate(
            [part for _t, _l, g in chunks
             for part in (g, np.zeros(1, dtype=np.uint16))]
        )
        return CoreTrace(out_types, out_lines, out_gaps)

    cores = []
    sweep = np.arange(hit_per_phase) % replica_lines
    cores.append(with_barriers([
        (np.full(hit_per_phase, int(AccessType.READ), dtype=np.uint8),
         (replica_region.base + sweep).astype(np.int64),
         np.zeros(hit_per_phase, dtype=np.uint16))
        for _phase in range(phases)
    ]))
    warm = np.arange(replica_lines)
    for core in range(1, num_cores):
        chunks = []
        for phase in range(phases):
            offsets = (
                (np.arange(stream_per_phase) * 7 + core * 1013
                 + phase * stream_per_phase * 7) % stream_lines
            )
            types = np.full(stream_per_phase, int(AccessType.READ), dtype=np.uint8)
            lines = (stream_region.base + offsets).astype(np.int64)
            gaps = np.full(stream_per_phase, 20, dtype=np.uint16)
            if phase == 0:
                # One shared pass over the replica region: R-NUCA sees
                # multiple touchers and spreads the homes.
                types = np.concatenate([
                    np.full(replica_lines, int(AccessType.READ), dtype=np.uint8),
                    types,
                ])
                lines = np.concatenate([
                    (replica_region.base + warm).astype(np.int64), lines,
                ])
                gaps = np.concatenate([
                    np.zeros(replica_lines, dtype=np.uint16), gaps,
                ])
            chunks.append((types, lines, gaps))
        cores.append(with_barriers(chunks))
    return TraceSet("REPLHEAVY", cores, regions)


@pytest.fixture(scope="module")
def shared_trace():
    config = MachineConfig.small()
    return config, build_trace(get_profile("WATER-NSQ"), config, scale=0.15, seed=1)


@pytest.fixture(scope="module")
def hotloop_trace():
    config = MachineConfig.small()
    return config, build_trace(HOTLOOP_PROFILE, config, scale=1.0, seed=1)


@pytest.fixture(scope="module")
def runheavy_trace():
    config = MachineConfig.small()
    return config, build_runheavy_traces(config)


@pytest.fixture(scope="module")
def replheavy_trace():
    config = MachineConfig.small()
    return config, build_replheavy_traces(config)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("scheme", ["S-NUCA", "R-NUCA", "VR", "ASR", "RT-3"])
def test_scheme_throughput(benchmark, shared_trace, scheme, kernel):
    config, traces = shared_trace

    def run():
        return simulate(make_scheme(scheme, config), traces, kernel=kernel)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["accesses_per_second"] = (
        traces.total_accesses() / benchmark.stats.stats.mean
    )
    assert stats.completion_time > 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_hotloop_throughput(benchmark, hotloop_trace, kernel):
    config, traces = hotloop_trace

    def run():
        return simulate(make_scheme("RT-3", config), traces, kernel=kernel)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["accesses_per_second"] = (
        traces.total_accesses() / benchmark.stats.stats.mean
    )
    assert stats.completion_time > 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_runheavy_throughput(benchmark, runheavy_trace, kernel):
    config, traces = runheavy_trace

    def run():
        return simulate(make_scheme("RT-3", config), traces, kernel=kernel)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["accesses_per_second"] = (
        traces.total_accesses() / benchmark.stats.stats.mean
    )
    assert stats.completion_time > 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_replheavy_throughput(benchmark, replheavy_trace, kernel):
    config, traces = replheavy_trace

    def run():
        return simulate(make_scheme("RT-3", config), traces, kernel=kernel)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["accesses_per_second"] = (
        traces.total_accesses() / benchmark.stats.stats.mean
    )
    # The regime is meaningful only while replicas service the straggler.
    assert stats.miss_breakdown()["LLC-Replica-Hits"] > 0.5


def _best_rate(kernel, scheme, config, traces, rounds=3):
    accesses = traces.total_accesses()
    best = float("inf")
    for _ in range(rounds):
        engine = make_scheme(scheme, config)
        started = time.perf_counter()
        simulate(engine, traces, kernel=kernel)
        best = min(best, time.perf_counter() - started)
    return accesses / best


@pytest.mark.parametrize("scheme", ["S-NUCA", "RT-3"])
def test_fast_kernel_speedup_at_least_2x(hotloop_trace, scheme):
    """Acceptance gate: ≥2× simulated-accesses/sec over the reference
    kernel in the hit-heavy regime (measured ~3×; 2× leaves headroom,
    and REPRO_KERNEL_SPEEDUP_MIN relaxes the floor on noisy runners)."""
    config, traces = hotloop_trace
    reference_rate = _best_rate("reference", scheme, config, traces)
    fast_rate = _best_rate("fast", scheme, config, traces)
    speedup = fast_rate / reference_rate
    print(
        f"\n{scheme}: reference {reference_rate:,.0f} acc/s, "
        f"fast {fast_rate:,.0f} acc/s — {speedup:.2f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast kernel only {speedup:.2f}x over reference on {scheme} "
        f"(required >= {SPEEDUP_FLOOR}x)"
    )


@pytest.mark.parametrize("scheme", ["S-NUCA", "RT-3"])
def test_batched_kernel_speedup_on_runheavy(runheavy_trace, scheme):
    """Acceptance gate: the batched kernel is ≥1.3× the *fast* kernel on
    the run-heavy regime (measured ~1.5×; REPRO_BATCHED_SPEEDUP_MIN
    relaxes the floor on noisy runners)."""
    config, traces = runheavy_trace
    fast_rate = _best_rate("fast", scheme, config, traces)
    batched_rate = _best_rate("batched", scheme, config, traces)
    speedup = batched_rate / fast_rate
    print(
        f"\n{scheme}: fast {fast_rate:,.0f} acc/s, "
        f"batched {batched_rate:,.0f} acc/s — {speedup:.2f}x"
    )
    assert speedup >= BATCHED_SPEEDUP_FLOOR, (
        f"batched kernel only {speedup:.2f}x over fast on {scheme} "
        f"(required >= {BATCHED_SPEEDUP_FLOOR}x)"
    )


@pytest.mark.parametrize("scheme", ["RT-1", "RT-3"])
def test_batched_kernel_speedup_on_replheavy(replheavy_trace, scheme):
    """Acceptance gate: with the local-replica fast path, the batched
    kernel is ≥1.3× the *fast* kernel on the replica-dominated regime —
    the workloads the paper cares about most used to be the ones the
    batched kernel helped least (replica hits single-stepped the miss
    path; REPRO_BATCHED_SPEEDUP_MIN relaxes the floor on noisy
    runners)."""
    config, traces = replheavy_trace
    fast_rate = _best_rate("fast", scheme, config, traces)
    batched_rate = _best_rate("batched", scheme, config, traces)
    speedup = batched_rate / fast_rate
    print(
        f"\n{scheme}: fast {fast_rate:,.0f} acc/s, "
        f"batched {batched_rate:,.0f} acc/s — {speedup:.2f}x (REPLHEAVY)"
    )
    assert speedup >= BATCHED_SPEEDUP_FLOOR, (
        f"batched kernel only {speedup:.2f}x over fast on {scheme} REPLHEAVY "
        f"(required >= {BATCHED_SPEEDUP_FLOOR}x)"
    )


@pytest.mark.parametrize("scheme", ["S-NUCA", "RT-3"])
def test_vector_kernel_speedup_on_runheavy(runheavy_trace, scheme):
    """Acceptance gate: the vector kernel is ≥10× the *reference*
    kernel on the run-heavy regime — the long zero-gap hit runs it
    commits as single numpy spans (measured ~10-14×;
    REPRO_VECTOR_SPEEDUP_MIN relaxes the floor on noisy runners)."""
    config, traces = runheavy_trace
    # Best-of-5: a 10x floor leaves less noise headroom than the 1.3x
    # gates above, and extra vector rounds are nearly free (~60ms each).
    reference_rate = _best_rate("reference", scheme, config, traces, rounds=5)
    vector_rate = _best_rate("vector", scheme, config, traces, rounds=5)
    speedup = vector_rate / reference_rate
    print(
        f"\n{scheme}: reference {reference_rate:,.0f} acc/s, "
        f"vector {vector_rate:,.0f} acc/s — {speedup:.2f}x"
    )
    assert speedup >= VECTOR_SPEEDUP_FLOOR, (
        f"vector kernel only {speedup:.2f}x over reference on {scheme} "
        f"(required >= {VECTOR_SPEEDUP_FLOOR}x)"
    )


def test_auto_selection_tracks_the_winning_kernel(
    hotloop_trace, runheavy_trace, replheavy_trace
):
    """``choose_kernel`` must route each benchmark regime to the kernel
    the gates above show winning there: lockstep HOTLOOP to ``fast``,
    and both imbalanced regimes to ``vector`` when the engine supports
    spans (falling back to ``batched`` when it does not)."""
    config, hotloop = hotloop_trace
    _, runheavy = runheavy_trace
    _, replheavy = replheavy_trace
    engine = make_scheme("RT-3", config)
    assert choose_kernel(hotloop, engine) == "fast"
    assert choose_kernel(runheavy, engine) == "vector"
    assert choose_kernel(replheavy, engine) == "vector"
    assert choose_kernel(runheavy) == "batched"


def test_trace_generation_throughput(benchmark):
    config = MachineConfig.small()

    def build():
        return build_trace(get_profile("BARNES"), config, scale=0.5, seed=11)

    traces = benchmark.pedantic(build, rounds=3, iterations=1)
    assert traces.total_accesses() > 0
