"""Engine micro-benchmarks: simulated accesses per second per scheme.

These measure the *simulator's* throughput (not the modelled machine),
which is what a user extending the library cares about when sizing
experiments.  Two workload regimes are measured:

* ``WATER-NSQ`` at reduced scale — miss-heavy, dominated by the protocol
  engine (directory, mesh, DRAM models);
* ``HOTLOOP`` — an L1-resident loop where ~95% of accesses hit, the
  regime real traces live in and where the event loop itself is the
  throughput ceiling.  This is where the fast kernel's hoisting pays,
  and where the ≥2× speedup over the reference kernel is asserted.
"""

import os
import time

import pytest

#: Minimum fast/reference speedup asserted by the kernel gate.  Defaults
#: to the 2x acceptance bar (locally measured ~3x); noisy shared CI
#: runners can relax it via the environment without losing the gate.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_KERNEL_SPEEDUP_MIN", "2.0"))

from repro.common.params import MachineConfig
from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import BenchmarkProfile, build_trace, get_profile

#: L1-resident loop: the hit-heavy regime where loop overhead dominates.
HOTLOOP_PROFILE = BenchmarkProfile(
    name="HOTLOOP",
    description="L1-resident loop mix exercising the simulator hot path",
    f_ifetch=0.15,
    f_private=0.70,
    f_shared_ro=0.10,
    f_shared_rw=0.05,
    instr_ws_x_l1i=0.3,
    private_ws_x_l1d=0.4,
    shared_ro_ws_x_l1d=0.3,
    shared_rw_ws_x_l1d=0.3,
    private_burst=10,
    write_frac_rw=0.02,
    mean_gap=1.0,
    accesses_per_core=20000,
    barriers=2,
)


@pytest.fixture(scope="module")
def shared_trace():
    config = MachineConfig.small()
    return config, build_trace(get_profile("WATER-NSQ"), config, scale=0.15, seed=1)


@pytest.fixture(scope="module")
def hotloop_trace():
    config = MachineConfig.small()
    return config, build_trace(HOTLOOP_PROFILE, config, scale=1.0, seed=1)


@pytest.mark.parametrize("kernel", ["reference", "fast"])
@pytest.mark.parametrize("scheme", ["S-NUCA", "R-NUCA", "VR", "ASR", "RT-3"])
def test_scheme_throughput(benchmark, shared_trace, scheme, kernel):
    config, traces = shared_trace

    def run():
        return simulate(make_scheme(scheme, config), traces, kernel=kernel)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["accesses_per_second"] = (
        traces.total_accesses() / benchmark.stats.stats.mean
    )
    assert stats.completion_time > 0


@pytest.mark.parametrize("kernel", ["reference", "fast"])
def test_hotloop_throughput(benchmark, hotloop_trace, kernel):
    config, traces = hotloop_trace

    def run():
        return simulate(make_scheme("RT-3", config), traces, kernel=kernel)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["accesses_per_second"] = (
        traces.total_accesses() / benchmark.stats.stats.mean
    )
    assert stats.completion_time > 0


@pytest.mark.parametrize("scheme", ["S-NUCA", "RT-3"])
def test_fast_kernel_speedup_at_least_2x(hotloop_trace, scheme):
    """Acceptance gate: ≥2× simulated-accesses/sec over the reference
    kernel in the hit-heavy regime (measured ~3×; 2× leaves headroom,
    and REPRO_KERNEL_SPEEDUP_MIN relaxes the floor on noisy runners)."""
    config, traces = hotloop_trace
    accesses = traces.total_accesses()

    def best_of(kernel, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            engine = make_scheme(scheme, config)
            started = time.perf_counter()
            simulate(engine, traces, kernel=kernel)
            best = min(best, time.perf_counter() - started)
        return accesses / best

    reference_rate = best_of("reference")
    fast_rate = best_of("fast")
    speedup = fast_rate / reference_rate
    print(
        f"\n{scheme}: reference {reference_rate:,.0f} acc/s, "
        f"fast {fast_rate:,.0f} acc/s — {speedup:.2f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast kernel only {speedup:.2f}x over reference on {scheme} "
        f"(required >= {SPEEDUP_FLOOR}x)"
    )


def test_trace_generation_throughput(benchmark):
    config = MachineConfig.small()

    def build():
        return build_trace(get_profile("BARNES"), config, scale=0.5, seed=11)

    traces = benchmark.pedantic(build, rounds=3, iterations=1)
    assert traces.total_accesses() > 0
