"""Figure 9: Limited_k classifier sensitivity (k = 1, 3, 5, 7, complete)."""

from repro.experiments.fig9_limitedk import (
    normalized_tables,
    render_fig9,
    run_fig9,
)

#: A subset of Figure 9's benchmark list (classifier-sensitive cases).
FIG9_SUBSET = ("BARNES", "STREAMCLUSTER", "LU-NC", "DEDUP")


def test_fig9_limitedk(benchmark, setup):
    results = benchmark.pedantic(
        run_fig9, args=(setup, FIG9_SUBSET), rounds=1, iterations=1
    )
    energy, completion = normalized_tables(results, setup.config.num_cores)
    print()
    print(render_fig9(energy, completion))
    complete = f"k={setup.config.num_cores}"
    for table in (energy, completion):
        for row in table.values():
            assert row[complete] == 1.0
            # The Limited_3 classifier stays within a modest factor of the
            # Complete classifier (the paper: within 2% except
            # STREAMCLUSTER's excursion).
            assert row["k=3"] < 1.6
