"""Section 4.2: modified-LRU vs plain LRU LLC replacement."""

from repro.experiments.ablations import (
    render_replacement_ablation,
    run_replacement_ablation,
)

ABLATION_SUBSET = ("BLACKSCHOLES", "FACESIM", "BARNES", "DEDUP")


def test_replacement_ablation(benchmark, setup):
    results = benchmark.pedantic(
        run_replacement_ablation, args=(setup, ABLATION_SUBSET),
        rounds=1, iterations=1,
    )
    print()
    print(render_replacement_ablation(results))
    # The paper: modified-LRU never loses materially (<= a few percent)
    # and wins on BLACKSCHOLES / FACESIM.
    for name, row in results.items():
        ratio = row["modified_lru"].total_energy / row["lru"].total_energy
        assert ratio < 1.1, name
