#!/usr/bin/env python
"""Diff a fresh pytest-benchmark JSON against the checked-in baseline.

Two modes::

    python benchmarks/compare_baseline.py distill simulator-throughput.json
        # emit a trimmed baseline document on stdout (redirect to
        # benchmarks/baseline.json and commit to move the baseline)

    python benchmarks/compare_baseline.py report simulator-throughput.json \
        benchmarks/baseline.json
        # emit a markdown trend table (CI appends it to the job summary)

The report is **warn-only** by design: absolute throughput on shared CI
runners is noisy, so regressions are flagged in the table (and the
process still exits 0) rather than failing the job.  The checked-in
baseline therefore records *relative* structure — which kernels/schemes
are fast — and big drops stand out across runs.  Only unreadable inputs
exit non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Current/baseline ratios below this are flagged as slower in the report.
WARN_RATIO = 0.8
#: Ratios above this are highlighted as improvements.
GOOD_RATIO = 1.2


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _rates(benchmark_json: dict) -> dict[str, dict[str, float]]:
    """name -> {mean_s, accesses_per_second} from pytest-benchmark JSON."""
    rates: dict[str, dict[str, float]] = {}
    for bench in benchmark_json.get("benchmarks", []):
        entry = {"mean_s": bench["stats"]["mean"]}
        accesses = bench.get("extra_info", {}).get("accesses_per_second")
        if accesses is not None:
            entry["accesses_per_second"] = accesses
        rates[bench["name"]] = entry
    return rates


def distill(args: argparse.Namespace) -> int:
    payload = {
        "note": (
            "Advisory throughput baseline for the CI trend report "
            "(benchmarks/compare_baseline.py). Regenerate by running the "
            "benchmark suite with --benchmark-json and distilling it: "
            "absolute numbers are machine-specific, the report compares "
            "shape and flags large drops warn-only."
        ),
        "benchmarks": _rates(_load(args.current)),
    }
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _format_rate(entry: dict | None) -> str:
    if entry is None:
        return "—"
    accesses = entry.get("accesses_per_second")
    if accesses is not None:
        return f"{accesses:,.0f}/s"
    return f"{entry['mean_s'] * 1e3:.1f} ms"


def _ratio(current: dict | None, baseline: dict | None) -> float | None:
    """current/baseline throughput ratio (>1 means faster than baseline)."""
    if current is None or baseline is None:
        return None
    if "accesses_per_second" in current and "accesses_per_second" in baseline:
        return current["accesses_per_second"] / baseline["accesses_per_second"]
    return baseline["mean_s"] / current["mean_s"]


def report(args: argparse.Namespace) -> int:
    current = _rates(_load(args.current))
    baseline = _load(args.baseline).get("benchmarks", {})
    names = sorted(set(current) | set(baseline))
    slower = faster = 0
    lines = [
        "### Simulator throughput vs checked-in baseline",
        "",
        "_Advisory trend report (warn-only): shared-runner numbers are "
        "noisy; look for large consistent drops._",
        "",
        "| benchmark | baseline | current | ratio | |",
        "|---|---|---|---|---|",
    ]
    for name in names:
        ratio = _ratio(current.get(name), baseline.get(name))
        if ratio is None:
            flag = "🆕" if name in current else "❓ missing"
            ratio_text = "—"
        elif ratio < WARN_RATIO:
            flag = "⚠️ slower"
            slower += 1
            ratio_text = f"{ratio:.2f}x"
        elif ratio > GOOD_RATIO:
            flag = "🚀"
            faster += 1
            ratio_text = f"{ratio:.2f}x"
        else:
            flag = ""
            ratio_text = f"{ratio:.2f}x"
        lines.append(
            f"| `{name}` | {_format_rate(baseline.get(name))} "
            f"| {_format_rate(current.get(name))} | {ratio_text} | {flag} |"
        )
    lines.append("")
    lines.append(
        f"{slower} benchmark(s) below {WARN_RATIO:.0%} of baseline, "
        f"{faster} above {GOOD_RATIO:.0%}."
    )
    print("\n".join(lines))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="mode", required=True)
    distill_cmd = sub.add_parser("distill", help="trim a benchmark JSON into a baseline")
    distill_cmd.add_argument("current")
    distill_cmd.set_defaults(func=distill)
    report_cmd = sub.add_parser("report", help="markdown trend report vs baseline")
    report_cmd.add_argument("current")
    report_cmd.add_argument("baseline")
    report_cmd.set_defaults(func=report)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
