"""Section 2.3.2: always-probe vs dynamic-oracle local LLC lookup."""

from repro.experiments.ablations import (
    render_oracle_ablation,
    run_oracle_ablation,
)

ORACLE_SUBSET = ("BARNES", "DEDUP", "OCEAN-C")


def test_oracle_lookup(benchmark, setup):
    results = benchmark.pedantic(
        run_oracle_ablation, args=(setup, ORACLE_SUBSET), rounds=1, iterations=1
    )
    print()
    print(render_oracle_ablation(results))
    # The paper measured < 1% difference; we allow a slightly wider band
    # at reduced scale, which still justifies the always-probe design.
    for name, row in results.items():
        ratio = row["probe"].completion_time / row["oracle"].completion_time
        assert 0.97 <= ratio <= 1.08, name
