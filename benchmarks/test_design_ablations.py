"""Design-alternative ablations the paper discusses in prose.

* Section 2.3.1: replica creation strategy (all states vs Shared-only)
* Section 2.3.3: classifier organization (in-cache vs sparse)
* Section 2.2.4: Temporal Locality Hints vs the modified-LRU policy
"""

from repro.experiments.ablations import (
    render_classifier_organization_ablation,
    render_replica_strategy_ablation,
    render_tla_ablation,
    run_classifier_organization_ablation,
    run_replica_strategy_ablation,
    run_tla_ablation,
)


def test_replica_strategy(benchmark, setup):
    results = benchmark.pedantic(
        run_replica_strategy_ablation, args=(setup, ("LU-NC", "BARNES")),
        rounds=1, iterations=1,
    )
    print()
    print(render_replica_strategy_ablation(results))
    # Migratory data (LU-NC) must lose without E/M replicas: the
    # shared-only strategy creates fewer replicas and costs energy.
    lu = results["LU-NC"]
    assert (
        lu["shared_only"].stats.counters.get("replicas_created", 0)
        <= lu["all_states"].stats.counters.get("replicas_created", 0)
    )
    assert lu["shared_only"].total_energy >= lu["all_states"].total_energy * 0.98


def test_classifier_organization(benchmark, setup):
    results = benchmark.pedantic(
        run_classifier_organization_ablation,
        kwargs=dict(setup=setup, benchmarks=("BARNES", "DEDUP"),
                    sparse_entries=(32, 1024)),
        rounds=1, iterations=1,
    )
    print()
    print(render_classifier_organization_ablation(results))
    # A generously sized side table matches the in-cache organization.
    barnes = results["BARNES"]
    ratio = barnes["sparse-1024"].total_energy / barnes["incache"].total_energy
    assert 0.9 < ratio < 1.15


def test_tla_hints(benchmark, setup):
    results = benchmark.pedantic(
        run_tla_ablation, args=(setup, ("DEDUP", "BLACKSCHOLES")),
        rounds=1, iterations=1,
    )
    print()
    print(render_tla_ablation(results))
    # TLA sends real hint traffic; the paper's modified-LRU needs none.
    assert any(
        row["tla"].stats.counters.get("tla_hints_sent", 0) > 0
        for row in results.values()
    )
