"""The abstract's headline numbers: RT-3 vs VR / ASR / R-NUCA / S-NUCA."""

from conftest import SUBSET

from repro.experiments.comparison import run_comparison
from repro.experiments.summary import headline_reductions, render_summary


def test_headline_summary(benchmark, setup):
    results = benchmark.pedantic(
        run_comparison, args=(setup, SUBSET), rounds=1, iterations=1
    )
    energy_reduction, time_reduction = headline_reductions(results)
    print()
    print(render_summary(energy_reduction, time_reduction))
    # Direction of the headline claim (magnitudes are workload-model
    # dependent; EXPERIMENTS.md records the measured values):
    assert energy_reduction["S-NUCA"] > 0
    assert time_reduction["S-NUCA"] > 0
    assert energy_reduction["ASR"] > 0
