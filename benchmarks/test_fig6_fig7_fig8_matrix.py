"""Figures 6, 7 and 8: the seven-scheme comparison matrix.

One matrix of runs feeds all three figures, exactly as in the paper;
the three tests share it through a module-scoped cache so the benchmark
timings reflect each figure's own assembly cost.
"""

import pytest
from conftest import SUBSET

from repro.experiments.comparison import (
    average_row,
    fig6_energy,
    fig7_completion,
    fig8_miss_breakdown,
    render_miss_table,
    render_normalized_table,
    run_comparison,
)

_matrix_cache = {}


def _matrix(setup):
    if "results" not in _matrix_cache:
        _matrix_cache["results"] = run_comparison(setup, benchmarks=SUBSET)
    return _matrix_cache["results"]


def test_fig6_energy(benchmark, setup):
    results = _matrix(setup)
    table = benchmark.pedantic(fig6_energy, args=(results,), rounds=1, iterations=1)
    print()
    print(render_normalized_table(table, "Figure 6: Energy (normalized to S-NUCA)"))
    for row in table.values():
        assert row["S-NUCA"] == pytest.approx(1.0)
    averages = average_row(table)
    # The headline direction: locality-aware RT-3 saves energy vs S-NUCA.
    assert averages["RT-3"] < averages["S-NUCA"]


def test_fig7_completion(benchmark, setup):
    results = _matrix(setup)
    table = benchmark.pedantic(fig7_completion, args=(results,), rounds=1, iterations=1)
    print()
    print(render_normalized_table(table, "Figure 7: Completion Time (normalized to S-NUCA)"))
    averages = average_row(table)
    assert averages["RT-3"] < averages["S-NUCA"]


def test_fig8_miss_types(benchmark, setup):
    results = _matrix(setup)
    table = benchmark.pedantic(
        fig8_miss_breakdown, args=(results,), rounds=1, iterations=1
    )
    print()
    print(render_miss_table(table, "Figure 8: L1 Cache Miss Type Breakdown"))
    # S-NUCA and R-NUCA never produce replica hits; RT-3 does on BARNES.
    for row in table.values():
        assert row["S-NUCA"]["LLC-Replica-Hits"] == 0.0
        assert row["R-NUCA"]["LLC-Replica-Hits"] == 0.0
    assert table["BARNES"]["RT-3"]["LLC-Replica-Hits"] > 0.0
