"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at a
reduced scale (small machine, shortened traces, benchmark subsets) so
the whole suite completes in minutes; the ``python -m repro.experiments``
CLI regenerates everything at any scale.  Benchmarks print the rendered
table so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's rows verbatim.
"""

from __future__ import annotations

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup

#: A representative benchmark subset spanning the paper's behaviour
#: classes: shared-RW reuse, private-heavy, migratory, LLC pressure,
#: shared-RO reuse, false sharing.
SUBSET = ("BARNES", "DEDUP", "LU-NC", "FLUIDANIMATE", "STREAMCLUSTER",
          "BLACKSCHOLES")

#: Benchmark scale for matrix regeneration (fraction of default traces).
#: 0.5 is the smallest scale at which the paper's reuse dynamics fully
#: manifest (RT-3 promotion needs enough sweeps over the working sets).
BENCH_SCALE = 0.5


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    return ExperimentSetup(MachineConfig.small(), scale=BENCH_SCALE, seed=1)
