"""Substrate micro-benchmarks: the hot inner loops of the simulator."""

import numpy as np
import pytest

from repro.cache.array import SetAssociativeCache
from repro.cache.entries import CacheLine
from repro.cache.replacement import ModifiedLRUPolicy
from repro.common.params import CacheGeometry, MachineConfig
from repro.common.types import MESIState
from repro.core.classifier import CompleteClassifier, LimitedClassifier
from repro.network.mesh import Mesh


def test_cache_array_churn(benchmark):
    geometry = CacheGeometry(sets=64, ways=8, index_shift=4)
    addresses = np.random.default_rng(1).integers(0, 4096, 20000).tolist()

    def churn():
        cache = SetAssociativeCache(geometry, ModifiedLRUPolicy())
        for address in addresses:
            entry = cache.access(address)
            if entry is None:
                victim = cache.victim_for(address)
                if victim is not None:
                    cache.remove(victim.line_addr)
                cache.insert(CacheLine(address, MESIState.SHARED))
        return cache

    cache = benchmark(churn)
    assert len(cache) <= geometry.lines


@pytest.mark.parametrize("kind", ["complete", "limited3"])
def test_classifier_event_throughput(benchmark, kind):
    if kind == "complete":
        classifier = CompleteClassifier(num_cores=64, rt=3, counter_max=3)
    else:
        classifier = LimitedClassifier(num_cores=64, rt=3, counter_max=3, k=3)
    rng = np.random.default_rng(2)
    cores = rng.integers(0, 64, 5000).tolist()

    def run_events():
        state = classifier.new_state()
        for index, core in enumerate(cores):
            if index % 7 == 0:
                classifier.on_home_write(state, core, was_only_sharer=False)
            else:
                classifier.on_home_read(state, core)
        return state

    state = run_events()
    benchmark(run_events)
    assert state is not None


def test_mesh_send_throughput(benchmark):
    mesh = Mesh(MachineConfig.paper())
    rng = np.random.default_rng(3)
    pairs = rng.integers(0, 64, size=(5000, 2)).tolist()

    def send_all():
        now = 0.0
        for src, dst in pairs:
            mesh.send(src, dst, 9, now)
            now += 1.0
        return now

    benchmark(send_all)
    assert mesh.messages_sent > 0
