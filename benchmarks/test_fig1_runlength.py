"""Figure 1: LLC access distribution by data class and run-length."""

from conftest import SUBSET

from repro.common.types import LineClass
from repro.experiments.fig1_runlength import render_fig1, run_fig1


def test_fig1_runlength(benchmark, setup):
    profiles = benchmark.pedantic(
        run_fig1, args=(setup, SUBSET), rounds=1, iterations=1
    )
    print()
    print(render_fig1(profiles))
    # Shape checks mirroring the paper's motivation:
    barnes = profiles["BARNES"]
    assert barnes.class_fraction(LineClass.SHARED_RW) > 0.5
    assert barnes.high_reuse_fraction() > 0.5
    assert profiles["FLUIDANIMATE"].high_reuse_fraction() < barnes.high_reuse_fraction()
