"""Section 2.4.1 storage-overhead arithmetic — reproduced exactly.

The paper computes, for the Table 1 machine (64 cores, 256 KB LLC slice
with 4096 entries, 48-bit physical addresses):

* replica reuse counters: 2 bits/entry  → 1 KB per slice
* Limited₃ classifier: 27 bits/entry    → 13.5 KB per slice
* Complete classifier: 192 bits/entry   → 96 KB per slice
* ACKwise₄ pointers: 24 bits/entry      → 12 KB per slice
* Full-map directory: 64 bits/entry     → 32 KB per slice
* Limited₃ + ACKwise₄ ≈ full-map storage, 4.5% over baseline ACKwise₄
* Complete + ACKwise₄ = 30% over baseline ACKwise₄

These are pure functions of the configuration, so the tests assert the
paper's numbers digit for digit.
"""

from __future__ import annotations

import dataclasses
import math

from repro.common.params import MachineConfig
from repro.experiments.spec import register_report


@dataclasses.dataclass(frozen=True)
class StorageReport:
    """Per-LLC-slice storage accounting, in bits and kilobytes."""

    num_cores: int
    llc_entries: int
    reuse_counter_bits: int
    core_id_bits: int
    #: Per-core cache data capacity in bytes (L1-I + L1-D + LLC slice);
    #: the paper's percentage overheads are relative to this plus the
    #: baseline ACKwise directory.
    cache_data_bytes: int
    # -- per-entry bit counts ------------------------------------------------
    replica_reuse_bits_per_entry: int
    limited_k_bits_per_entry: int
    complete_bits_per_entry: int
    ackwise_bits_per_entry: int
    fullmap_bits_per_entry: int

    def _kb(self, bits_per_entry: int) -> float:
        return bits_per_entry * self.llc_entries / 8 / 1024

    @property
    def replica_reuse_kb(self) -> float:
        return self._kb(self.replica_reuse_bits_per_entry)

    @property
    def limited_k_kb(self) -> float:
        return self._kb(self.limited_k_bits_per_entry)

    @property
    def complete_kb(self) -> float:
        return self._kb(self.complete_bits_per_entry)

    @property
    def ackwise_kb(self) -> float:
        return self._kb(self.ackwise_bits_per_entry)

    @property
    def fullmap_kb(self) -> float:
        return self._kb(self.fullmap_bits_per_entry)

    @property
    def locality_total_kb(self) -> float:
        """Replica reuse + Limited_k classifier (the paper's 14.5 KB)."""
        return self.replica_reuse_kb + self.limited_k_kb

    @property
    def limited_overhead_vs_ackwise(self) -> float:
        """Fractional storage increase of Limited_k + reuse over the
        baseline ACKwise protocol (per-core cache data + directory)."""
        extra_bits = (
            self.replica_reuse_bits_per_entry + self.limited_k_bits_per_entry
        ) * self.llc_entries
        return extra_bits / self._baseline_bits()

    @property
    def complete_overhead_vs_ackwise(self) -> float:
        extra_bits = (
            self.replica_reuse_bits_per_entry + self.complete_bits_per_entry
        ) * self.llc_entries
        return extra_bits / self._baseline_bits()

    def _baseline_bits(self) -> int:
        return (
            self.cache_data_bytes * 8
            + self.ackwise_bits_per_entry * self.llc_entries
        )


def storage_report(config: MachineConfig, k: int = 3) -> StorageReport:
    """Compute the Section 2.4.1 numbers for any machine configuration."""
    num_cores = config.num_cores
    core_id_bits = max(1, math.ceil(math.log2(num_cores)))
    reuse_bits = config.reuse_counter_bits
    mode_bits = 1
    per_tracked_core = reuse_bits + mode_bits + core_id_bits
    llc_entries = config.llc_slice.lines
    cache_data_bytes = (
        config.l1i.capacity_bytes
        + config.l1d.capacity_bytes
        + config.llc_slice.capacity_bytes
    )
    return StorageReport(
        num_cores=num_cores,
        llc_entries=llc_entries,
        reuse_counter_bits=reuse_bits,
        core_id_bits=core_id_bits,
        cache_data_bytes=cache_data_bytes,
        replica_reuse_bits_per_entry=reuse_bits,
        limited_k_bits_per_entry=k * per_tracked_core,
        complete_bits_per_entry=num_cores * (reuse_bits + mode_bits),
        ackwise_bits_per_entry=config.ackwise_pointers * core_id_bits,
        fullmap_bits_per_entry=num_cores,
    )


def render_storage(report: StorageReport) -> str:
    lines = [
        "Section 2.4.1 storage overheads (per LLC slice)",
        "===============================================",
        f"LLC entries per slice:        {report.llc_entries}",
        f"Replica reuse counters:       {report.replica_reuse_kb:.1f} KB "
        f"({report.replica_reuse_bits_per_entry} bits/entry)",
        f"Limited_3 classifier:         {report.limited_k_kb:.1f} KB "
        f"({report.limited_k_bits_per_entry} bits/entry)",
        f"Complete classifier:          {report.complete_kb:.1f} KB "
        f"({report.complete_bits_per_entry} bits/entry)",
        f"ACKwise_4 pointers:           {report.ackwise_kb:.1f} KB "
        f"({report.ackwise_bits_per_entry} bits/entry)",
        f"Full-map directory:           {report.fullmap_kb:.1f} KB "
        f"({report.fullmap_bits_per_entry} bits/entry)",
        f"Locality protocol total:      {report.locality_total_kb:.1f} KB",
        f"Limited_3 overhead vs ACKwise baseline:  "
        f"{report.limited_overhead_vs_ackwise * 100:.1f}%",
        f"Complete overhead vs ACKwise baseline:   "
        f"{report.complete_overhead_vs_ackwise * 100:.1f}%",
    ]
    return "\n".join(lines)


@register_report(
    "storage", "Section 2.4.1 storage-overhead arithmetic (Table 1 machine)"
)
def _report(setup, benchmarks=None) -> str:
    return render_storage(storage_report(MachineConfig.paper()))
