"""Plain-text table rendering for the experiment harness.

The paper's figures are stacked bar charts; we print the same data as
aligned text tables (one row per benchmark/configuration, one column per
scheme or component), which is what a terminal harness can faithfully
reproduce and what the benchmark suite snapshots.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def normalize_to(
    values: Mapping[str, float], baseline_key: str
) -> dict[str, float]:
    """Normalize a mapping of scheme → scalar to one baseline scheme."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ZeroDivisionError(f"baseline {baseline_key!r} measured zero")
    return {key: value / baseline for key, value in values.items()}


def stacked_fractions(breakdown: Mapping[str, float]) -> dict[str, float]:
    """Components as fractions of the total (for stacked-bar style rows)."""
    total = sum(breakdown.values())
    if total == 0:
        return {key: 0.0 for key in breakdown}
    return {key: value / total for key, value in breakdown.items()}


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (used for Figures 9/10 summaries)."""
    items = [value for value in values]
    if not items:
        raise ValueError("geomean of no values")
    product = 1.0
    for value in items:
        if value <= 0:
            raise ValueError("geomean requires positive values")
        product *= value
    return product ** (1.0 / len(items))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average (Figures 6/7 plot Average, not Geometric-Mean)."""
    items = list(values)
    if not items:
        raise ValueError("mean of no values")
    return sum(items) / len(items)


#: Glyphs cycled through for stacked-bar segments (one per component).
_BAR_GLYPHS = "█▓▒░▚▞▘▝"


def render_stacked_bars(
    rows: Mapping[str, Mapping[str, float]],
    width: int = 60,
    title: str | None = None,
) -> str:
    """Text rendition of the paper's stacked bar charts.

    ``rows`` maps a bar label (scheme name) to its component values; all
    bars share one scale (the largest total spans ``width`` characters),
    so relative heights read exactly like Figures 6/7.
    """
    if not rows:
        raise ValueError("no bars to render")
    components: list[str] = []
    for breakdown in rows.values():
        for component in breakdown:
            if component not in components:
                components.append(component)
    max_total = max(sum(breakdown.values()) for breakdown in rows.values())
    if max_total <= 0:
        raise ValueError("bars must have positive totals")
    glyph_of = {
        component: _BAR_GLYPHS[index % len(_BAR_GLYPHS)]
        for index, component in enumerate(components)
    }
    label_width = max(len(label) for label in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, breakdown in rows.items():
        total = sum(breakdown.values())
        bar = []
        drawn = 0
        for component in components:
            value = breakdown.get(component, 0.0)
            segment = round(value / max_total * width)
            bar.append(glyph_of[component] * segment)
            drawn += segment
        lines.append(
            f"{label.rjust(label_width)} |{''.join(bar):<{width}}| "
            f"{total / max_total:.3f}"
        )
    lines.append("")
    legend = "  ".join(
        f"{glyph_of[component]} {component}" for component in components
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
