"""Figure 10: cluster-size sensitivity for replica placement (Section 4.4).

Runs the locality-aware protocol (RT = 3) with cluster sizes
C ∈ {1, 4, 16, num_cores}: one replica per C-core cluster, placed by
address interleaving within the cluster.  C = 1 keeps replicas in the
requester's own slice; C = num_cores degenerates to a single location —
"the same as R-NUCA except that it does not even replicate instructions".

The paper finds C = 1 optimal on its 64-core machine: larger clusters
add network serialization (probe the replica slice, then the home)
without reducing the miss rate enough to pay for it.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.reporting import format_table, geomean
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    execute_spec,
    register_experiment,
    resolve_benchmarks,
)
from repro.experiments.store import ResultStore

#: The benchmarks Figure 10 plots.
FIG10_BENCHMARKS = (
    "RADIX", "LU-NC", "BARNES", "WATER-NSQ", "RAYTRACE", "VOLREND",
    "BLACKSCHOLES", "SWAPTIONS", "FLUIDANIMATE", "STREAMCLUSTER", "FERRET",
    "BODYTRACK", "FACESIM", "PATRICIA", "CONCOMP",
)


def cluster_sizes(num_cores: int) -> tuple[int, ...]:
    """The Figure 10 sweep, clipped to the machine size."""
    sizes = [size for size in (1, 4, 16, 64) if size <= num_cores]
    if num_cores not in sizes:
        sizes.append(num_cores)
    return tuple(sizes)


def fig10_spec(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    sizes: Iterable[int] | None = None,
) -> ExperimentSpec:
    """The cluster-size grid: locality scheme at RT=3, one point per C."""
    bench_list = resolve_benchmarks(benchmarks, FIG10_BENCHMARKS)
    size_list = list(sizes) if sizes is not None else list(cluster_sizes(setup.config.num_cores))
    points = tuple(
        RunPoint(
            "Locality", benchmark,
            config_overrides=(
                ("cluster_size", size), ("replication_threshold", 3),
            ),
            label=f"C-{size}",
        )
        for benchmark in bench_list
        for size in size_list
    )
    return ExperimentSpec(
        "fig10", points,
        title="Figure 10: replication cluster-size sensitivity",
        baseline=f"C-{size_list[0]}" if size_list else None,
    )


def run_fig10(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    sizes: Iterable[int] | None = None,
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark]['C-<size>']`` for the locality scheme at RT=3."""
    return execute_spec(fig10_spec(setup, benchmarks, sizes), setup, store=store)


def normalized_tables(
    results,
) -> tuple[dict[str, dict[str, float]], dict[str, dict[str, float]]]:
    """(energy, completion time) normalized to C-1."""
    results = ResultSet.ensure(results)
    return (
        results.normalized_to("C-1", "total_energy"),
        results.normalized_to("C-1", "completion_time"),
    )


def render_fig10(
    energy: dict[str, dict[str, float]], time: dict[str, dict[str, float]]
) -> str:
    labels = list(next(iter(energy.values())).keys())
    sections = []
    for title, table in (
        ("Figure 10a: Energy (normalized to cluster size 1)", energy),
        ("Figure 10b: Completion Time (normalized to cluster size 1)", time),
    ):
        rows = [
            [benchmark, *[row[label] for label in labels]]
            for benchmark, row in table.items()
        ]
        rows.append(
            ["GEOMEAN", *[
                geomean(row[label] for row in table.values()) for label in labels
            ]]
        )
        sections.append(format_table(["Benchmark", *labels], rows, title=title))
    return "\n\n".join(sections)


def _render(results: ResultSet, setup: ExperimentSetup) -> str:
    energy, time = normalized_tables(results)
    return render_fig10(energy, time)


register_experiment(
    "fig10", "Figure 10: replica cluster-size sensitivity (energy/time vs C)",
    _render,
)(lambda setup, benchmarks=None: fig10_spec(setup, benchmarks))
