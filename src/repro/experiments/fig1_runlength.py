"""Figure 1: LLC access distribution by data class × run-length bucket.

Regenerates the motivation study: for each benchmark, the fraction of
LLC accesses that belong to runs of length [1–2], [3–9] and [≥10],
split by the four data classes.  Profiled on the S-NUCA baseline (no
replication), matching the paper's vantage point.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.types import LineClass
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import register_report, resolve_benchmarks
from repro.sim.profiler import RUN_LENGTH_BUCKETS, RunLengthProfile, profile_run_lengths
from repro.workloads.benchmarks import BENCHMARK_ORDER


def run_fig1(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> dict[str, RunLengthProfile]:
    """Profile run lengths for each benchmark.

    Profiling runs produce :class:`RunLengthProfile`s, not
    :class:`RunResult`s, so Figure 1 is a registered *report* command
    rather than an ExperimentSpec grid (the ResultStore only holds
    simulation statistics).
    """
    bench_list = resolve_benchmarks(benchmarks, BENCHMARK_ORDER)
    profiles: dict[str, RunLengthProfile] = {}
    for benchmark in bench_list:
        traces = setup.trace_for(benchmark)
        profiles[benchmark] = profile_run_lengths(
            setup.config, traces, kernel=setup.kernel
        )
        setup.release_decoded(benchmark)
    return profiles


def render_fig1(profiles: dict[str, RunLengthProfile]) -> str:
    """One row per benchmark, one column per (class, bucket) pair."""
    headers = ["Benchmark"]
    columns: list[tuple[LineClass, str]] = []
    for line_class in LineClass:
        for label, _low, _high in RUN_LENGTH_BUCKETS:
            columns.append((line_class, label))
            headers.append(f"{_short(line_class)}{label}")
    rows = []
    for benchmark, profile in profiles.items():
        fractions = profile.fractions()
        rows.append(
            [benchmark, *[fractions.get(column, 0.0) for column in columns]]
        )
    return format_table(
        headers,
        rows,
        title="Figure 1: LLC access distribution by class and run-length",
    )


def _short(line_class: LineClass) -> str:
    return {
        LineClass.PRIVATE: "Priv",
        LineClass.INSTRUCTION: "Instr",
        LineClass.SHARED_RO: "ShRO",
        LineClass.SHARED_RW: "ShRW",
    }[line_class]


@register_report(
    "fig1", "Figure 1: LLC access distribution by data class and run-length"
)
def _report(setup: ExperimentSetup, benchmarks: Iterable[str] | None = None) -> str:
    return render_fig1(run_fig1(setup, benchmarks))
