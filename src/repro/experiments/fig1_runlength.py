"""Figure 1: LLC access distribution by data class × run-length bucket.

Regenerates the motivation study: for each benchmark, the fraction of
LLC accesses that belong to runs of length [1–2], [3–9] and [≥10],
split by the four data classes.  Profiled on the S-NUCA baseline (no
replication), matching the paper's vantage point.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable

from repro.common.types import LineClass
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import register_report, resolve_benchmarks
from repro.sim.profiler import (
    PROFILE_VERSION,
    RUN_LENGTH_BUCKETS,
    RunLengthProfile,
    decode_profile,
    encode_profile,
    profile_run_lengths,
)
from repro.workloads.benchmarks import BENCHMARK_ORDER
from repro.workloads.imports import (
    IMPORTED_PREFIX,
    imported_trace_path,
    is_imported_benchmark,
    trace_content_hash,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import ResultStore


def profile_fingerprint(benchmark: str, setup: ExperimentSetup) -> dict:
    """Content address of one benchmark's run-length profile.

    Mirrors :meth:`RunPoint.fingerprint`'s benchmark handling (imported
    traces address by file content; catalog traces by name + scale +
    seed) but carries a distinct ``kind`` and the profiler version, so
    profile payloads can never collide with simulation results in the
    shared store.  The kernel is excluded — profiling observes the
    S-NUCA protocol stream, which every kernel replays bit-identically.
    """
    payload = {
        "kind": "fig1-runlength",
        "profile_version": PROFILE_VERSION,
        "benchmark": benchmark,
        "config": dataclasses.asdict(setup.config),
        "scale": setup.scale,
        "seed": setup.seed,
    }
    if is_imported_benchmark(benchmark):
        path = imported_trace_path(benchmark)
        payload["benchmark"] = f"{IMPORTED_PREFIX}sha256:{trace_content_hash(path)}"
        payload["scale"] = None
        payload["seed"] = None
    return payload


def run_fig1(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    store: "ResultStore | None" = None,
) -> dict[str, RunLengthProfile]:
    """Profile run lengths for each benchmark, caching via ``store``.

    Profiling runs produce :class:`RunLengthProfile`s, not
    :class:`RunResult`s, so Figure 1 is a registered *report* command
    rather than an ExperimentSpec grid — but its profiles are cached in
    the same content-addressed store as simulation results (as raw
    payload dicts under :func:`profile_fingerprint` addresses), so
    repeated ``fig1`` invocations re-profile nothing.
    """
    bench_list = resolve_benchmarks(benchmarks, BENCHMARK_ORDER)
    profiles: dict[str, RunLengthProfile] = {}
    for benchmark in bench_list:
        key = None
        if store is not None:
            key = store.key_for(profile_fingerprint(benchmark, setup))
            cached = store.get_payload(key)
            profile = decode_profile(cached) if cached is not None else None
            if profile is not None:
                profiles[benchmark] = profile
                continue
        traces = setup.trace_for(benchmark)
        profile = profile_run_lengths(setup.config, traces, kernel=setup.kernel)
        setup.release_decoded(benchmark)
        if store is not None and key is not None:
            store.put_payload(key, encode_profile(profile))
        profiles[benchmark] = profile
    return profiles


def render_fig1(profiles: dict[str, RunLengthProfile]) -> str:
    """One row per benchmark, one column per (class, bucket) pair."""
    headers = ["Benchmark"]
    columns: list[tuple[LineClass, str]] = []
    for line_class in LineClass:
        for label, _low, _high in RUN_LENGTH_BUCKETS:
            columns.append((line_class, label))
            headers.append(f"{_short(line_class)}{label}")
    rows = []
    for benchmark, profile in profiles.items():
        fractions = profile.fractions()
        rows.append(
            [benchmark, *[fractions.get(column, 0.0) for column in columns]]
        )
    return format_table(
        headers,
        rows,
        title="Figure 1: LLC access distribution by class and run-length",
    )


def _short(line_class: LineClass) -> str:
    return {
        LineClass.PRIVATE: "Priv",
        LineClass.INSTRUCTION: "Instr",
        LineClass.SHARED_RO: "ShRO",
        LineClass.SHARED_RW: "ShRW",
    }[line_class]


@register_report(
    "fig1", "Figure 1: LLC access distribution by data class and run-length"
)
def _report(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    store: "ResultStore | None" = None,
) -> str:
    return render_fig1(run_fig1(setup, benchmarks, store=store))
