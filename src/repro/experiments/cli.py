"""Experiments command surface: figures, tables, and the distributed service.

This is the implementation behind ``python -m repro experiments`` — the
single documented entry point (``python -m repro.experiments`` remains
as a thin deprecated forwarder).  Usage::

    python -m repro experiments --list
    python -m repro experiments fig1 [options]
    python -m repro experiments fig6|fig7|fig8 [options]
    python -m repro experiments fig9|fig10|rt-sweep [options]
    python -m repro experiments replacement|oracle|tla [options]
    python -m repro experiments strategy|organization [options]
    python -m repro experiments breakdown --benchmarks BARNES [options]
    python -m repro experiments table1|table2|storage
    python -m repro experiments summary [options]
    python -m repro experiments all

The subcommands are generated from the experiment registry
(:mod:`repro.experiments.spec`); ``--list`` prints the catalog.

Options::

    --machine {small,paper}   machine configuration (default: small)
    --scale FLOAT             trace-length multiplier (default: 1.0)
    --seed INT                workload seed (default: 1)
    --benchmarks A,B,C        restrict the benchmark list
    --parallel N              shard RunPoints over N worker processes
    --distributed N           run the grid through the experiment
                              service with N local worker processes
                              (crash-tolerant leases; bit-identical)
    --queue DIR               work-queue directory for --distributed
                              (default: a fresh temporary directory)
    --lease-ttl SECONDS       distributed lease timeout (default: 60)
    --kernel {reference,fast,batched,auto}
                              simulation kernel (default: fast; all are
                              differentially verified bit-identical;
                              ``auto`` probes each trace's run-length
                              structure and picks fast vs batched)
    --no-cache                skip the on-disk result store for this
                              invocation (in-memory dedup still applies)

Results are content-addressed in an on-disk
:class:`~repro.experiments.store.ResultStore` (relocate or disable it
with ``REPRO_RESULT_CACHE``; ``shared:<dir>`` selects the fanout layout
for network mounts; ``REPRO_RESULT_CACHE_MAX_MB`` bounds its size with
LRU eviction), so ``all`` performs each unique (scheme, benchmark,
config, seed, scale) simulation at most once and repeated invocations
reuse prior runs; the hit/miss accounting is printed to stderr after
every invocation.

The **distributed service** adds three commands (see the README's
"Distributed runs" section)::

    python -m repro experiments serve CMD --queue DIR [options]
    python -m repro experiments work --queue DIR --store DIR [options]
    python -m repro experiments store stats|purge [--store DIR]

``serve`` brokers a grid's store-missed points onto a shared-filesystem
work queue; any number of ``work`` processes — on any machine mounting
the queue and the shared store — lease, simulate and commit them.
``store stats``/``store purge`` inspect and clear an on-disk store.

The default ``small`` machine (16 cores, scaled caches) regenerates the
full figure suite in minutes; ``paper`` uses the Table 1 configuration
(64 cores) and is proportionally slower.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.common.params import MachineConfig
from repro.experiments import spec as spec_registry
from repro.experiments.runner import ExperimentSetup
from repro.experiments.store import (
    ResultStore,
    max_bytes_from_env,
    open_disk_backend,
)
from repro.sim.kernel import AUTO_KERNEL, kernel_names

#: Registered commands plus the ``all`` expansion, in run order.
COMMANDS = (*spec_registry.command_names(), "all")

#: Service words routed to their own parser (everything after them
#: belongs to the service grammar, not the experiment-grid options).
SERVICE_COMMANDS = ("serve", "work", "store")


# ---------------------------------------------------------------------------
# Experiment-grid surface
# ---------------------------------------------------------------------------

def _add_setup_options(parser: argparse.ArgumentParser) -> None:
    """The options every grid-executing command shares."""
    parser.add_argument("--machine", choices=("small", "paper"), default="small")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated benchmark names")
    parser.add_argument("--kernel", choices=(*kernel_names(), AUTO_KERNEL),
                        default=None,
                        help="simulation kernel (default: fast; all kernels "
                             "are differentially verified bit-identical; "
                             "'auto' picks fast vs batched per trace)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("command", nargs="?", choices=COMMANDS,
                        help="experiment to run (see --list)")
    parser.add_argument("--list", action="store_true", dest="list_commands",
                        help="list the registered experiments and exit")
    _add_setup_options(parser)
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="shard each experiment grid's RunPoints over "
                             "N worker processes (0 = sequential)")
    parser.add_argument("--distributed", type=int, default=0, metavar="N",
                        help="run each grid through the distributed "
                             "experiment service with N local workers "
                             "(0 = off); see also 'serve' and 'work'")
    parser.add_argument("--queue", type=Path, default=None, metavar="DIR",
                        help="work-queue directory for --distributed "
                             "(default: a fresh temporary directory)")
    parser.add_argument("--lease-ttl", type=float, default=60.0,
                        metavar="SECONDS",
                        help="distributed lease timeout before a point is "
                             "requeued (default: 60)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result store "
                             "(in-memory deduplication still applies)")
    return parser


def make_setup(args: argparse.Namespace) -> ExperimentSetup:
    config = MachineConfig.paper() if args.machine == "paper" else MachineConfig.small()
    return ExperimentSetup(config, scale=args.scale, seed=args.seed, kernel=args.kernel)


def render_command_list() -> str:
    """The ``--list`` catalog, generated from the registry."""
    commands = spec_registry.registered_commands()
    width = max(len(command.name) for command in commands)
    lines = ["Registered experiments:"]
    for command in commands:
        kind = "grid" if command.is_grid else "report"
        lines.append(f"  {command.name.ljust(width)}  [{kind:6s}] {command.description}")
    lines.append(f"  {'all'.ljust(width)}  [meta  ] run every registered experiment")
    return "\n".join(lines)


def _validated_benchmarks(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> "list[str] | None":
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    if benchmarks is not None:
        try:
            spec_registry.validate_benchmarks(benchmarks)
        except ValueError as exc:
            parser.error(str(exc))
    return benchmarks


def _distributed_executor(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    store: ResultStore,
):
    """The ``--distributed N`` executor, or a parser error."""
    from repro.experiments.service import make_distributed_executor

    if args.no_cache:
        parser.error("--distributed needs the shared result store; "
                     "drop --no-cache")
    if store.root is None or not getattr(store.backend, "persistent", False):
        parser.error("--distributed needs a disk-backed result store; "
                     "unset the disabling REPRO_RESULT_CACHE value")
    queue_root = args.queue or Path(tempfile.mkdtemp(prefix="repro-queue-"))
    return make_distributed_executor(
        queue_root,
        workers=args.distributed,
        lease_ttl=args.lease_ttl,
        log=lambda message: print(message, file=sys.stderr),
    )


def main(argv: "list[str] | None" = None, store: "ResultStore | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SERVICE_COMMANDS:
        return service_main(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_commands:
        print(render_command_list())
        return 0
    if args.command is None:
        parser.error("a command is required (or --list to see them)")
    benchmarks = _validated_benchmarks(args, parser)
    setup = make_setup(args)
    if store is None:
        store = ResultStore.memory() if args.no_cache else ResultStore.from_env()
    executor = None
    if args.distributed:
        executor = _distributed_executor(args, parser, store)
    started = time.time()
    for name in _expand(args.command):
        command = spec_registry.get_command(name)
        print(command.run(
            setup, benchmarks, store=store, max_workers=args.parallel,
            executor=executor,
        ))
        print()
    print(f"\n[{time.time() - started:.1f}s elapsed]", file=sys.stderr)
    print(f"[{store.describe()}]", file=sys.stderr)
    return 0


def _expand(command: str) -> tuple[str, ...]:
    if command != "all":
        return (command,)
    return spec_registry.command_names()


# ---------------------------------------------------------------------------
# Service surface: serve / work / store
# ---------------------------------------------------------------------------

def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro experiments",
        description="Distributed experiment service.",
    )
    sub = parser.add_subparsers(dest="service", required=True)

    serve = sub.add_parser(
        "serve",
        help="broker an experiment grid onto a shared work queue",
        description="Queue a grid's store-missed points and collect the "
                    "results workers commit; bit-identical to running "
                    "the grid sequentially.",
    )
    serve.add_argument("command", choices=COMMANDS,
                       help="experiment grid to broker")
    serve.add_argument("--queue", type=Path, required=True, metavar="DIR",
                       help="work-queue directory (create/reuse); workers "
                            "attach to it with 'work --queue'")
    _add_setup_options(serve)
    serve.add_argument("--store", type=Path, default=None, metavar="DIR",
                       help="shared result-store directory (default: the "
                            "REPRO_RESULT_CACHE store)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="also launch N local worker processes "
                            "(default: rely on externally started workers)")
    serve.add_argument("--shards", type=int, default=None, metavar="N",
                       help="queue shards (default: max(workers, 4))")
    serve.add_argument("--lease-ttl", type=float, default=60.0)
    serve.add_argument("--max-attempts", type=int, default=3)
    serve.add_argument("--retry-backoff", type=float, default=0.5)
    serve.add_argument("--timeout", type=float, default=None,
                       help="give up after this many seconds per grid")

    work = sub.add_parser(
        "work",
        help="serve leases from a work queue until it stops",
        description="Lease tasks from --queue, simulate (or read through "
                    "the shared store), and commit results; exits when "
                    "the broker raises the stop sentinel.",
    )
    work.add_argument("--queue", type=Path, required=True, metavar="DIR")
    work.add_argument("--store", type=Path, default=None, metavar="DIR",
                      help="shared result-store directory (default: the "
                           "REPRO_RESULT_CACHE store)")
    work.add_argument("--worker-id", type=str, default=None)
    work.add_argument("--shards", type=str, default="", metavar="I,J,...",
                      help="preferred queue shards (work-stealing covers "
                           "the rest)")
    work.add_argument("--wait", type=float, default=0.0, metavar="SECONDS",
                      help="wait up to this long for the queue to appear")
    work.add_argument("--max-tasks", type=int, default=None)
    work.add_argument("--idle-timeout", type=float, default=None,
                      help="exit after this many consecutive idle seconds")

    store = sub.add_parser(
        "store",
        help="inspect or clear an on-disk result store",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    for name, help_text in (
        ("stats", "entry count, size and bound of a store directory"),
        ("purge", "delete every entry in a store directory"),
    ):
        store_cmd = store_sub.add_parser(name, help=help_text)
        store_cmd.add_argument("--store", type=Path, default=None,
                               metavar="DIR",
                               help="store directory (default: the "
                                    "REPRO_RESULT_CACHE store)")
    return parser


def _open_store(path: "Path | None", parser: argparse.ArgumentParser) -> ResultStore:
    """A disk-backed store from ``--store`` or the environment."""
    if path is not None:
        return ResultStore(
            backend=open_disk_backend(path, max_bytes=max_bytes_from_env())
        )
    store = ResultStore.from_env()
    if store.root is None:
        parser.error(
            "no on-disk store: pass --store DIR or point REPRO_RESULT_CACHE "
            "at a directory (it is currently set to a disabling value)"
        )
    return store


def _cmd_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.experiments.service import make_distributed_executor

    benchmarks = _validated_benchmarks(args, parser)
    setup = make_setup(args)
    store = _open_store(args.store, parser)
    say = lambda message: print(message, file=sys.stderr)  # noqa: E731
    executor = make_distributed_executor(
        args.queue,
        workers=args.workers,
        subdir_per_spec=False,
        num_shards=args.shards or max(args.workers, 4),
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        retry_backoff=args.retry_backoff,
        timeout=args.timeout,
        stop_when_done=False,
        log=say,
    )
    started = time.time()
    try:
        for name in _expand(args.command):
            command = spec_registry.get_command(name)
            print(command.run(setup, benchmarks, store=store, executor=executor))
            print()
    finally:
        _stop_queue(args.queue)
    print(f"\n[{time.time() - started:.1f}s elapsed]", file=sys.stderr)
    print(f"[{store.describe()}]", file=sys.stderr)
    return 0


def _stop_queue(queue_root: Path) -> None:
    """Raise the stop sentinel so attached workers drain out and exit."""
    from repro.experiments.service import QueueError, WorkQueue

    try:
        WorkQueue.open(queue_root).stop()
    except QueueError:
        pass  # the grid was fully store-served; no queue was created


def _cmd_work(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.experiments.service import QueueError, WorkQueue
    from repro.experiments.service.worker import HOLD_FIRST_ENV_VAR, Worker

    store = _open_store(args.store, parser)
    try:
        shards = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
    except ValueError:
        parser.error(f"--shards must be comma-separated integers, "
                     f"got {args.shards!r}")
    try:
        queue = WorkQueue.open(args.queue, wait=args.wait)
    except QueueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    worker = Worker(
        queue,
        store,
        worker_id=args.worker_id,
        preferred_shards=shards,
        hold_first_s=float(os.environ.get(HOLD_FIRST_ENV_VAR, "0") or 0),
    )
    stats = worker.run(max_tasks=args.max_tasks, idle_timeout=args.idle_timeout)
    print(f"[worker {worker.worker_id}: {stats.describe()}]", file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    store = _open_store(args.store, parser)
    backend = store.backend
    if args.store_command == "purge":
        if not hasattr(backend, "purge"):
            parser.error(f"{backend.location()} is not a purgeable disk store")
        removed = backend.purge()
        print(f"purged {removed.entries} entries "
              f"({removed.total_bytes / 1024 / 1024:.2f} MB) "
              f"from {removed.location}")
        return 0
    print(backend.stats().describe())
    return 0


def service_main(argv: "list[str]") -> int:
    parser = build_service_parser()
    args = parser.parse_args(argv)
    if args.service == "serve":
        return _cmd_serve(args, parser)
    if args.service == "work":
        return _cmd_work(args, parser)
    return _cmd_store(args, parser)


if __name__ == "__main__":
    raise SystemExit(main())
