"""Experiment runner: (scheme × benchmark × parameters) → statistics.

This is the layer every figure module builds on.  It owns:

* trace construction (one deterministic trace per benchmark/seed,
  memoized so a seven-scheme comparison reuses the same access streams);
* the ASR replication-level search (Section 3.3: run the five discrete
  levels and keep the lowest energy-delay product);
* the per-scheme energy model (the locality scheme charges its extended
  directory at 1.2×).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.common.params import MachineConfig
from repro.schemes.asr import ASRScheme
from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.sim.stats import SimStats
from repro.workloads.benchmarks import BENCHMARK_ORDER, build_trace, get_profile
from repro.workloads.imports import imported_trace_path, is_imported_benchmark
from repro.workloads.io import load_trace_set
from repro.workloads.streaming import StreamingTraceSet, stream_threshold_bytes
from repro.workloads.trace import TraceSet


@dataclasses.dataclass
class RunResult:
    """One simulation outcome, with the scheme's own energy accounting."""

    scheme: str
    benchmark: str
    stats: SimStats
    energy_breakdown: dict[str, float]
    #: The ASR replication level chosen, when applicable.
    asr_level: float | None = None

    @property
    def total_energy(self) -> float:
        return sum(self.energy_breakdown.values())

    @property
    def completion_time(self) -> float:
        return self.stats.completion_time


@dataclasses.dataclass
class ExperimentSetup:
    """Shared parameters for a batch of runs."""

    config: MachineConfig
    scale: float = 1.0
    seed: int = 1
    asr_levels: tuple[float, ...] = ASRScheme.LEVELS
    #: Simulation kernel name (None → REPRO_SIM_KERNEL env var → "fast").
    #: ``"auto"`` probes each trace's run-length structure and picks
    #: fast vs batched per run.  All kernels are differentially verified
    #: bit-identical, so this only trades speed, never results.
    kernel: str | None = None

    def __post_init__(self) -> None:
        self._trace_cache: dict[str, TraceSet] = {}

    def trace_for(self, benchmark: str) -> TraceSet:
        """The benchmark's trace set (memoized per setup).

        Catalog names build a synthetic trace from the profile; an
        ``imported:<path>`` name loads the ``.npz`` archive at that path
        instead (the setup's ``scale``/``seed`` do not apply — an
        imported capture is fixed data).  The simulator still checks
        that the trace's core count matches this setup's machine.

        Large imported archives stream: when the archive file exceeds
        ``REPRO_STREAM_THRESHOLD`` bytes (default 64 MiB; ``0`` streams
        everything, negative never streams) the loaded set is wrapped in
        a :class:`~repro.workloads.streaming.StreamingTraceSet`, so the
        simulator runs it chunk-by-chunk in bounded memory.  Streamed
        and materialized runs are bit-identical by construction.
        """
        trace = self._trace_cache.get(benchmark)
        if trace is None:
            if is_imported_benchmark(benchmark):
                path = imported_trace_path(benchmark)
                trace = load_trace_set(path)
                threshold = stream_threshold_bytes()
                if threshold >= 0 and path.stat().st_size >= threshold:
                    trace = StreamingTraceSet.from_trace_set(trace)
            else:
                trace = build_trace(
                    get_profile(benchmark), self.config, self.scale, self.seed
                )
            self._trace_cache[benchmark] = trace
        return trace

    def release_decoded(self, benchmark: str) -> None:
        """Free ``benchmark``'s decoded hot-loop views (kept: the TraceSet).

        Experiment loops call this after finishing a benchmark's batch of
        runs: the fast kernel's decoded views are boxed-Python copies of
        the trace arrays, pure dead weight once the batch is done.
        """
        trace = self._trace_cache.get(benchmark)
        if trace is not None:
            trace.release_decoded()

    @classmethod
    def small(cls, scale: float = 1.0, seed: int = 1, **config_overrides) -> "ExperimentSetup":
        return cls(MachineConfig.small(**config_overrides), scale=scale, seed=seed)

    @classmethod
    def paper(cls, scale: float = 1.0, seed: int = 1, **config_overrides) -> "ExperimentSetup":
        return cls(MachineConfig.paper(**config_overrides), scale=scale, seed=seed)


def run_one(
    setup: ExperimentSetup,
    scheme_label: str,
    benchmark: str,
    config: MachineConfig | None = None,
    kernel: str | None = None,
    **scheme_kwargs,
) -> RunResult:
    """Run one (scheme, benchmark) pair.

    ``ASR`` triggers the replication-level search automatically.  An
    explicit ``config`` overrides the setup's machine (used by sweeps
    that vary classifier k or cluster size); an explicit ``kernel``
    overrides the setup's simulation kernel for this run only.
    """
    machine_config = config or setup.config
    if scheme_label == "ASR" and "replication_level" not in scheme_kwargs:
        return run_asr_best(setup, benchmark, machine_config, kernel=kernel)
    traces = setup.trace_for(benchmark)
    engine = make_scheme(scheme_label, machine_config, **scheme_kwargs)
    stats = simulate(engine, traces, kernel=kernel if kernel is not None else setup.kernel)
    breakdown = stats.energy_breakdown(engine.energy_model())
    return RunResult(scheme_label, benchmark, stats, breakdown)


def run_asr_best(
    setup: ExperimentSetup,
    benchmark: str,
    config: MachineConfig | None = None,
    kernel: str | None = None,
) -> RunResult:
    """ASR at the five replication levels; keep the lowest-EDP level."""
    machine_config = config or setup.config
    traces = setup.trace_for(benchmark)
    best: RunResult | None = None
    best_edp = float("inf")
    for level in setup.asr_levels:
        engine = make_scheme("ASR", machine_config, replication_level=level)
        stats = simulate(engine, traces, kernel=kernel if kernel is not None else setup.kernel)
        breakdown = stats.energy_breakdown(engine.energy_model())
        energy = sum(breakdown.values())
        edp = energy * stats.completion_time
        if edp < best_edp:
            best_edp = edp
            best = RunResult("ASR", benchmark, stats, breakdown, asr_level=level)
    assert best is not None
    return best


def run_matrix(
    setup: ExperimentSetup,
    schemes: Iterable[str],
    benchmarks: Iterable[str] | None = None,
):
    """Run every (benchmark, scheme) combination.

    Returns a :class:`~repro.experiments.results.ResultSet`, readable as
    the legacy ``results[benchmark][scheme]`` mapping.  Implemented as an
    anonymous :class:`~repro.experiments.spec.ExperimentSpec` so the
    executor owns trace release and per-invocation deduplication.
    """
    from repro.experiments.spec import ExperimentSpec, RunPoint, execute_spec

    bench_list = list(benchmarks) if benchmarks is not None else list(BENCHMARK_ORDER)
    scheme_list = list(schemes)
    points = tuple(
        RunPoint(scheme=scheme, benchmark=benchmark)
        for benchmark in bench_list
        for scheme in scheme_list
    )
    return execute_spec(ExperimentSpec("matrix", points), setup)
