"""Parallel experiment execution across worker processes.

The simulator is single-threaded pure Python; a full figure matrix is
hundreds of independent (scheme, benchmark, config) runs, so process
pools give near-linear speedups.  Workers rebuild traces from the
(benchmark, scale, seed) triple — trace generation is deterministic and
cheap relative to simulation, so nothing large crosses the process
boundary except the result statistics.

The parallel path executes the same
:class:`~repro.experiments.spec.ExperimentSpec` grids the sequential
executor does: :func:`execute_spec_parallel` checks the
:class:`~repro.experiments.store.ResultStore` first
(:func:`scan_spec_misses` — shared with the distributed broker in
:mod:`repro.experiments.service`), shards only the *missed* RunPoints
into picklable :class:`RunSpec` units, and reduces ASR's
replication-level search on collection — identical semantics and
bit-identical results.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterable

from repro.common.params import MachineConfig
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup, RunResult, run_one

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import ExperimentSpec, RunPoint
    from repro.experiments.store import ResultStore


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described by picklable values."""

    scheme: str
    benchmark: str
    config: MachineConfig
    scale: float
    seed: int
    #: Extra scheme-constructor arguments (must be picklable).
    scheme_kwargs: tuple = ()
    #: Simulation kernel selection (None → environment → default).
    kernel: str | None = None

    def kwargs(self) -> dict:
        return dict(self.scheme_kwargs)


def _execute(spec: RunSpec) -> RunResult:
    """Worker entry point: rebuild the setup and run one simulation."""
    setup = ExperimentSetup(
        spec.config, scale=spec.scale, seed=spec.seed, kernel=spec.kernel
    )
    kwargs = spec.kwargs()
    result = run_one(setup, spec.scheme, spec.benchmark, **kwargs)
    if spec.scheme == "ASR" and "replication_level" in kwargs:
        result.asr_level = kwargs["replication_level"]
    return result


def run_specs(
    specs: Iterable[RunSpec], max_workers: int | None = None
) -> list[RunResult]:
    """Run the specs across a process pool, preserving order.

    ``max_workers=1`` (or a single spec) short-circuits to in-process
    execution, which keeps debugging and coverage tooling simple.
    """
    spec_list = list(specs)
    if max_workers is None:
        max_workers = min(len(spec_list), os.cpu_count() or 1)
    if max_workers <= 1 or len(spec_list) <= 1:
        return [_execute(spec) for spec in spec_list]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_execute, spec_list))


def _edp(result: RunResult) -> float:
    return result.total_energy * result.completion_time


def point_run_specs(
    point: "RunPoint", setup: ExperimentSetup
) -> list[RunSpec]:
    """The picklable RunSpec expansion of one RunPoint.

    Most points map to one RunSpec; an ASR point without an explicit
    replication level expands into one spec per level (the lowest-EDP
    result is kept on collection — identical to the sequential search).
    """
    config = point.effective_config(setup.config)
    scale = point.scale if point.scale is not None else setup.scale
    seed = point.seed if point.seed is not None else setup.seed
    kernel = point.kernel if point.kernel is not None else setup.kernel
    kwargs = point.scheme_kwargs
    if point.scheme == "ASR" and "replication_level" not in dict(kwargs):
        return [
            RunSpec(
                point.scheme, point.benchmark, config, scale, seed,
                scheme_kwargs=kwargs + (("replication_level", level),),
                kernel=kernel,
            )
            for level in setup.asr_levels
        ]
    return [
        RunSpec(
            point.scheme, point.benchmark, config, scale, seed,
            scheme_kwargs=kwargs, kernel=kernel,
        )
    ]


def scan_spec_misses(
    spec: "ExperimentSpec",
    setup: ExperimentSetup,
    store: "ResultStore",
) -> "tuple[dict, list[tuple[str, list]]]":
    """Split a spec into store-served results and missed point groups.

    Returns ``(results, missed)`` where ``results`` maps store-served
    RunPoints to their results and ``missed`` lists, in first-appearance
    order, ``(content address, [points sharing it])`` for every address
    that has to be simulated.  Duplicate same-address points are counted
    as hits up front (mirroring the sequential path, which would hit
    once the first of them is stored), so accounting is identical across
    the sequential, process-pool and distributed executors — all three
    build on this scan.
    """
    results: dict = {}
    order: list[str] = []
    groups: dict = {}
    for point in spec.points:
        key = store.key_for(point.fingerprint(setup))
        if key in groups:
            # Same content address already pending: don't simulate it
            # twice (mirrors the sequential path, which would hit here).
            groups[key].append(point)
            store.record_hit()
            continue
        cached = store.get(key)
        if cached is not None:
            results[point] = cached
            continue
        groups[key] = [point]
        order.append(key)
    return results, [(key, groups[key]) for key in order]


def execute_spec_parallel(
    spec: "ExperimentSpec",
    setup: ExperimentSetup,
    store: "ResultStore",
    max_workers: int | None = None,
) -> ResultSet:
    """Parallel twin of :func:`repro.experiments.spec.execute_spec`.

    Stored results are served without simulating; only the missed points
    are sharded across the pool, and every fresh result is written back
    to the store.
    """
    results, missed = scan_spec_misses(spec, setup, store)
    pending: list[tuple] = []  # (key, points, spec count)
    work: list[RunSpec] = []
    for key, points in missed:
        expansion = point_run_specs(points[0], setup)
        pending.append((key, points, len(expansion)))
        work.extend(expansion)

    outputs = run_specs(work, max_workers=max_workers)
    cursor = 0
    for key, points, count in pending:
        candidates = outputs[cursor:cursor + count]
        cursor += count
        result = candidates[0] if count == 1 else min(candidates, key=_edp)
        store.put(key, result)
        for shared_point in points:
            results[shared_point] = result

    # Preserve the spec's point order in the result set.
    ordered = {point: results[point] for point in spec.points}
    return ResultSet.from_spec(spec, ordered)


def run_matrix_parallel(
    setup: ExperimentSetup,
    schemes: Iterable[str],
    benchmarks: Iterable[str],
    max_workers: int | None = None,
) -> ResultSet:
    """Parallel version of :func:`repro.experiments.runner.run_matrix`.

    Builds the (benchmark × scheme) grid as an anonymous
    :class:`ExperimentSpec` and shards its RunPoints — the same code
    path every figure's ``--parallel`` execution uses.
    """
    from repro.experiments.spec import ExperimentSpec, RunPoint
    from repro.experiments.store import ResultStore

    bench_list = list(benchmarks)
    scheme_list = list(schemes)
    points = tuple(
        RunPoint(scheme=scheme, benchmark=benchmark)
        for benchmark in bench_list
        for scheme in scheme_list
    )
    return execute_spec_parallel(
        ExperimentSpec("matrix", points), setup, ResultStore.memory(),
        max_workers=max_workers,
    )
