"""Parallel experiment execution across worker processes.

The simulator is single-threaded pure Python; a full figure matrix is
hundreds of independent (scheme, benchmark, config) runs, so process
pools give near-linear speedups.  Workers rebuild traces from the
(benchmark, scale, seed) triple — trace generation is deterministic and
cheap relative to simulation, so nothing large crosses the process
boundary except the result statistics.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup, RunResult, run_one


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully described by picklable values."""

    scheme: str
    benchmark: str
    config: MachineConfig
    scale: float
    seed: int
    #: Extra scheme-constructor arguments (must be picklable).
    scheme_kwargs: tuple = ()
    #: Simulation kernel selection (None → environment → default).
    kernel: str | None = None

    def kwargs(self) -> dict:
        return dict(self.scheme_kwargs)


def _execute(spec: RunSpec) -> RunResult:
    """Worker entry point: rebuild the setup and run one simulation."""
    setup = ExperimentSetup(
        spec.config, scale=spec.scale, seed=spec.seed, kernel=spec.kernel
    )
    kwargs = spec.kwargs()
    result = run_one(setup, spec.scheme, spec.benchmark, **kwargs)
    if spec.scheme == "ASR" and "replication_level" in kwargs:
        result.asr_level = kwargs["replication_level"]
    return result


def run_specs(
    specs: Iterable[RunSpec], max_workers: int | None = None
) -> list[RunResult]:
    """Run the specs across a process pool, preserving order.

    ``max_workers=1`` (or a single spec) short-circuits to in-process
    execution, which keeps debugging and coverage tooling simple.
    """
    spec_list = list(specs)
    if max_workers is None:
        max_workers = min(len(spec_list), os.cpu_count() or 1)
    if max_workers <= 1 or len(spec_list) <= 1:
        return [_execute(spec) for spec in spec_list]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_execute, spec_list))


def run_matrix_parallel(
    setup: ExperimentSetup,
    schemes: Iterable[str],
    benchmarks: Iterable[str],
    max_workers: int | None = None,
) -> dict[str, dict[str, RunResult]]:
    """Parallel version of :func:`repro.experiments.runner.run_matrix`.

    The ASR replication-level search expands into one spec per level,
    with the energy-delay-product selection applied on collection —
    identical semantics to the sequential runner.
    """
    scheme_list = list(schemes)
    bench_list = list(benchmarks)
    specs: list[RunSpec] = []
    for benchmark in bench_list:
        for scheme in scheme_list:
            if scheme == "ASR":
                for level in setup.asr_levels:
                    specs.append(RunSpec(
                        scheme, benchmark, setup.config, setup.scale, setup.seed,
                        scheme_kwargs=(("replication_level", level),),
                        kernel=setup.kernel,
                    ))
            else:
                specs.append(RunSpec(
                    scheme, benchmark, setup.config, setup.scale, setup.seed,
                    kernel=setup.kernel,
                ))
    results = run_specs(specs, max_workers=max_workers)

    matrix: dict[str, dict[str, RunResult]] = {b: {} for b in bench_list}
    cursor = 0
    for benchmark in bench_list:
        for scheme in scheme_list:
            if scheme == "ASR":
                candidates = results[cursor:cursor + len(setup.asr_levels)]
                cursor += len(setup.asr_levels)
                matrix[benchmark][scheme] = min(
                    candidates,
                    key=lambda r: r.total_energy * r.completion_time,
                )
            else:
                matrix[benchmark][scheme] = results[cursor]
                cursor += 1
    return matrix
