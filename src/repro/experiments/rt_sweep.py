"""Replication-threshold sweep (Section 4.1's RT exploration).

The paper evaluated every RT between 1 and 8 and reported that RT = 3
"achieves the best trade-off" between on-chip locality (low RT → more
replicas) and off-chip miss rate (high RT → less LLC pollution), with
RT-1 and RT-8 shown in Figures 6–8 as the instructive extremes.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.reporting import format_table
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    execute_spec,
    register_experiment,
    resolve_benchmarks,
)
from repro.experiments.store import ResultStore

RT_VALUES = (1, 2, 3, 4, 6, 8)

#: A spread of benchmarks where RT matters: LLC-pressure benchmarks
#: punish low RT, reuse-heavy benchmarks punish high RT.
SWEEP_BENCHMARKS = (
    "BARNES", "FLUIDANIMATE", "OCEAN-C", "STREAMCLUSTER", "BLACKSCHOLES",
)


def rt_sweep_spec(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    rt_values: Iterable[int] = RT_VALUES,
) -> ExperimentSpec:
    """The RT grid: one ``RT-<n>`` point per threshold (integer labels)."""
    bench_list = resolve_benchmarks(benchmarks, SWEEP_BENCHMARKS)
    rt_list = list(rt_values)
    points = tuple(
        RunPoint(f"RT-{rt}", benchmark, label=rt)
        for benchmark in bench_list
        for rt in rt_list
    )
    return ExperimentSpec(
        "rt-sweep", points,
        title="Replication-threshold sweep",
        baseline=rt_list[0] if rt_list else None,
    )


def run_rt_sweep(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    rt_values: Iterable[int] = RT_VALUES,
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark][rt]`` for the locality-aware scheme."""
    return execute_spec(rt_sweep_spec(setup, benchmarks, rt_values), setup, store=store)


def best_rt_by_edp(results) -> int:
    """The RT minimizing geomean energy-delay product across benchmarks."""
    edp = ResultSet.ensure(results).geomean(
        value=lambda result: result.total_energy * result.completion_time
    )
    return min(edp, key=edp.get)


def render_rt_sweep(results) -> str:
    results = ResultSet.ensure(results)
    rts = results.labels()
    base = rts[0]
    energy = results.normalized_to(base, "total_energy")
    time = results.normalized_to(base, "completion_time")
    energy_rows = [
        [benchmark, *[row[rt] for rt in rts]] for benchmark, row in energy.items()
    ]
    time_rows = [
        [benchmark, *[row[rt] for rt in rts]] for benchmark, row in time.items()
    ]
    headers = ["Benchmark", *[f"RT-{rt}" for rt in rts]]
    return "\n\n".join(
        (
            format_table(headers, energy_rows,
                         title="RT sweep: energy (normalized to RT-1)"),
            format_table(headers, time_rows,
                         title="RT sweep: completion time (normalized to RT-1)"),
            f"Best RT by geomean EDP: {best_rt_by_edp(results)}",
        )
    )


register_experiment(
    "rt-sweep", "Replication-threshold sweep (RT=1..8, best RT by EDP)",
    lambda results, setup: render_rt_sweep(results),
)(lambda setup, benchmarks=None: rt_sweep_spec(setup, benchmarks))
