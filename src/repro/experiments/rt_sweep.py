"""Replication-threshold sweep (Section 4.1's RT exploration).

The paper evaluated every RT between 1 and 8 and reported that RT = 3
"achieves the best trade-off" between on-chip locality (low RT → more
replicas) and off-chip miss rate (high RT → less LLC pollution), with
RT-1 and RT-8 shown in Figures 6–8 as the instructive extremes.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.reporting import format_table, geomean
from repro.experiments.runner import ExperimentSetup, RunResult, run_one

RT_VALUES = (1, 2, 3, 4, 6, 8)

#: A spread of benchmarks where RT matters: LLC-pressure benchmarks
#: punish low RT, reuse-heavy benchmarks punish high RT.
SWEEP_BENCHMARKS = (
    "BARNES", "FLUIDANIMATE", "OCEAN-C", "STREAMCLUSTER", "BLACKSCHOLES",
)


def run_rt_sweep(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    rt_values: Iterable[int] = RT_VALUES,
) -> dict[str, dict[int, RunResult]]:
    """``results[benchmark][rt]`` for the locality-aware scheme."""
    bench_list = list(benchmarks) if benchmarks is not None else list(SWEEP_BENCHMARKS)
    results: dict[str, dict[int, RunResult]] = {}
    for benchmark in bench_list:
        row: dict[int, RunResult] = {}
        for rt in rt_values:
            row[rt] = run_one(setup, f"RT-{rt}", benchmark)
        results[benchmark] = row
        setup.release_decoded(benchmark)
    return results


def best_rt_by_edp(results: dict[str, dict[int, RunResult]]) -> int:
    """The RT minimizing geomean energy-delay product across benchmarks."""
    rts = list(next(iter(results.values())).keys())
    best_rt = rts[0]
    best_score = float("inf")
    for rt in rts:
        score = geomean(
            row[rt].total_energy * row[rt].completion_time
            for row in results.values()
        )
        if score < best_score:
            best_score = score
            best_rt = rt
    return best_rt


def render_rt_sweep(results: dict[str, dict[int, RunResult]]) -> str:
    rts = list(next(iter(results.values())).keys())
    energy_rows = []
    time_rows = []
    for benchmark, row in results.items():
        base = row[rts[0]]
        energy_rows.append(
            [benchmark, *[row[rt].total_energy / base.total_energy for rt in rts]]
        )
        time_rows.append(
            [benchmark, *[row[rt].completion_time / base.completion_time for rt in rts]]
        )
    headers = ["Benchmark", *[f"RT-{rt}" for rt in rts]]
    return "\n\n".join(
        (
            format_table(headers, energy_rows,
                         title="RT sweep: energy (normalized to RT-1)"),
            format_table(headers, time_rows,
                         title="RT sweep: completion time (normalized to RT-1)"),
            f"Best RT by geomean EDP: {best_rt_by_edp(results)}",
        )
    )
