"""Figure 9: Limited_k classifier sensitivity (Section 4.3).

Runs the locality-aware protocol (at the paper's best RT of 3) with
k ∈ {1, 3, 5, 7, 64} and reports energy and completion time normalized
to the Complete classifier (k = 64 on the paper machine; k = num_cores
in general — ``make_classifier`` treats k ≥ num_cores as Complete).

The paper's benchmark list for this figure is the subset whose behaviour
varies with k (the rest look like DEDUP: flat lines).
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.reporting import format_table, geomean
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    execute_spec,
    register_experiment,
    resolve_benchmarks,
)
from repro.experiments.store import ResultStore

#: k values of Figure 9; the machine's core count plays the role of 64.
K_VALUES = (1, 3, 5, 7, None)  # None → Complete classifier

#: The benchmarks Figure 9 plots (the others are insensitive to k).
FIG9_BENCHMARKS = (
    "RADIX", "LU-NC", "CHOLESKY", "BARNES", "OCEAN-NC", "WATER-NSQ",
    "RAYTRACE", "VOLREND", "STREAMCLUSTER", "DEDUP", "FERRET", "FACESIM",
    "CONCOMP",
)


def k_label(k: int | None, num_cores: int) -> str:
    return f"k={num_cores}" if k is None else f"k={k}"


def fig9_spec(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    k_values: Iterable[int | None] = K_VALUES,
) -> ExperimentSpec:
    """The classifier-k grid: locality scheme at RT=3, one point per k."""
    bench_list = resolve_benchmarks(benchmarks, FIG9_BENCHMARKS)
    k_list = list(k_values)
    num_cores = setup.config.num_cores
    points = tuple(
        RunPoint(
            "Locality", benchmark,
            config_overrides=(
                ("classifier_k", k), ("replication_threshold", 3),
            ),
            label=k_label(k, num_cores),
        )
        for benchmark in bench_list
        for k in k_list
    )
    return ExperimentSpec(
        "fig9", points,
        title="Figure 9: Limited_k classifier sensitivity",
        baseline=k_label(None, num_cores),
    )


def run_fig9(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    k_values: Iterable[int | None] = K_VALUES,
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark][k-label]`` for the locality scheme at RT=3."""
    return execute_spec(fig9_spec(setup, benchmarks, k_values), setup, store=store)


def normalized_tables(
    results, num_cores: int
) -> tuple[dict[str, dict[str, float]], dict[str, dict[str, float]]]:
    """(energy, completion time) normalized to the Complete classifier."""
    complete = k_label(None, num_cores)
    results = ResultSet.ensure(results)
    return (
        results.normalized_to(complete, "total_energy"),
        results.normalized_to(complete, "completion_time"),
    )


def render_fig9(
    energy: dict[str, dict[str, float]], time: dict[str, dict[str, float]]
) -> str:
    labels = list(next(iter(energy.values())).keys())
    sections = []
    for title, table in (
        ("Figure 9a: Energy (normalized to Complete classifier)", energy),
        ("Figure 9b: Completion Time (normalized to Complete classifier)", time),
    ):
        rows = [
            [benchmark, *[row[label] for label in labels]]
            for benchmark, row in table.items()
        ]
        rows.append(
            ["GEOMEAN", *[
                geomean(row[label] for row in table.values()) for label in labels
            ]]
        )
        sections.append(format_table(["Benchmark", *labels], rows, title=title))
    return "\n\n".join(sections)


def _render(results: ResultSet, setup: ExperimentSetup) -> str:
    energy, time = normalized_tables(results, setup.config.num_cores)
    return render_fig9(energy, time)


register_experiment(
    "fig9", "Figure 9: Limited_k classifier sensitivity (energy/time vs k)",
    _render,
)(lambda setup, benchmarks=None: fig9_spec(setup, benchmarks))
