"""Figure 9: Limited_k classifier sensitivity (Section 4.3).

Runs the locality-aware protocol (at the paper's best RT of 3) with
k ∈ {1, 3, 5, 7, 64} and reports energy and completion time normalized
to the Complete classifier (k = 64 on the paper machine; k = num_cores
in general — ``make_classifier`` treats k ≥ num_cores as Complete).

The paper's benchmark list for this figure is the subset whose behaviour
varies with k (the rest look like DEDUP: flat lines).
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.reporting import format_table, geomean
from repro.experiments.runner import ExperimentSetup, RunResult, run_one

#: k values of Figure 9; the machine's core count plays the role of 64.
K_VALUES = (1, 3, 5, 7, None)  # None → Complete classifier

#: The benchmarks Figure 9 plots (the others are insensitive to k).
FIG9_BENCHMARKS = (
    "RADIX", "LU-NC", "CHOLESKY", "BARNES", "OCEAN-NC", "WATER-NSQ",
    "RAYTRACE", "VOLREND", "STREAMCLUSTER", "DEDUP", "FERRET", "FACESIM",
    "CONCOMP",
)


def k_label(k: int | None, num_cores: int) -> str:
    return f"k={num_cores}" if k is None else f"k={k}"


def run_fig9(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    k_values: Iterable[int | None] = K_VALUES,
) -> dict[str, dict[str, RunResult]]:
    """``results[benchmark][k-label]`` for the locality scheme at RT=3."""
    bench_list = list(benchmarks) if benchmarks is not None else list(FIG9_BENCHMARKS)
    num_cores = setup.config.num_cores
    results: dict[str, dict[str, RunResult]] = {}
    for benchmark in bench_list:
        row: dict[str, RunResult] = {}
        for k in k_values:
            config = setup.config.with_overrides(
                classifier_k=None if k is None else k,
                replication_threshold=3,
            )
            row[k_label(k, num_cores)] = run_one(
                setup, "Locality", benchmark, config=config
            )
        results[benchmark] = row
        setup.release_decoded(benchmark)
    return results


def normalized_tables(
    results: dict[str, dict[str, RunResult]], num_cores: int
) -> tuple[dict[str, dict[str, float]], dict[str, dict[str, float]]]:
    """(energy, completion time) normalized to the Complete classifier."""
    complete = k_label(None, num_cores)
    energy: dict[str, dict[str, float]] = {}
    time: dict[str, dict[str, float]] = {}
    for benchmark, row in results.items():
        base_energy = row[complete].total_energy
        base_time = row[complete].completion_time
        energy[benchmark] = {
            label: result.total_energy / base_energy for label, result in row.items()
        }
        time[benchmark] = {
            label: result.completion_time / base_time for label, result in row.items()
        }
    return energy, time


def render_fig9(
    energy: dict[str, dict[str, float]], time: dict[str, dict[str, float]]
) -> str:
    labels = list(next(iter(energy.values())).keys())
    sections = []
    for title, table in (
        ("Figure 9a: Energy (normalized to Complete classifier)", energy),
        ("Figure 9b: Completion Time (normalized to Complete classifier)", time),
    ):
        rows = [
            [benchmark, *[row[label] for label in labels]]
            for benchmark, row in table.items()
        ]
        rows.append(
            ["GEOMEAN", *[
                geomean(row[label] for row in table.values()) for label in labels
            ]]
        )
        sections.append(format_table(["Benchmark", *labels], rows, title=title))
    return "\n\n".join(sections)
