"""Tables 1 and 2: the architectural parameters and the benchmark catalog."""

from __future__ import annotations

from repro.common.params import MachineConfig
from repro.experiments.reporting import format_table
from repro.experiments.spec import register_report
from repro.workloads.benchmarks import BENCHMARK_ORDER, BENCHMARKS


def render_table1(config: MachineConfig) -> str:
    """The Table 1 parameter listing for a machine configuration."""
    rows = [
        ("Number of Cores", f"{config.num_cores} @ {config.frequency_ghz:g} GHz"),
        ("Compute Pipeline per Core", "In-Order, Single-Issue"),
        ("L1-I Cache per core",
         f"{config.l1i.capacity_bytes // 1024} KB, {config.l1i.ways}-way, "
         f"{config.l1_latency} cycle"),
        ("L1-D Cache per core",
         f"{config.l1d.capacity_bytes // 1024} KB, {config.l1d.ways}-way, "
         f"{config.l1_latency} cycle"),
        ("L2 Cache (LLC) per core",
         f"{config.llc_slice.capacity_bytes // 1024} KB, {config.llc_slice.ways}-way, "
         f"{config.llc_tag_latency} cycle tag, {config.llc_data_latency} cycle data, "
         "Inclusive, R-NUCA"),
        ("Directory Protocol",
         f"Invalidation-based MESI, ACKwise_{config.ackwise_pointers}"),
        ("DRAM",
         f"{config.num_mem_controllers} controllers, "
         f"{config.dram_bandwidth_gbps:g} GBps/controller, "
         f"{config.dram_latency_ns:g} ns latency"),
        ("Mesh Hop Latency", f"{config.hop_latency} cycles (1-router, 1-link)"),
        ("Flit Width", f"{config.flit_width_bits} bits"),
        ("Cache Line", f"{config.llc_slice.line_bytes} bytes "
                       f"({config.cache_line_flits} flits)"),
        ("Replication Threshold", f"RT = {config.replication_threshold}"),
        ("Classifier",
         "Complete" if config.classifier_k is None else f"Limited_{config.classifier_k}"),
    ]
    return format_table(
        ["Architectural Parameter", "Value"], rows,
        title="Table 1: Architectural parameters",
    )


def render_table2() -> str:
    """The Table 2 benchmark catalog with paper inputs and our models."""
    rows = []
    for name in BENCHMARK_ORDER:
        profile = BENCHMARKS[name]
        mix = (
            f"I:{profile.f_ifetch:.0%} P:{profile.f_private:.0%} "
            f"RO:{profile.f_shared_ro:.0%} RW:{profile.f_shared_rw:.0%}"
            + (f" MIG:{profile.f_migratory:.0%}" if profile.f_migratory else "")
        )
        rows.append((name, profile.paper_input, mix))
    return format_table(
        ["Application", "Paper problem size", "Synthetic access mix"],
        rows,
        title="Table 2: Benchmark catalog",
    )


@register_report("table1", "Table 1: architectural parameters of the machine")
def _report_table1(setup, benchmarks=None) -> str:
    return render_table1(setup.config)


@register_report("table2", "Table 2: the 21-benchmark catalog")
def _report_table2(setup, benchmarks=None) -> str:
    return render_table2()
