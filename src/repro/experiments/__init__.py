"""Experiment harness: regenerate every figure and table in the paper.

The public surface is the declarative experiment API:

* :class:`RunPoint` / :class:`ExperimentSpec` — describe a grid of runs
  as data (``repro.experiments.spec``);
* :func:`execute_spec` — run a spec (sequentially or sharded across
  processes) against the content-addressed :class:`ResultStore`;
* :class:`ResultSet` — query the outcome (``pivot`` / ``normalized_to``
  / ``geomean`` / ``mean``);
* ``@register_experiment`` / ``@register_report`` — add a CLI command.

See ``python -m repro.experiments --help`` (and ``--list`` for the
registered command catalog).
"""

from repro.experiments.parallel import (
    RunSpec,
    execute_spec_parallel,
    run_matrix_parallel,
    run_specs,
)
from repro.experiments.results import ResultSet
from repro.experiments.runner import (
    ExperimentSetup,
    RunResult,
    run_asr_best,
    run_matrix,
    run_one,
)
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    execute_spec,
    register_experiment,
    register_report,
)
from repro.experiments.store import ResultStore

# Importing the figure/table modules populates the command registry the
# CLI (and ``--list``) is generated from; the import order below is the
# presentation order of ``python -m repro.experiments all``.
from repro.experiments import fig1_runlength  # noqa: E402,F401  (fig1)
from repro.experiments import comparison  # noqa: E402,F401  (fig6/fig7/fig8/breakdown)
from repro.experiments import fig9_limitedk  # noqa: E402,F401  (fig9)
from repro.experiments import fig10_cluster  # noqa: E402,F401  (fig10)
from repro.experiments import rt_sweep  # noqa: E402,F401  (rt-sweep)
from repro.experiments import ablations  # noqa: E402,F401  (five ablations)
from repro.experiments import tables  # noqa: E402,F401  (table1/table2)
from repro.experiments import storage  # noqa: E402,F401  (storage)
from repro.experiments import summary  # noqa: E402,F401  (summary)

__all__ = [
    "ExperimentSetup",
    "ExperimentSpec",
    "ResultSet",
    "ResultStore",
    "RunPoint",
    "RunResult",
    "RunSpec",
    "execute_spec",
    "execute_spec_parallel",
    "register_experiment",
    "register_report",
    "run_asr_best",
    "run_matrix",
    "run_matrix_parallel",
    "run_one",
    "run_specs",
]
