"""Experiment harness: regenerate every figure and table in the paper.

See ``python -m repro.experiments --help`` for the command-line entry
point, and DESIGN.md for the experiment → module index.
"""

from repro.experiments.parallel import RunSpec, run_matrix_parallel, run_specs
from repro.experiments.runner import (
    ExperimentSetup,
    RunResult,
    run_asr_best,
    run_matrix,
    run_one,
)

__all__ = [
    "ExperimentSetup",
    "RunResult",
    "RunSpec",
    "run_asr_best",
    "run_matrix",
    "run_matrix_parallel",
    "run_one",
    "run_specs",
]
