"""Broker: lease out a grid's store-missed RunPoints and collect results.

:func:`execute_spec_distributed` is the distributed twin of
:func:`repro.experiments.spec.execute_spec` and
:func:`repro.experiments.parallel.execute_spec_parallel`, and shares
their miss-scan (:func:`repro.experiments.parallel.scan_spec_misses`)
so the semantics — store-served points never simulate, same-address
points dedup, hit/miss accounting — are identical.  Only the execution
substrate differs: missed points become :class:`PointTask` leases on a
shared-filesystem :class:`WorkQueue`, served by worker processes on any
machine that mounts the queue and the shared store.

The broker never executes simulations itself.  Its loop is pure
supervision: reap expired leases (crash recovery), surface exhausted
retries as :class:`DistributedRunError` (carrying the worker's recorded
traceback), and collect each point's result from the shared store the
moment a worker commits it.  Because results are collected from the
store by content address, a grid completes **bit-identical to the
sequential runner** no matter how work was distributed, retried, stolen
or duplicated along the way.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.experiments.parallel import scan_spec_misses
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup
from repro.experiments.service.queue import WorkQueue
from repro.experiments.service.tasks import PointTask
from repro.experiments.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import ExperimentSpec


class DistributedRunError(RuntimeError):
    """A grid could not complete (exhausted retries, timeout, no workers)."""


def _require_shared_store(store: ResultStore) -> None:
    if store.root is None or not getattr(store.backend, "persistent", False):
        raise ValueError(
            "distributed execution needs a disk-backed shared ResultStore "
            "(workers commit results through it); pass ResultStore(<dir>) / "
            "ResultStore.shared(<dir>) or set REPRO_RESULT_CACHE — "
            "--no-cache cannot be distributed"
        )


def execute_spec_distributed(
    spec: "ExperimentSpec",
    setup: ExperimentSetup,
    store: ResultStore,
    queue_root: "Path | str",
    *,
    workers: int = 0,
    num_shards: "int | None" = None,
    lease_ttl: float = 60.0,
    max_attempts: int = 3,
    retry_backoff: float = 0.5,
    poll_interval: float = 0.05,
    timeout: "float | None" = None,
    stop_when_done: bool = True,
    log: "Callable[[str], None] | None" = None,
) -> ResultSet:
    """Run a spec's missed points through broker + workers → ResultSet.

    ``workers > 0`` launches that many local worker subprocesses bound
    to this queue (the ``--distributed N`` path); ``workers == 0``
    relies on externally launched workers (``python -m repro
    experiments work --queue ...``) attaching to ``queue_root``, which
    may live on a network mount shared across machines.

    Crash-tolerance contract: a worker killed mid-lease loses nothing —
    its lease expires, the point is requeued (bounded by
    ``max_attempts`` with exponential backoff), and the grid completes
    bit-identical to a sequential run.  A point whose retries are
    exhausted raises :class:`DistributedRunError` carrying the worker's
    recorded error.
    """
    _require_shared_store(store)
    results, missed = scan_spec_misses(spec, setup, store)
    if missed:
        _serve_missed(
            spec, setup, store, Path(queue_root), results, missed,
            workers=workers, num_shards=num_shards, lease_ttl=lease_ttl,
            max_attempts=max_attempts, retry_backoff=retry_backoff,
            poll_interval=poll_interval, timeout=timeout,
            stop_when_done=stop_when_done, log=log,
        )
    ordered = {point: results[point] for point in spec.points}
    return ResultSet.from_spec(spec, ordered)


def _serve_missed(
    spec, setup, store, queue_root, results, missed, *,
    workers, num_shards, lease_ttl, max_attempts, retry_backoff,
    poll_interval, timeout, stop_when_done, log,
) -> None:
    say = log or (lambda message: None)
    shards = num_shards or max(workers, 1)
    queue = WorkQueue.create(
        queue_root,
        num_shards=shards,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
    )
    groups = dict(missed)
    for key, points in missed:
        task = PointTask.from_point(points[0], setup, key)
        queue.submit(key, task.to_payload())
    say(
        f"broker: {len(groups)} point(s) queued at {queue.root} "
        f"({shards} shard(s), lease {lease_ttl:.0f}s)"
    )
    procs = launch_local_workers(workers, queue.root, store) if workers else []
    outstanding = set(groups)
    deadline = time.time() + timeout if timeout else None
    last_status = 0.0
    try:
        while outstanding:
            queue.reap_expired()
            for key in list(outstanding):
                failure = queue.failure(key)
                if failure is not None:
                    points = groups[key]
                    errors = failure.get("errors") or ["(no error recorded)"]
                    raise DistributedRunError(
                        f"point {points[0].scheme}/{points[0].benchmark} "
                        f"failed after {failure.get('attempts', '?')} "
                        f"attempt(s); last worker error:\n{errors[-1]}"
                    )
                result = store.fetch(key)
                if result is not None:
                    for point in groups[key]:
                        results[point] = result
                    outstanding.discard(key)
            if not outstanding:
                break
            if procs and all(proc.poll() is not None for proc in procs):
                raise DistributedRunError(
                    f"all {len(procs)} local workers exited with "
                    f"{len(outstanding)} point(s) outstanding "
                    f"(queue state: {queue.counts()})"
                )
            now = time.time()
            if deadline is not None and now > deadline:
                raise DistributedRunError(
                    f"timed out after {timeout:.0f}s with {len(outstanding)} "
                    f"point(s) outstanding (queue state: {queue.counts()})"
                )
            if now - last_status >= 5.0:
                last_status = now
                counts = queue.counts()
                say(
                    f"broker: waiting on {len(outstanding)} point(s) "
                    f"(pending {counts['pending']}, leased {counts['leased']}, "
                    f"done {counts['done']})"
                )
            time.sleep(poll_interval)
    finally:
        # ``serve all`` keeps one queue alive across its grids
        # (stop_when_done=False, external workers stay attached); the
        # self-contained ``--distributed N`` path stops its per-grid
        # queue so the local workers drain out.
        if stop_when_done or procs:
            queue.stop()
        _shutdown_workers(procs)


def launch_local_workers(
    count: int,
    queue_root: "Path | str",
    store: ResultStore,
    extra_args: "tuple[str, ...]" = (),
) -> "list[subprocess.Popen]":
    """Spawn ``count`` worker subprocesses bound to a queue.

    Worker *i* prefers shard ``i`` (mod the queue's shard count) and
    steals from the rest — the ``--distributed N`` topology.  The
    shared store location is passed explicitly so the workers commit
    where this broker reads, regardless of their environment.
    """
    _require_shared_store(store)
    env = os.environ.copy()
    # The workers must import the same repro package this broker runs.
    package_root = str(Path(__file__).resolve().parents[3])
    current = env.get("PYTHONPATH", "")
    if package_root not in current.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + current if current else "")
        )
    procs = []
    for index in range(count):
        command = [
            sys.executable, "-m", "repro", "experiments", "work",
            "--queue", str(queue_root),
            "--store", str(store.root),
            "--worker-id", f"local-{index}",
            "--shards", str(index),
            "--wait", "30",
            *extra_args,
        ]
        procs.append(subprocess.Popen(command, env=env))
    return procs


def _shutdown_workers(procs: "list[subprocess.Popen]") -> None:
    # The stop sentinel asks nicely; terminate stragglers, then reap.
    deadline = time.time() + 10.0
    for proc in procs:
        while proc.poll() is None and time.time() < deadline:
            time.sleep(0.05)
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def make_distributed_executor(
    queue_root: "Path | str",
    *,
    workers: int = 0,
    subdir_per_spec: bool = True,
    **options,
) -> Callable:
    """An ``execute_spec``-compatible executor bound to a queue root.

    With ``subdir_per_spec`` (the ``--distributed N`` path, where this
    process launches its own workers per grid) each spec gets a fresh
    ``run-NNN-<name>`` subdirectory so successive grids (``all``) never
    share stop sentinels.  ``serve`` passes ``subdir_per_spec=False`` so
    externally launched workers find the queue at exactly ``--queue``.
    """
    queue_root = Path(queue_root)
    counter = iter(range(1_000_000))

    def executor(spec, setup, store) -> ResultSet:
        root = queue_root
        if subdir_per_spec:
            root = queue_root / f"run-{next(counter):03d}-{spec.name}"
        return execute_spec_distributed(
            spec, setup, store, root, workers=workers, **options
        )

    return executor
