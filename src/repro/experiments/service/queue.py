"""Leased work queue over a shared filesystem.

The queue-based-load-leveling half of the experiment service: a broker
submits tasks, any number of worker processes (on any machine mounting
the directory) lease and execute them, and every transition is a
single-file atomic rename — so a worker killed at *any* instruction
loses nothing but its lease.

Layout under the queue root::

    queue.json            broker-written config (shards, TTL, retries)
    pending/shard-NN/     runnable tasks, sharded by task-id hash
    leased/               claimed tasks, stamped {worker, deadline}
    done/                 completion markers (results live in the store)
    failed/               tasks whose retries are exhausted, with errors
    stop                  sentinel: workers drain out and exit

Lifecycle of one task::

    submit ─> pending ──claim──> leased ──complete──> done
                 ^                 │
                 │   expiry/error  │ attempts == max_attempts
                 └──── requeue ────┴───────────────> failed

* **Claiming is an atomic rename** (``pending/… -> leased/<id>.json``):
  exactly one of any number of racing workers wins; losers see
  ``FileNotFoundError`` and move on.
* **Sharding + work-stealing**: a task's shard is a hash of its id
  (RunPoint fingerprints hash uniformly); a worker scans its preferred
  shards first and *steals* from the rest when they are empty, so one
  shard of long ASR search points cannot idle the fleet.
* **Leases expire**: every claim stamps ``now + lease_ttl`` and anyone
  (broker or worker) may :meth:`reap_expired` — crash recovery needs no
  dedicated supervisor.  Requeue bumps the attempt counter and delays
  the task by an exponential backoff, and after ``max_attempts`` the
  task lands in ``failed/`` with its recorded errors, which the broker
  surfaces to the caller.
* **Requeue is write-then-unlink**: the pending copy is created before
  the leased copy is removed, so a reaper crashing mid-requeue can only
  *duplicate* work (harmless — results are deterministic and commits
  idempotent), never lose it.  For the same reason a worker that
  outlives its lease may race a reclaim; both end up committing the
  same bit-identical result.  Size ``lease_ttl`` above the worst-case
  single-point runtime to avoid the wasted duplicate work.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Iterator, Mapping

QUEUE_META = "queue.json"
QUEUE_VERSION = 1

_TMP_SEQUENCE = itertools.count()


class QueueError(RuntimeError):
    """The queue directory is missing, foreign, or version-skewed."""


def shard_name(index: int) -> str:
    return f"shard-{index:02d}"


@dataclasses.dataclass(frozen=True)
class Lease:
    """One claimed task: the worker owns it until ``deadline``."""

    task_id: str
    payload: Mapping
    worker: str
    deadline: float
    attempts: int
    shard: int


@dataclasses.dataclass(frozen=True)
class QueueConfig:
    num_shards: int = 1
    lease_ttl: float = 30.0
    max_attempts: int = 3
    retry_backoff: float = 0.5


class WorkQueue:
    """Filesystem-backed lease queue (see module docstring)."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"
    STOP = "stop"

    def __init__(self, root: "Path | str", config: QueueConfig) -> None:
        self.root = Path(root)
        self.config = config

    # -- construction --------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: "Path | str",
        num_shards: int = 1,
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        retry_backoff: float = 0.5,
    ) -> "WorkQueue":
        """Initialize (or re-open) a queue directory as the broker."""
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        config = QueueConfig(num_shards, lease_ttl, max_attempts, retry_backoff)
        queue = cls(root, config)
        queue.root.mkdir(parents=True, exist_ok=True)
        for state in (cls.LEASED, cls.DONE, cls.FAILED):
            (queue.root / state).mkdir(exist_ok=True)
        pending = queue.root / cls.PENDING
        pending.mkdir(exist_ok=True)
        for shard in range(num_shards):
            (pending / shard_name(shard)).mkdir(exist_ok=True)
        meta = {
            "queue_version": QUEUE_VERSION,
            "num_shards": num_shards,
            "lease_ttl": lease_ttl,
            "max_attempts": max_attempts,
            "retry_backoff": retry_backoff,
        }
        queue._write_atomic(queue.root / QUEUE_META, meta)
        # A reused root (``serve`` running grid after grid, or a broker
        # restart) must not inherit a previous run's stop sentinel.
        cls._unlink(queue.root / cls.STOP)
        return queue

    @classmethod
    def open(cls, root: "Path | str", wait: float = 0.0) -> "WorkQueue":
        """Attach to an existing queue as a worker.

        ``wait`` seconds are spent polling for the broker's ``queue.json``
        (workers are routinely launched before the broker finishes
        setting up); raises :class:`QueueError` once exhausted.
        """
        root = Path(root)
        deadline = time.time() + wait
        while True:
            meta = cls._read(root / QUEUE_META)
            if meta is not None:
                break
            if time.time() >= deadline:
                raise QueueError(
                    f"no work queue at {root} (queue.json missing); "
                    f"is the broker running with --queue pointing here?"
                )
            time.sleep(0.05)
        if meta.get("queue_version") != QUEUE_VERSION:
            raise QueueError(
                f"queue at {root} has version {meta.get('queue_version')!r}, "
                f"this worker supports {QUEUE_VERSION}"
            )
        config = QueueConfig(
            num_shards=int(meta["num_shards"]),
            lease_ttl=float(meta["lease_ttl"]),
            max_attempts=int(meta["max_attempts"]),
            retry_backoff=float(meta["retry_backoff"]),
        )
        return cls(root, config)

    # -- paths ---------------------------------------------------------------
    def shard_of(self, task_id: str) -> int:
        digest = hashlib.sha256(task_id.encode("utf-8")).hexdigest()
        return int(digest[:8], 16) % self.config.num_shards

    def _pending_path(self, task_id: str, shard: int) -> Path:
        return self.root / self.PENDING / shard_name(shard) / f"{task_id}.json"

    def _leased_path(self, task_id: str) -> Path:
        return self.root / self.LEASED / f"{task_id}.json"

    def _done_path(self, task_id: str) -> Path:
        return self.root / self.DONE / f"{task_id}.json"

    def _failed_path(self, task_id: str) -> Path:
        return self.root / self.FAILED / f"{task_id}.json"

    # -- primitive IO --------------------------------------------------------
    def _write_atomic(self, path: Path, record: Mapping) -> None:
        tmp = path.parent / f".{path.name}.{os.getpid()}.{next(_TMP_SEQUENCE)}.tmp"
        path.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)

    @staticmethod
    def _read(path: Path) -> "dict | None":
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
        except OSError:
            return False
        return True

    # -- submission ----------------------------------------------------------
    def submit(self, task_id: str, payload: Mapping) -> bool:
        """Enqueue a task; returns False if the id is already known
        (pending, leased, done or failed) — submission is idempotent."""
        shard = self.shard_of(task_id)
        if (
            self._pending_path(task_id, shard).exists()
            or self._leased_path(task_id).exists()
            or self._done_path(task_id).exists()
            or self._failed_path(task_id).exists()
        ):
            return False
        record = {
            "id": task_id,
            "shard": shard,
            "task": payload,
            "attempts": 0,
            "not_before": 0.0,
            "errors": [],
        }
        self._write_atomic(self._pending_path(task_id, shard), record)
        return True

    # -- claiming ------------------------------------------------------------
    def claim(
        self, worker: str, preferred_shards: "tuple[int, ...]" = ()
    ) -> "Lease | None":
        """Lease one runnable task, preferring the given shards.

        Preferred shards are scanned first; when they are drained the
        worker *steals* from every other shard (ascending) — the piece
        that keeps skewed grids (long ASR search points concentrated in
        one shard) from idling the fleet.
        """
        preferred = [s for s in preferred_shards if 0 <= s < self.config.num_shards]
        rest = [s for s in range(self.config.num_shards) if s not in preferred]
        now = time.time()
        for shard in (*preferred, *rest):
            lease = self._claim_from_shard(shard, worker, now)
            if lease is not None:
                return lease
        return None

    def _claim_from_shard(
        self, shard: int, worker: str, now: float
    ) -> "Lease | None":
        shard_dir = self.root / self.PENDING / shard_name(shard)
        try:
            candidates = sorted(shard_dir.glob("*.json"))
        except OSError:
            return None
        for path in candidates:
            record = self._read(path)
            if record is None:
                continue
            task_id = record.get("id") or path.stem
            if record.get("not_before", 0.0) > now:
                continue  # backing off after a failure
            if self._done_path(task_id).exists():
                # A slow duplicate of an already-completed task (requeue
                # raced a late commit): drop it instead of re-running.
                self._unlink(path)
                continue
            leased = self._leased_path(task_id)
            try:
                os.replace(path, leased)  # the atomic claim
            except OSError:
                continue  # another worker won the race
            attempts = int(record.get("attempts", 0))
            deadline = now + self.config.lease_ttl
            record["lease"] = {"worker": worker, "deadline": deadline}
            # We own the file now; stamping the lease cannot race.
            self._write_atomic(leased, record)
            return Lease(
                task_id=task_id,
                payload=record.get("task", {}),
                worker=worker,
                deadline=deadline,
                attempts=attempts,
                shard=shard,
            )
        return None

    def renew(self, lease: Lease, ttl: "float | None" = None) -> "Lease | None":
        """Extend a held lease; None if it was lost (expired + reaped)."""
        path = self._leased_path(lease.task_id)
        record = self._read(path)
        if record is None:
            return None
        stamped = record.get("lease", {})
        if stamped.get("worker") != lease.worker:
            return None
        deadline = time.time() + (ttl if ttl is not None else self.config.lease_ttl)
        record["lease"] = {"worker": lease.worker, "deadline": deadline}
        self._write_atomic(path, record)
        return dataclasses.replace(lease, deadline=deadline)

    # -- completion / failure ------------------------------------------------
    def complete(self, lease: Lease, **extra) -> bool:
        """Mark a leased task done (idempotent).

        Returns False when the lease had already been lost to expiry —
        the completion marker is still written (the result *was*
        committed to the store; the marker stops pending duplicates from
        re-running it), but the caller learns its lease lapsed.
        """
        marker = {
            "id": lease.task_id,
            "worker": lease.worker,
            "attempts": lease.attempts,
            "completed_at": time.time(),
            **extra,
        }
        self._write_atomic(self._done_path(lease.task_id), marker)
        path = self._leased_path(lease.task_id)
        record = self._read(path)
        owned = (
            record is not None
            and record.get("lease", {}).get("worker") == lease.worker
        )
        if owned:
            self._unlink(path)
        return owned

    def fail(self, lease: Lease, error: str) -> str:
        """Record a failed attempt: ``"requeued"`` (with backoff) or
        ``"failed"`` once ``max_attempts`` is exhausted."""
        record = {
            "id": lease.task_id,
            "shard": lease.shard,
            "task": lease.payload,
            "attempts": lease.attempts,
            "errors": [],
        }
        current = self._read(self._leased_path(lease.task_id))
        if current is not None and current.get("id") == lease.task_id:
            record = current
        return self._retire(record, lease.task_id, error)

    def _retire(self, record: dict, task_id: str, error: str) -> str:
        """Shared requeue-or-fail path (worker errors and lease expiry).

        Write-then-unlink: the successor file exists before the leased
        copy disappears, so a crash here duplicates instead of losing.
        """
        attempts = int(record.get("attempts", 0)) + 1
        errors = list(record.get("errors", []))[-4:]
        errors.append(error)
        record = {
            "id": task_id,
            "shard": record.get("shard", self.shard_of(task_id)),
            "task": record.get("task", {}),
            "attempts": attempts,
            "errors": errors,
        }
        record.pop("lease", None)
        if attempts >= self.config.max_attempts:
            self._write_atomic(self._failed_path(task_id), record)
            self._unlink(self._leased_path(task_id))
            return "failed"
        backoff = self.config.retry_backoff * (2 ** (attempts - 1))
        record["not_before"] = time.time() + backoff
        self._write_atomic(self._pending_path(task_id, record["shard"]), record)
        self._unlink(self._leased_path(task_id))
        return "requeued"

    # -- crash recovery ------------------------------------------------------
    def reap_expired(self) -> list[str]:
        """Requeue (or fail out) every lease past its deadline.

        Safe for any number of concurrent reapers: duplicated requeues
        converge (atomic replace; done markers drop stale copies at the
        next claim).  Returns the reaped task ids.
        """
        now = time.time()
        reaped = []
        leased_dir = self.root / self.LEASED
        try:
            leases = sorted(leased_dir.glob("*.json"))
        except OSError:
            return reaped
        for path in leases:
            record = self._read(path)
            if record is None:
                continue
            stamp = record.get("lease")
            if not stamp or stamp.get("deadline", 0.0) > now:
                continue
            task_id = record.get("id") or path.stem
            if self._done_path(task_id).exists():
                # Committed but the worker died (or lost the race)
                # before cleaning up its lease file: just clean up.
                self._unlink(path)
                continue
            error = (
                f"lease expired (worker {stamp.get('worker', '?')} "
                f"missed its {self.config.lease_ttl:.1f}s deadline)"
            )
            self._retire(record, task_id, error)
            reaped.append(task_id)
        return reaped

    # -- introspection -------------------------------------------------------
    def is_done(self, task_id: str) -> bool:
        return self._done_path(task_id).exists()

    def failure(self, task_id: str) -> "dict | None":
        """The failure record (attempts + errors) for an exhausted task."""
        return self._read(self._failed_path(task_id))

    def failures(self) -> dict[str, dict]:
        out = {}
        for path in (self.root / self.FAILED).glob("*.json"):
            record = self._read(path)
            if record is not None:
                out[record.get("id", path.stem)] = record
        return out

    def pending_ids(self) -> Iterator[str]:
        for path in (self.root / self.PENDING).glob("*/*.json"):
            yield path.stem

    def counts(self) -> dict[str, int]:
        """Tasks per state — the ``serve`` status line."""
        return {
            "pending": sum(1 for _ in (self.root / self.PENDING).glob("*/*.json")),
            "leased": sum(1 for _ in (self.root / self.LEASED).glob("*.json")),
            "done": sum(1 for _ in (self.root / self.DONE).glob("*.json")),
            "failed": sum(1 for _ in (self.root / self.FAILED).glob("*.json")),
        }

    # -- shutdown ------------------------------------------------------------
    def stop(self) -> None:
        """Raise the stop sentinel: workers drain out and exit."""
        try:
            (self.root / self.STOP).touch()
        except OSError:
            pass

    @property
    def stopped(self) -> bool:
        return (self.root / self.STOP).exists()

    @property
    def closed(self) -> bool:
        """The queue directory itself is gone (broker cleaned up)."""
        return not (self.root / QUEUE_META).exists()
