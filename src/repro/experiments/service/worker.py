"""Crash-tolerant worker: lease → (read-through | simulate) → commit.

A worker owns nothing durable.  Its whole contract per task is:

1. lease a task from the :class:`~repro.experiments.service.queue.WorkQueue`
   (preferring its shards, stealing otherwise);
2. **read through** the shared :class:`~repro.experiments.store.ResultStore`
   first — a requeued task whose original worker committed late (or a
   point another grid already ran) completes instantly;
3. otherwise simulate via :meth:`PointTask.execute` and commit the
   result to the shared store — lease completion is *gated on the
   commit being durable*, so a "done" marker always implies the result
   is readable;
4. on any exception, report the traceback through :meth:`WorkQueue.fail`
   (bounded retry broker-side).

Kill a worker at any point in that sequence and the grid still
completes: an unfinished lease expires and is requeued, a finished one
left a durable result any successor serves via read-through.  Workers
exit when the queue raises its stop sentinel, when its directory is
removed, or (optionally) after an idle timeout.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
import traceback

from repro.experiments.service.queue import Lease, WorkQueue
from repro.experiments.service.tasks import PointTask, TaskDecodeError
from repro.experiments.store import ResultStore

#: Test/ops hook: a worker holds (sleeps) this many seconds after
#: claiming its *first* lease before executing it.  The
#: kill-a-worker-mid-grid integration test uses it to pin a victim
#: worker inside a lease deterministically; it is also a convenient way
#: to rehearse lease-expiry behavior on a live deployment.
HOLD_FIRST_ENV_VAR = "REPRO_WORKER_HOLD_FIRST_S"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclasses.dataclass
class WorkerStats:
    """What one worker did — summarized to stderr on exit."""

    claimed: int = 0
    executed: int = 0
    store_served: int = 0
    failures: int = 0
    reaped: int = 0

    def describe(self) -> str:
        return (
            f"{self.claimed} leases ({self.executed} simulated, "
            f"{self.store_served} store-served, {self.failures} failed), "
            f"{self.reaped} expired leases reaped"
        )


class Worker:
    """One pull-based worker process (or thread, in tests)."""

    def __init__(
        self,
        queue: WorkQueue,
        store: ResultStore,
        worker_id: "str | None" = None,
        preferred_shards: "tuple[int, ...]" = (),
        poll_interval: float = 0.05,
        hold_first_s: float = 0.0,
    ) -> None:
        self.queue = queue
        self.store = store
        self.worker_id = worker_id or default_worker_id()
        self.preferred_shards = tuple(preferred_shards)
        self.poll_interval = poll_interval
        self.hold_first_s = hold_first_s
        self.stats = WorkerStats()
        self._held = False

    # -- one scheduling round ------------------------------------------------
    def step(self) -> bool:
        """Reap expired peers' leases, then lease and process one task.

        Returns whether any task was processed (False = queue idle).
        Workers reaping for each other is what makes the fleet
        self-healing without a dedicated supervisor process.
        """
        self.stats.reaped += len(self.queue.reap_expired())
        lease = self.queue.claim(self.worker_id, self.preferred_shards)
        if lease is None:
            return False
        self._process(lease)
        return True

    def _process(self, lease: Lease) -> None:
        self.stats.claimed += 1
        if self.hold_first_s > 0 and not self._held:
            self._held = True
            time.sleep(self.hold_first_s)
        cached = self.store.fetch(lease.task_id)
        if cached is not None:
            # Read-through: the point was already served (late commit of
            # an expired lease, or a prior grid) — complete immediately.
            self.queue.complete(lease, served_from="store")
            self.stats.store_served += 1
            return
        try:
            task = PointTask.from_payload(lease.payload)
            result = task.execute()
        except TaskDecodeError as exc:
            self.queue.fail(lease, f"[{self.worker_id}] {exc}")
            self.stats.failures += 1
            return
        except Exception:
            trace = traceback.format_exc()
            self.queue.fail(lease, f"[{self.worker_id}]\n{trace}")
            self.stats.failures += 1
            return
        if not self.store.put(lease.task_id, result):
            # The done marker must imply a readable result; a commit
            # that did not persist is a failed attempt.
            self.queue.fail(
                lease,
                f"[{self.worker_id}] result could not be persisted to the "
                f"shared store at {self.store.backend.location()}",
            )
            self.stats.failures += 1
            return
        self.queue.complete(lease, served_from="simulation")
        self.stats.executed += 1

    # -- loops ---------------------------------------------------------------
    def run(
        self,
        max_tasks: "int | None" = None,
        idle_timeout: "float | None" = None,
    ) -> WorkerStats:
        """Serve until the queue stops (or closes), with optional caps.

        ``idle_timeout`` exits after that many consecutive idle seconds
        — the mode ``--distributed`` local workers use so a finished
        grid never strands processes.
        """
        idle_since: "float | None" = None
        while True:
            if self.queue.stopped or self.queue.closed:
                break
            worked = self.step()
            if worked:
                idle_since = None
                if max_tasks is not None and self.stats.claimed >= max_tasks:
                    break
                continue
            now = time.time()
            if idle_since is None:
                idle_since = now
            elif idle_timeout is not None and now - idle_since >= idle_timeout:
                break
            time.sleep(self.poll_interval)
        return self.stats

    def drain(self) -> WorkerStats:
        """Process until nothing is claimable (unit-test convenience)."""
        while self.step():
            pass
        return self.stats
