"""Distributed experiment service: broker, leased work queue, workers.

Shared-nothing scale-out for experiment grids.  A *broker*
(:func:`execute_spec_distributed`) leases a grid's store-missed
RunPoints onto a shared-filesystem :class:`WorkQueue`; *workers*
(:class:`Worker`, ``python -m repro experiments work``) on any machine
mounting the queue pull leases, simulate, and commit results through a
shared :class:`~repro.experiments.store.ResultStore`; the broker
collects by content address, so the grid is bit-identical to a
sequential run.

Built for crash tolerance (leases expire → requeue → bounded retry with
backoff; a killed worker loses nothing) and skew (fingerprint-sharded
queues with work-stealing, because ASR search points run far longer
than fixed points).  See the module docstrings of
:mod:`~repro.experiments.service.queue`,
:mod:`~repro.experiments.service.worker` and
:mod:`~repro.experiments.service.broker` for the protocol details, and
the README's "Distributed runs" section for the CLI quickstart::

    python -m repro experiments serve fig6 --queue /mnt/shared/q ...
    python -m repro experiments work --queue /mnt/shared/q ...
    python -m repro experiments fig6 --distributed 4 ...
"""

from repro.experiments.service.broker import (
    DistributedRunError,
    execute_spec_distributed,
    launch_local_workers,
    make_distributed_executor,
)
from repro.experiments.service.queue import (
    Lease,
    QueueConfig,
    QueueError,
    WorkQueue,
)
from repro.experiments.service.tasks import PointTask, TaskDecodeError
from repro.experiments.service.worker import Worker, WorkerStats

__all__ = [
    "DistributedRunError",
    "Lease",
    "PointTask",
    "QueueConfig",
    "QueueError",
    "TaskDecodeError",
    "WorkQueue",
    "Worker",
    "WorkerStats",
    "execute_spec_distributed",
    "launch_local_workers",
    "make_distributed_executor",
]
