"""JSON task descriptions the broker and workers exchange.

A :class:`PointTask` is the unit of distributed work: **one RunPoint,
end to end** — including, for an ASR point without an explicit
replication level, the whole five-level search.  Keeping the search
inside one task means a task's result commits under exactly the point's
fingerprint address (no cross-worker reduction step), and it is also why
the queue needs work-stealing: ASR search points run ~5x longer than
fixed points, so any static shard assignment leaves workers idle.

Tasks cross process (and machine) boundaries as JSON, so the payload
carries the fully *resolved* coordinate: scheme, benchmark, effective
:class:`~repro.common.params.MachineConfig` (nested dataclasses encoded
field by field), scale, seed, scheme kwargs, kernel selection and the
ASR search space.  ``PointTask.execute`` rebuilds an
:class:`~repro.experiments.runner.ExperimentSetup` worker-side and runs
:func:`~repro.experiments.runner.run_one` — the same call the sequential
executor makes, so a distributed grid is bit-identical by construction.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Mapping

from repro.common.params import CacheGeometry, MachineConfig
from repro.experiments.runner import ExperimentSetup, RunResult, run_one

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import RunPoint

#: Bump when the payload schema changes; workers refuse newer payloads
#: instead of misinterpreting them.
TASK_VERSION = 1

_GEOMETRY_FIELDS = ("l1i", "l1d", "llc_slice")


class TaskDecodeError(ValueError):
    """A task payload could not be decoded (wrong version or shape)."""


def encode_config(config: MachineConfig) -> dict:
    """JSON-serializable dump of a machine configuration (exact)."""
    return dataclasses.asdict(config)


def decode_config(payload: Mapping) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`encode_config`."""
    data = dict(payload)
    for field in _GEOMETRY_FIELDS:
        data[field] = CacheGeometry(**data[field])
    return MachineConfig(**data)


@dataclasses.dataclass(frozen=True)
class PointTask:
    """One leased unit of work: a fully resolved RunPoint."""

    key: str
    scheme: str
    benchmark: str
    config: MachineConfig
    scale: float
    seed: int
    scheme_kwargs: tuple = ()
    kernel: "str | None" = None
    asr_levels: tuple = ()

    @classmethod
    def from_point(
        cls, point: "RunPoint", setup: ExperimentSetup, key: str
    ) -> "PointTask":
        """Resolve a RunPoint against its setup into a picklable task.

        Mirrors the resolution :func:`~repro.experiments.parallel.point_run_specs`
        performs, except the ASR level search stays *inside* the task.
        """
        return cls(
            key=key,
            scheme=point.scheme,
            benchmark=point.benchmark,
            config=point.effective_config(setup.config),
            scale=point.scale if point.scale is not None else setup.scale,
            seed=point.seed if point.seed is not None else setup.seed,
            scheme_kwargs=point.scheme_kwargs,
            kernel=point.kernel if point.kernel is not None else setup.kernel,
            asr_levels=tuple(setup.asr_levels),
        )

    def execute(self) -> RunResult:
        """Run the point worker-side — identical to the sequential path."""
        setup = ExperimentSetup(
            self.config,
            scale=self.scale,
            seed=self.seed,
            asr_levels=self.asr_levels or ExperimentSetup(self.config).asr_levels,
            kernel=self.kernel,
        )
        kwargs = dict(self.scheme_kwargs)
        result = run_one(setup, self.scheme, self.benchmark, **kwargs)
        if self.scheme == "ASR" and "replication_level" in kwargs:
            result.asr_level = kwargs["replication_level"]
        return result

    # -- codec ---------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "task_version": TASK_VERSION,
            "key": self.key,
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "config": encode_config(self.config),
            "scale": self.scale,
            "seed": self.seed,
            "scheme_kwargs": [[name, value] for name, value in self.scheme_kwargs],
            "kernel": self.kernel,
            "asr_levels": list(self.asr_levels),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PointTask":
        version = payload.get("task_version")
        if version != TASK_VERSION:
            raise TaskDecodeError(
                f"task payload version {version!r} is not the supported "
                f"{TASK_VERSION} (broker and workers must run the same code)"
            )
        try:
            return cls(
                key=payload["key"],
                scheme=payload["scheme"],
                benchmark=payload["benchmark"],
                config=decode_config(payload["config"]),
                scale=payload["scale"],
                seed=payload["seed"],
                scheme_kwargs=tuple(
                    (name, value) for name, value in payload["scheme_kwargs"]
                ),
                kernel=payload.get("kernel"),
                asr_levels=tuple(payload.get("asr_levels", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TaskDecodeError(f"malformed task payload: {exc}") from exc
