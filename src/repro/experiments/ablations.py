"""Design-choice ablations the paper reports in prose.

* **LLC replacement policy** (Section 4.2): the modified-LRU policy
  (fewest L1 copies first) vs. classic LRU, under the locality-aware
  protocol at RT = 3.  The paper sees 15%/5% energy and 5%/2% completion
  improvements on BLACKSCHOLES and FACESIM and parity elsewhere.

* **Temporal Locality Hints** (Section 2.2.4): the prior approach the
  modified-LRU replaces — plain LRU refreshed by periodic L1-hit hint
  messages — matches its quality but pays network traffic for it.

* **Dynamic-oracle local lookup** (Section 2.3.2): an oracle that skips
  the local LLC slice probe whenever no replica is present.  The paper
  measured < 1% difference, justifying the always-probe design; we
  regenerate that comparison.

* **Replica creation strategy** (Section 2.3.1): restricting replicas to
  the Shared state is simpler but loses migratory shared data (LU-NC),
  which needs E/M replicas.

* **Classifier organization** (Section 2.3.3): the in-cache classifier
  vs a decoupled sparse side table, which trades storage for a second
  CAM lookup and for classifier state lost on side-table eviction.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentSetup, RunResult, run_one

ABLATION_BENCHMARKS = ("BLACKSCHOLES", "FACESIM", "BARNES", "DEDUP")


def run_replacement_ablation(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> dict[str, dict[str, RunResult]]:
    """``results[benchmark][policy]`` with policy in {modified_lru, lru}."""
    bench_list = list(benchmarks) if benchmarks is not None else list(ABLATION_BENCHMARKS)
    results: dict[str, dict[str, RunResult]] = {}
    for benchmark in bench_list:
        modified = run_one(
            setup, "RT-3", benchmark,
            config=setup.config.with_overrides(llc_modified_lru=True),
        )
        plain = run_one(
            setup, "RT-3", benchmark,
            config=setup.config.with_overrides(llc_modified_lru=False),
        )
        results[benchmark] = {"modified_lru": modified, "lru": plain}
        setup.release_decoded(benchmark)
    return results


def render_replacement_ablation(results: dict[str, dict[str, RunResult]]) -> str:
    rows = []
    for benchmark, row in results.items():
        modified, plain = row["modified_lru"], row["lru"]
        rows.append([
            benchmark,
            modified.total_energy / plain.total_energy,
            modified.completion_time / plain.completion_time,
        ])
    return format_table(
        ["Benchmark", "Energy (mod-LRU / LRU)", "Time (mod-LRU / LRU)"],
        rows,
        title="Section 4.2: modified-LRU vs LRU LLC replacement (RT-3)",
    )


def run_oracle_ablation(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> dict[str, dict[str, RunResult]]:
    """``results[benchmark][mode]`` with mode in {probe, oracle}."""
    bench_list = list(benchmarks) if benchmarks is not None else list(ABLATION_BENCHMARKS)
    results: dict[str, dict[str, RunResult]] = {}
    for benchmark in bench_list:
        probe = run_one(setup, "RT-3", benchmark)
        oracle = run_one(setup, "RT-3", benchmark, oracle_lookup=True)
        results[benchmark] = {"probe": probe, "oracle": oracle}
        setup.release_decoded(benchmark)
    return results


def render_oracle_ablation(results: dict[str, dict[str, RunResult]]) -> str:
    rows = []
    for benchmark, row in results.items():
        probe, oracle = row["probe"], row["oracle"]
        rows.append([
            benchmark,
            probe.total_energy / oracle.total_energy,
            probe.completion_time / oracle.completion_time,
        ])
    return format_table(
        ["Benchmark", "Energy (probe / oracle)", "Time (probe / oracle)"],
        rows,
        title="Section 2.3.2: always-probe vs dynamic-oracle local lookup (RT-3)",
    )


# ---------------------------------------------------------------------------
# Temporal Locality Hints (Section 2.2.4's rejected alternative)
# ---------------------------------------------------------------------------

def run_tla_ablation(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> dict[str, dict[str, RunResult]]:
    """``results[benchmark][variant]`` over {modified_lru, lru, tla}."""
    bench_list = list(benchmarks) if benchmarks is not None else list(ABLATION_BENCHMARKS)
    results: dict[str, dict[str, RunResult]] = {}
    for benchmark in bench_list:
        results[benchmark] = {
            "modified_lru": run_one(
                setup, "RT-3", benchmark,
                config=setup.config.with_overrides(llc_modified_lru=True),
            ),
            "lru": run_one(
                setup, "RT-3", benchmark,
                config=setup.config.with_overrides(llc_modified_lru=False),
            ),
            "tla": run_one(
                setup, "RT-3", benchmark,
                config=setup.config.with_overrides(tla_hints=True),
            ),
        }
        setup.release_decoded(benchmark)
    return results


def render_tla_ablation(results: dict[str, dict[str, RunResult]]) -> str:
    rows = []
    for benchmark, row in results.items():
        base = row["lru"]
        rows.append([
            benchmark,
            row["modified_lru"].total_energy / base.total_energy,
            row["tla"].total_energy / base.total_energy,
            float(row["tla"].stats.counters.get("tla_hints_sent", 0)),
        ])
    return format_table(
        ["Benchmark", "mod-LRU energy / LRU", "TLA energy / LRU", "TLA hint msgs"],
        rows,
        title="Section 2.2.4: modified-LRU vs Temporal Locality Hints (RT-3)",
        float_format="{:.3f}",
    )


# ---------------------------------------------------------------------------
# Replica creation strategy (Section 2.3.1)
# ---------------------------------------------------------------------------

STRATEGY_BENCHMARKS = ("LU-NC", "BARNES", "STREAMCLUSTER", "PATRICIA")


def run_replica_strategy_ablation(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> dict[str, dict[str, RunResult]]:
    """``results[benchmark][strategy]`` over {all_states, shared_only}."""
    bench_list = list(benchmarks) if benchmarks is not None else list(STRATEGY_BENCHMARKS)
    results: dict[str, dict[str, RunResult]] = {}
    for benchmark in bench_list:
        results[benchmark] = {
            "all_states": run_one(setup, "RT-3", benchmark),
            "shared_only": run_one(
                setup, "RT-3", benchmark, shared_only_replicas=True
            ),
        }
        setup.release_decoded(benchmark)
    return results


def render_replica_strategy_ablation(results: dict[str, dict[str, RunResult]]) -> str:
    rows = []
    for benchmark, row in results.items():
        full, shared = row["all_states"], row["shared_only"]
        rows.append([
            benchmark,
            shared.total_energy / full.total_energy,
            shared.completion_time / full.completion_time,
            float(full.stats.counters.get("replicas_created", 0)),
            float(shared.stats.counters.get("replicas_created", 0)),
        ])
    return format_table(
        ["Benchmark", "Energy (S-only / all)", "Time (S-only / all)",
         "Replicas (all)", "Replicas (S-only)"],
        rows,
        title="Section 2.3.1: Shared-only vs all-state replica creation (RT-3)",
        float_format="{:.3f}",
    )


# ---------------------------------------------------------------------------
# Classifier organization (Section 2.3.3)
# ---------------------------------------------------------------------------

ORGANIZATION_BENCHMARKS = ("BARNES", "STREAMCLUSTER", "DEDUP")


def run_classifier_organization_ablation(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    sparse_entries: Iterable[int] = (64, 256, 1024),
) -> dict[str, dict[str, RunResult]]:
    """``results[benchmark][org]`` over in-cache and sparse capacities."""
    bench_list = list(benchmarks) if benchmarks is not None else list(ORGANIZATION_BENCHMARKS)
    results: dict[str, dict[str, RunResult]] = {}
    for benchmark in bench_list:
        row: dict[str, RunResult] = {
            "incache": run_one(setup, "RT-3", benchmark),
        }
        for entries in sparse_entries:
            config = setup.config.with_overrides(
                classifier_organization="sparse",
                sparse_classifier_entries=entries,
            )
            row[f"sparse-{entries}"] = run_one(
                setup, "RT-3", benchmark, config=config
            )
        results[benchmark] = row
        setup.release_decoded(benchmark)
    return results


def render_classifier_organization_ablation(
    results: dict[str, dict[str, RunResult]]
) -> str:
    labels = list(next(iter(results.values())).keys())
    rows = []
    for benchmark, row in results.items():
        base = row["incache"]
        rows.append([
            benchmark,
            *[row[label].total_energy / base.total_energy for label in labels],
        ])
    return format_table(
        ["Benchmark", *[f"{label} energy" for label in labels]],
        rows,
        title="Section 2.3.3: in-cache vs sparse classifier organization (RT-3)",
    )
