"""Design-choice ablations the paper reports in prose.

* **LLC replacement policy** (Section 4.2): the modified-LRU policy
  (fewest L1 copies first) vs. classic LRU, under the locality-aware
  protocol at RT = 3.  The paper sees 15%/5% energy and 5%/2% completion
  improvements on BLACKSCHOLES and FACESIM and parity elsewhere.

* **Temporal Locality Hints** (Section 2.2.4): the prior approach the
  modified-LRU replaces — plain LRU refreshed by periodic L1-hit hint
  messages — matches its quality but pays network traffic for it.

* **Dynamic-oracle local lookup** (Section 2.3.2): an oracle that skips
  the local LLC slice probe whenever no replica is present.  The paper
  measured < 1% difference, justifying the always-probe design; we
  regenerate that comparison.

* **Replica creation strategy** (Section 2.3.1): restricting replicas to
  the Shared state is simpler but loses migratory shared data (LU-NC),
  which needs E/M replicas.

* **Classifier organization** (Section 2.3.3): the in-cache classifier
  vs a decoupled sparse side table, which trades storage for a second
  CAM lookup and for classifier state lost on side-table eviction.

Each ablation is one :class:`ExperimentSpec` — labeled RunPoints over
the RT-3 scheme with config overrides or scheme kwargs — executed by
the shared spec executor (result reuse, centralized trace release).
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.reporting import format_table
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    execute_spec,
    register_experiment,
    resolve_benchmarks,
)
from repro.experiments.store import ResultStore

ABLATION_BENCHMARKS = ("BLACKSCHOLES", "FACESIM", "BARNES", "DEDUP")


# ---------------------------------------------------------------------------
# LLC replacement policy (Section 4.2)
# ---------------------------------------------------------------------------

def replacement_spec(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> ExperimentSpec:
    bench_list = resolve_benchmarks(benchmarks, ABLATION_BENCHMARKS)
    points = tuple(
        RunPoint(
            "RT-3", benchmark,
            config_overrides=(("llc_modified_lru", modified),),
            label=label,
        )
        for benchmark in bench_list
        for label, modified in (("modified_lru", True), ("lru", False))
    )
    return ExperimentSpec(
        "replacement", points,
        title="Section 4.2: modified-LRU vs LRU LLC replacement",
        baseline="lru",
    )


def run_replacement_ablation(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark][policy]`` with policy in {modified_lru, lru}."""
    return execute_spec(replacement_spec(setup, benchmarks), setup, store=store)


def render_replacement_ablation(results) -> str:
    rows = []
    for benchmark, row in results.items():
        modified, plain = row["modified_lru"], row["lru"]
        rows.append([
            benchmark,
            modified.total_energy / plain.total_energy,
            modified.completion_time / plain.completion_time,
        ])
    return format_table(
        ["Benchmark", "Energy (mod-LRU / LRU)", "Time (mod-LRU / LRU)"],
        rows,
        title="Section 4.2: modified-LRU vs LRU LLC replacement (RT-3)",
    )


# ---------------------------------------------------------------------------
# Dynamic-oracle local lookup (Section 2.3.2)
# ---------------------------------------------------------------------------

def oracle_spec(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> ExperimentSpec:
    bench_list = resolve_benchmarks(benchmarks, ABLATION_BENCHMARKS)
    points = tuple(
        point
        for benchmark in bench_list
        for point in (
            RunPoint("RT-3", benchmark, label="probe"),
            RunPoint(
                "RT-3", benchmark,
                scheme_kwargs=(("oracle_lookup", True),), label="oracle",
            ),
        )
    )
    return ExperimentSpec(
        "oracle", points,
        title="Section 2.3.2: always-probe vs dynamic-oracle local lookup",
        baseline="oracle",
    )


def run_oracle_ablation(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark][mode]`` with mode in {probe, oracle}."""
    return execute_spec(oracle_spec(setup, benchmarks), setup, store=store)


def render_oracle_ablation(results) -> str:
    rows = []
    for benchmark, row in results.items():
        probe, oracle = row["probe"], row["oracle"]
        rows.append([
            benchmark,
            probe.total_energy / oracle.total_energy,
            probe.completion_time / oracle.completion_time,
        ])
    return format_table(
        ["Benchmark", "Energy (probe / oracle)", "Time (probe / oracle)"],
        rows,
        title="Section 2.3.2: always-probe vs dynamic-oracle local lookup (RT-3)",
    )


# ---------------------------------------------------------------------------
# Temporal Locality Hints (Section 2.2.4's rejected alternative)
# ---------------------------------------------------------------------------

def tla_spec(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> ExperimentSpec:
    bench_list = resolve_benchmarks(benchmarks, ABLATION_BENCHMARKS)
    variants = (
        ("modified_lru", (("llc_modified_lru", True),)),
        ("lru", (("llc_modified_lru", False),)),
        ("tla", (("tla_hints", True),)),
    )
    points = tuple(
        RunPoint("RT-3", benchmark, config_overrides=overrides, label=label)
        for benchmark in bench_list
        for label, overrides in variants
    )
    return ExperimentSpec(
        "tla", points,
        title="Section 2.2.4: modified-LRU vs Temporal Locality Hints",
        baseline="lru",
    )


def run_tla_ablation(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark][variant]`` over {modified_lru, lru, tla}."""
    return execute_spec(tla_spec(setup, benchmarks), setup, store=store)


def render_tla_ablation(results) -> str:
    rows = []
    for benchmark, row in results.items():
        base = row["lru"]
        rows.append([
            benchmark,
            row["modified_lru"].total_energy / base.total_energy,
            row["tla"].total_energy / base.total_energy,
            float(row["tla"].stats.counters.get("tla_hints_sent", 0)),
        ])
    return format_table(
        ["Benchmark", "mod-LRU energy / LRU", "TLA energy / LRU", "TLA hint msgs"],
        rows,
        title="Section 2.2.4: modified-LRU vs Temporal Locality Hints (RT-3)",
        float_format="{:.3f}",
    )


# ---------------------------------------------------------------------------
# Replica creation strategy (Section 2.3.1)
# ---------------------------------------------------------------------------

STRATEGY_BENCHMARKS = ("LU-NC", "BARNES", "STREAMCLUSTER", "PATRICIA")


def replica_strategy_spec(
    setup: ExperimentSetup, benchmarks: Iterable[str] | None = None
) -> ExperimentSpec:
    bench_list = resolve_benchmarks(benchmarks, STRATEGY_BENCHMARKS)
    points = tuple(
        point
        for benchmark in bench_list
        for point in (
            RunPoint("RT-3", benchmark, label="all_states"),
            RunPoint(
                "RT-3", benchmark,
                scheme_kwargs=(("shared_only_replicas", True),),
                label="shared_only",
            ),
        )
    )
    return ExperimentSpec(
        "strategy", points,
        title="Section 2.3.1: Shared-only vs all-state replica creation",
        baseline="all_states",
    )


def run_replica_strategy_ablation(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark][strategy]`` over {all_states, shared_only}."""
    return execute_spec(replica_strategy_spec(setup, benchmarks), setup, store=store)


def render_replica_strategy_ablation(results) -> str:
    rows = []
    for benchmark, row in results.items():
        full, shared = row["all_states"], row["shared_only"]
        rows.append([
            benchmark,
            shared.total_energy / full.total_energy,
            shared.completion_time / full.completion_time,
            float(full.stats.counters.get("replicas_created", 0)),
            float(shared.stats.counters.get("replicas_created", 0)),
        ])
    return format_table(
        ["Benchmark", "Energy (S-only / all)", "Time (S-only / all)",
         "Replicas (all)", "Replicas (S-only)"],
        rows,
        title="Section 2.3.1: Shared-only vs all-state replica creation (RT-3)",
        float_format="{:.3f}",
    )


# ---------------------------------------------------------------------------
# Classifier organization (Section 2.3.3)
# ---------------------------------------------------------------------------

ORGANIZATION_BENCHMARKS = ("BARNES", "STREAMCLUSTER", "DEDUP")


def classifier_organization_spec(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    sparse_entries: Iterable[int] = (64, 256, 1024),
) -> ExperimentSpec:
    bench_list = resolve_benchmarks(benchmarks, ORGANIZATION_BENCHMARKS)
    entries_list = list(sparse_entries)
    points = []
    for benchmark in bench_list:
        points.append(RunPoint("RT-3", benchmark, label="incache"))
        for entries in entries_list:
            points.append(RunPoint(
                "RT-3", benchmark,
                config_overrides=(
                    ("classifier_organization", "sparse"),
                    ("sparse_classifier_entries", entries),
                ),
                label=f"sparse-{entries}",
            ))
    return ExperimentSpec(
        "organization", tuple(points),
        title="Section 2.3.3: in-cache vs sparse classifier organization",
        baseline="incache",
    )


def run_classifier_organization_ablation(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    sparse_entries: Iterable[int] = (64, 256, 1024),
    store: ResultStore | None = None,
) -> ResultSet:
    """``results[benchmark][org]`` over in-cache and sparse capacities."""
    spec = classifier_organization_spec(setup, benchmarks, sparse_entries)
    return execute_spec(spec, setup, store=store)


def render_classifier_organization_ablation(results) -> str:
    results = ResultSet.ensure(results)
    table = results.normalized_to("incache", "total_energy")
    labels = results.labels()
    rows = [
        [benchmark, *[row[label] for label in labels]]
        for benchmark, row in table.items()
    ]
    return format_table(
        ["Benchmark", *[f"{label} energy" for label in labels]],
        rows,
        title="Section 2.3.3: in-cache vs sparse classifier organization (RT-3)",
    )


# ---------------------------------------------------------------------------
# Registered commands
# ---------------------------------------------------------------------------

register_experiment(
    "replacement", "Ablation: modified-LRU vs plain LRU LLC replacement",
    lambda results, setup: render_replacement_ablation(results),
)(replacement_spec)
register_experiment(
    "oracle", "Ablation: always-probe vs dynamic-oracle local lookup",
    lambda results, setup: render_oracle_ablation(results),
)(oracle_spec)
register_experiment(
    "tla", "Ablation: modified-LRU vs Temporal Locality Hints",
    lambda results, setup: render_tla_ablation(results),
)(tla_spec)
register_experiment(
    "strategy", "Ablation: Shared-only vs all-state replica creation",
    lambda results, setup: render_replica_strategy_ablation(results),
)(replica_strategy_spec)
register_experiment(
    "organization", "Ablation: in-cache vs sparse classifier organization",
    lambda results, setup: render_classifier_organization_ablation(results),
)(classifier_organization_spec)
