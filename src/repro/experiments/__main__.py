"""Deprecated forwarder: use ``python -m repro experiments`` instead.

The experiments CLI implementation lives in
:mod:`repro.experiments.cli`; this module re-exports its surface so
existing imports (and ``python -m repro.experiments`` invocations) keep
working, with a pointer to the unified entry point printed on direct
execution.
"""

from __future__ import annotations

import sys

from repro.experiments.cli import (  # noqa: F401  (compatibility re-exports)
    COMMANDS,
    _expand,
    build_parser,
    build_service_parser,
    main,
    make_setup,
    render_command_list,
    service_main,
)

if __name__ == "__main__":
    print(
        "note: 'python -m repro.experiments' is deprecated; "
        "use 'python -m repro experiments'",
        file=sys.stderr,
    )
    raise SystemExit(main())
