"""Command-line entry point: regenerate any figure or table.

Usage::

    python -m repro.experiments fig1 [options]
    python -m repro.experiments fig6|fig7|fig8 [options]
    python -m repro.experiments fig9|fig10|rt-sweep [options]
    python -m repro.experiments replacement|oracle|tla [options]
    python -m repro.experiments strategy|organization [options]
    python -m repro.experiments breakdown --benchmarks BARNES [options]
    python -m repro.experiments table1|table2|storage
    python -m repro.experiments summary [options]
    python -m repro.experiments all

Options::

    --machine {small,paper}   machine configuration (default: small)
    --scale FLOAT             trace-length multiplier (default: 1.0)
    --seed INT                workload seed (default: 1)
    --benchmarks A,B,C        restrict the benchmark list
    --kernel {reference,fast,batched}
                              simulation kernel (default: fast; all are
                              differentially verified bit-identical)

The default ``small`` machine (16 cores, scaled caches) regenerates the
full figure suite in minutes; ``paper`` uses the Table 1 configuration
(64 cores) and is proportionally slower.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.params import MachineConfig
from repro.experiments import ablations, comparison, fig1_runlength, fig9_limitedk
from repro.experiments import fig10_cluster, rt_sweep, storage, summary, tables
from repro.experiments.runner import ExperimentSetup
from repro.sim.kernel import kernel_names

COMMANDS = (
    "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "rt-sweep",
    "replacement", "oracle", "tla", "strategy", "organization",
    "breakdown", "table1", "table2", "storage", "summary", "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument("--machine", choices=("small", "paper"), default="small")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated benchmark names")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="run the comparison matrix on N worker "
                             "processes (0 = sequential)")
    parser.add_argument("--kernel", choices=tuple(kernel_names()), default=None,
                        help="simulation kernel (default: fast; all kernels "
                             "are differentially verified bit-identical)")
    return parser


def make_setup(args: argparse.Namespace) -> ExperimentSetup:
    config = MachineConfig.paper() if args.machine == "paper" else MachineConfig.small()
    return ExperimentSetup(config, scale=args.scale, seed=args.seed, kernel=args.kernel)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    setup = make_setup(args)
    started = time.time()
    cache: dict = {"parallel": args.parallel}
    for command in _expand(args.command):
        _dispatch(command, setup, benchmarks, cache)
    print(f"\n[{time.time() - started:.1f}s elapsed]", file=sys.stderr)
    return 0


def _expand(command: str) -> list[str]:
    if command != "all":
        return [command]
    return [name for name in COMMANDS if name != "all"]


def _comparison_matrix(setup, benchmarks, cache):
    """The Figures 6–8/summary matrix, computed once per invocation."""
    key = tuple(benchmarks) if benchmarks else None
    if key not in cache:
        workers = cache.get("parallel", 0)
        if workers and workers > 1:
            from repro.experiments.parallel import run_matrix_parallel
            from repro.schemes.factory import FIGURE_SCHEMES
            from repro.workloads.benchmarks import BENCHMARK_ORDER
            bench_list = benchmarks if benchmarks else list(BENCHMARK_ORDER)
            cache[key] = run_matrix_parallel(
                setup, FIGURE_SCHEMES, bench_list, max_workers=workers
            )
        else:
            cache[key] = comparison.run_comparison(setup, benchmarks)
    return cache[key]


def _dispatch(
    command: str,
    setup: ExperimentSetup,
    benchmarks: list[str] | None,
    cache: dict | None = None,
) -> None:
    cache = cache if cache is not None else {}
    if command == "fig1":
        profiles = fig1_runlength.run_fig1(setup, benchmarks)
        print(fig1_runlength.render_fig1(profiles))
    elif command in ("fig6", "fig7", "fig8"):
        results = _comparison_matrix(setup, benchmarks, cache)
        if command == "fig6":
            print(comparison.render_normalized_table(
                comparison.fig6_energy(results),
                "Figure 6: Energy (normalized to S-NUCA)"))
        elif command == "fig7":
            print(comparison.render_normalized_table(
                comparison.fig7_completion(results),
                "Figure 7: Completion Time (normalized to S-NUCA)"))
        else:
            print(comparison.render_miss_table(
                comparison.fig8_miss_breakdown(results),
                "Figure 8: L1 Cache Miss Type Breakdown"))
    elif command == "fig9":
        results = fig9_limitedk.run_fig9(setup, benchmarks)
        energy, completion = fig9_limitedk.normalized_tables(
            results, setup.config.num_cores)
        print(fig9_limitedk.render_fig9(energy, completion))
    elif command == "fig10":
        results = fig10_cluster.run_fig10(setup, benchmarks)
        energy, completion = fig10_cluster.normalized_tables(results)
        print(fig10_cluster.render_fig10(energy, completion))
    elif command == "rt-sweep":
        results = rt_sweep.run_rt_sweep(setup, benchmarks)
        print(rt_sweep.render_rt_sweep(results))
    elif command == "replacement":
        results = ablations.run_replacement_ablation(setup, benchmarks)
        print(ablations.render_replacement_ablation(results))
    elif command == "oracle":
        results = ablations.run_oracle_ablation(setup, benchmarks)
        print(ablations.render_oracle_ablation(results))
    elif command == "tla":
        results = ablations.run_tla_ablation(setup, benchmarks)
        print(ablations.render_tla_ablation(results))
    elif command == "strategy":
        results = ablations.run_replica_strategy_ablation(setup, benchmarks)
        print(ablations.render_replica_strategy_ablation(results))
    elif command == "organization":
        results = ablations.run_classifier_organization_ablation(setup, benchmarks)
        print(ablations.render_classifier_organization_ablation(results))
    elif command == "breakdown":
        _print_breakdowns(setup, benchmarks, cache)
    elif command == "table1":
        print(tables.render_table1(setup.config))
    elif command == "table2":
        print(tables.render_table2())
    elif command == "storage":
        print(storage.render_storage(storage.storage_report(MachineConfig.paper())))
    elif command == "summary":
        results = _comparison_matrix(setup, benchmarks, cache)
        energy_red, time_red = summary.headline_reductions(results)
        print(summary.render_summary(energy_red, time_red))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown command {command!r}")
    print()


def _print_breakdowns(
    setup: ExperimentSetup, benchmarks: list[str] | None, cache: dict
) -> None:
    """Stacked component bars (Figures 6/7 style) for each benchmark."""
    from repro.experiments.reporting import render_stacked_bars

    bench_list = benchmarks or ["BARNES"]
    results = _comparison_matrix(setup, bench_list, cache)
    for benchmark in bench_list:
        energy = comparison.fig6_component_breakdown(results, benchmark)
        print(render_stacked_bars(
            energy, title=f"{benchmark}: energy components (S-NUCA total = 1.0)"
        ))
        print()
        latency = comparison.fig7_latency_breakdown(results, benchmark)
        print(render_stacked_bars(
            latency,
            title=f"{benchmark}: completion-time components (S-NUCA total = 1.0)",
        ))
        print()


if __name__ == "__main__":
    raise SystemExit(main())
