"""Command-line entry point: regenerate any figure or table.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig1 [options]
    python -m repro.experiments fig6|fig7|fig8 [options]
    python -m repro.experiments fig9|fig10|rt-sweep [options]
    python -m repro.experiments replacement|oracle|tla [options]
    python -m repro.experiments strategy|organization [options]
    python -m repro.experiments breakdown --benchmarks BARNES [options]
    python -m repro.experiments table1|table2|storage
    python -m repro.experiments summary [options]
    python -m repro.experiments all

The subcommands are generated from the experiment registry
(:mod:`repro.experiments.spec`); ``--list`` prints the catalog.

Options::

    --machine {small,paper}   machine configuration (default: small)
    --scale FLOAT             trace-length multiplier (default: 1.0)
    --seed INT                workload seed (default: 1)
    --benchmarks A,B,C        restrict the benchmark list
    --parallel N              shard RunPoints over N worker processes
    --kernel {reference,fast,batched,auto}
                              simulation kernel (default: fast; all are
                              differentially verified bit-identical;
                              ``auto`` probes each trace's run-length
                              structure and picks fast vs batched)
    --no-cache                skip the on-disk result store for this
                              invocation (in-memory dedup still applies)

Results are content-addressed in a JSON-on-disk
:class:`~repro.experiments.store.ResultStore` (relocate or disable it
with ``REPRO_RESULT_CACHE``), so ``all`` performs each unique (scheme,
benchmark, config, seed, scale) simulation at most once and repeated
invocations reuse prior runs; the hit/miss accounting is printed to
stderr after every invocation.

The default ``small`` machine (16 cores, scaled caches) regenerates the
full figure suite in minutes; ``paper`` uses the Table 1 configuration
(64 cores) and is proportionally slower.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.params import MachineConfig
from repro.experiments import spec as spec_registry
from repro.experiments.runner import ExperimentSetup
from repro.experiments.store import ResultStore
from repro.sim.kernel import AUTO_KERNEL, kernel_names

#: Registered commands plus the ``all`` expansion, in run order.
COMMANDS = (*spec_registry.command_names(), "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("command", nargs="?", choices=COMMANDS,
                        help="experiment to run (see --list)")
    parser.add_argument("--list", action="store_true", dest="list_commands",
                        help="list the registered experiments and exit")
    parser.add_argument("--machine", choices=("small", "paper"), default="small")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--benchmarks", type=str, default=None,
                        help="comma-separated benchmark names")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="shard each experiment grid's RunPoints over "
                             "N worker processes (0 = sequential)")
    parser.add_argument("--kernel", choices=(*kernel_names(), AUTO_KERNEL),
                        default=None,
                        help="simulation kernel (default: fast; all kernels "
                             "are differentially verified bit-identical; "
                             "'auto' picks fast vs batched per trace)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result store "
                             "(in-memory deduplication still applies)")
    return parser


def make_setup(args: argparse.Namespace) -> ExperimentSetup:
    config = MachineConfig.paper() if args.machine == "paper" else MachineConfig.small()
    return ExperimentSetup(config, scale=args.scale, seed=args.seed, kernel=args.kernel)


def render_command_list() -> str:
    """The ``--list`` catalog, generated from the registry."""
    commands = spec_registry.registered_commands()
    width = max(len(command.name) for command in commands)
    lines = ["Registered experiments:"]
    for command in commands:
        kind = "grid" if command.is_grid else "report"
        lines.append(f"  {command.name.ljust(width)}  [{kind:6s}] {command.description}")
    lines.append(f"  {'all'.ljust(width)}  [meta  ] run every registered experiment")
    return "\n".join(lines)


def main(argv: list[str] | None = None, store: ResultStore | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_commands:
        print(render_command_list())
        return 0
    if args.command is None:
        parser.error("a command is required (or --list to see them)")
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    if benchmarks is not None:
        try:
            spec_registry.validate_benchmarks(benchmarks)
        except ValueError as exc:
            parser.error(str(exc))
    setup = make_setup(args)
    if store is None:
        store = ResultStore.memory() if args.no_cache else ResultStore.from_env()
    started = time.time()
    for name in _expand(args.command):
        command = spec_registry.get_command(name)
        print(command.run(setup, benchmarks, store=store, max_workers=args.parallel))
        print()
    print(f"\n[{time.time() - started:.1f}s elapsed]", file=sys.stderr)
    print(f"[{store.describe()}]", file=sys.stderr)
    return 0


def _expand(command: str) -> tuple[str, ...]:
    if command != "all":
        return (command,)
    return spec_registry.command_names()


if __name__ == "__main__":
    raise SystemExit(main())
