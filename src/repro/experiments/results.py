"""Unified query layer over experiment results.

A :class:`ResultSet` wraps ``{RunPoint: RunResult}`` — the outcome of
executing an :class:`~repro.experiments.spec.ExperimentSpec` — and turns
every figure's bespoke dict plumbing into short queries:

* :meth:`ResultSet.pivot` — a ``{row: {column: value}}`` table over any
  point axes and any result metric;
* :meth:`ResultSet.normalized_to` — the same table with every row
  divided by its baseline column (how Figures 6/7/9/10 normalize);
* :meth:`ResultSet.geomean` / :meth:`ResultSet.mean` — per-column
  aggregates across rows (the GEOMEAN/AVERAGE summary rows).

For compatibility with the pre-spec API, a :class:`ResultSet` is also a
read-only mapping in the legacy ``results[benchmark][label]`` shape
(label defaults to the scheme), so existing renderers, goldens and
notebooks keep working unchanged; :meth:`ResultSet.ensure` upgrades a
plain nested dict into a queryable set.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import TYPE_CHECKING, Callable, Iterator

from repro.experiments.reporting import arithmetic_mean, geomean
from repro.experiments.runner import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import ExperimentSpec, RunPoint

#: A metric selector: a RunResult attribute/property name or a callable.
Value = "str | Callable[[RunResult], object]"


def _accessor(value) -> Callable[[RunResult], object]:
    if callable(value):
        return value
    return lambda result: getattr(result, value)


class ResultSet(Mapping):
    """``{RunPoint: RunResult}`` with pivot/normalize/aggregate queries.

    Iteration order everywhere follows point insertion order (the spec's
    grid order), so rendered tables match the paper's row/column layout.
    """

    def __init__(
        self,
        results: "Mapping[RunPoint, RunResult]",
        name: str = "",
        baseline: "str | int | None" = None,
    ) -> None:
        self._results = dict(results)
        self.name = name
        self.baseline = baseline
        self._rows: dict[str, dict] = {}
        for point, result in self._results.items():
            row = self._rows.setdefault(point.benchmark, {})
            if point.col_label in row:
                # Two *distinct* points collapsing onto one table cell
                # would silently drop results from every query.
                raise ValueError(
                    f"distinct points share the table cell "
                    f"({point.benchmark!r}, {point.col_label!r}) in "
                    f"{name or 'result set'}; give them distinct labels"
                )
            row[point.col_label] = result

    # -- construction --------------------------------------------------------
    @classmethod
    def from_spec(
        cls, spec: "ExperimentSpec", results: "Mapping[RunPoint, RunResult]"
    ) -> "ResultSet":
        return cls(results, name=spec.name, baseline=spec.baseline)

    @classmethod
    def ensure(cls, results) -> "ResultSet":
        """Coerce legacy ``{row: {label: RunResult}}`` dicts into a set."""
        if isinstance(results, cls):
            return results
        from repro.experiments.spec import RunPoint

        points: dict = {}
        for row_key, row in results.items():
            for col_key, result in row.items():
                point = RunPoint(
                    scheme=getattr(result, "scheme", str(col_key)),
                    benchmark=row_key,
                    label=col_key,
                )
                points[point] = result
        return cls(points)

    # -- point-level access --------------------------------------------------
    @property
    def points(self) -> tuple:
        return tuple(self._results)

    def result_for(self, point: "RunPoint") -> RunResult:
        return self._results[point]

    def labels(self) -> tuple:
        """Column labels in first-appearance (spec grid) order."""
        seen: dict = {}
        for point in self._results:
            seen.setdefault(point.col_label, None)
        return tuple(seen)

    def benchmarks(self) -> tuple:
        """Row keys in first-appearance (spec grid) order."""
        return tuple(self._rows)

    # -- legacy mapping shape: results[benchmark][label] ---------------------
    def __getitem__(self, benchmark: str) -> dict:
        return self._rows[benchmark]

    def __iter__(self) -> Iterator[str]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    # -- queries -------------------------------------------------------------
    def pivot(
        self, value: Value = "total_energy", row: str = "benchmark",
        col: str = "label",
    ) -> dict:
        """``{row: {col: metric}}`` over any point axes.

        ``row``/``col`` name :class:`RunPoint` attributes (``benchmark``,
        ``label``, ``scheme``, ``seed`` …); ``value`` names a
        :class:`RunResult` attribute (``total_energy``,
        ``completion_time``, ``asr_level``) or is a callable
        ``RunResult -> value``.
        """
        accessor = _accessor(value)
        table: dict = {}
        for point, result in self._results.items():
            row_key = point.col_label if row == "label" else getattr(point, row)
            col_key = point.col_label if col == "label" else getattr(point, col)
            table.setdefault(row_key, {})[col_key] = accessor(result)
        return table

    def normalized_to(
        self, baseline: "str | int | None" = None,
        value: Value = "total_energy", row: str = "benchmark",
        col: str = "label",
    ) -> dict:
        """:meth:`pivot`, with every row divided by its baseline column."""
        baseline = baseline if baseline is not None else self.baseline
        if baseline is None:
            raise ValueError("no baseline label given and the set declares none")
        table = self.pivot(value, row=row, col=col)
        normalized: dict = {}
        for row_key, cells in table.items():
            if baseline not in cells:
                raise KeyError(
                    f"baseline {baseline!r} missing from row {row_key!r}; "
                    f"columns: {list(cells)}"
                )
            base = cells[baseline]
            normalized[row_key] = {key: cell / base for key, cell in cells.items()}
        return normalized

    def _aggregate(
        self, reduce: Callable, value: Value, baseline: "str | int | None"
    ) -> dict:
        if baseline is not None:
            table = self.normalized_to(baseline, value)
        else:
            table = self.pivot(value)
        columns: dict = {}
        for cells in table.values():
            for key in cells:
                columns.setdefault(key, None)
        return {
            key: reduce(cells[key] for cells in table.values() if key in cells)
            for key in columns
        }

    def geomean(
        self, value: Value = "total_energy",
        baseline: "str | int | None" = None,
    ) -> dict:
        """Per-column geometric mean across rows (optionally normalized)."""
        return self._aggregate(geomean, value, baseline)

    def mean(
        self, value: Value = "total_energy",
        baseline: "str | int | None" = None,
    ) -> dict:
        """Per-column arithmetic mean across rows (optionally normalized)."""
        return self._aggregate(arithmetic_mean, value, baseline)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultSet({self.name or 'anonymous'}: "
            f"{len(self._results)} points, {len(self._rows)} rows)"
        )
