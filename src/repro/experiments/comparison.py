"""Figures 6, 7 and 8: the main scheme-comparison matrix (Section 4.1).

One :class:`ExperimentSpec` — seven schemes (S-NUCA, R-NUCA, VR, ASR,
RT-1, RT-3, RT-8) × the benchmark list — feeds all three figures, the
headline summary and the per-benchmark component breakdowns:

* Figure 6: energy breakdown per scheme, normalized to S-NUCA;
* Figure 7: completion-time breakdown per scheme, normalized to S-NUCA;
* Figure 8: L1 miss type breakdown (replica hit / home hit / off-chip).

The paper plots the *Average* (not geometric mean) across benchmarks for
Figures 6 and 7; :func:`average_row` reproduces that convention.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.energy.model import COMPONENTS
from repro.experiments.reporting import (
    arithmetic_mean,
    format_table,
    render_stacked_bars,
)
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup, RunResult
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    execute_spec,
    register_experiment,
    resolve_benchmarks,
)
from repro.experiments.store import ResultStore
from repro.schemes.factory import FIGURE_SCHEMES
from repro.workloads.benchmarks import BENCHMARK_ORDER


def comparison_spec(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    schemes: Iterable[str] = FIGURE_SCHEMES,
) -> ExperimentSpec:
    """The Figures 6–8 grid: every (benchmark, scheme) pair."""
    bench_list = resolve_benchmarks(benchmarks, BENCHMARK_ORDER)
    scheme_list = list(schemes)
    points = tuple(
        RunPoint(scheme=scheme, benchmark=benchmark)
        for benchmark in bench_list
        for scheme in scheme_list
    )
    return ExperimentSpec(
        "comparison", points,
        title="Figures 6-8: scheme comparison matrix", baseline="S-NUCA",
    )


def run_comparison(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    schemes: Iterable[str] = FIGURE_SCHEMES,
    store: ResultStore | None = None,
) -> ResultSet:
    """Run the Figures 6–8 matrix; readable as ``results[benchmark][scheme]``."""
    return execute_spec(comparison_spec(setup, benchmarks, schemes), setup, store=store)


# ---------------------------------------------------------------------------
# Figure 6: energy
# ---------------------------------------------------------------------------

def fig6_energy(results) -> dict[str, dict[str, float]]:
    """Normalized total energy per (benchmark, scheme), S-NUCA = 1.0."""
    return ResultSet.ensure(results).normalized_to("S-NUCA", "total_energy")


def fig6_component_breakdown(
    results: Mapping[str, Mapping[str, RunResult]], benchmark: str
) -> dict[str, dict[str, float]]:
    """Per-component energy for one benchmark, normalized to S-NUCA total."""
    row = results[benchmark]
    baseline = row["S-NUCA"].total_energy
    return {
        scheme: {
            component: result.energy_breakdown.get(component, 0.0) / baseline
            for component in COMPONENTS
        }
        for scheme, result in row.items()
    }


# ---------------------------------------------------------------------------
# Figure 7: completion time
# ---------------------------------------------------------------------------

def fig7_completion(results) -> dict[str, dict[str, float]]:
    """Normalized completion time per (benchmark, scheme), S-NUCA = 1.0."""
    return ResultSet.ensure(results).normalized_to("S-NUCA", "completion_time")


def fig7_latency_breakdown(
    results: Mapping[str, Mapping[str, RunResult]], benchmark: str
) -> dict[str, dict[str, float]]:
    """Per-bucket latency cycles for one benchmark, normalized to S-NUCA."""
    row = results[benchmark]
    baseline = sum(row["S-NUCA"].stats.latency_breakdown().values())
    return {
        scheme: {
            bucket: cycles / baseline
            for bucket, cycles in result.stats.latency_breakdown().items()
        }
        for scheme, result in row.items()
    }


# ---------------------------------------------------------------------------
# Figure 8: L1 miss types
# ---------------------------------------------------------------------------

def fig8_miss_breakdown(results) -> dict[str, dict[str, dict[str, float]]]:
    """Miss-type fractions per (benchmark, scheme)."""
    return ResultSet.ensure(results).pivot(
        value=lambda result: result.stats.miss_breakdown()
    )


# ---------------------------------------------------------------------------
# Averages and rendering
# ---------------------------------------------------------------------------

def average_row(table: Mapping[str, Mapping[str, float]]) -> dict[str, float]:
    """The AVERAGE bar of Figures 6/7 (arithmetic mean over benchmarks)."""
    schemes: list[str] = list(next(iter(table.values())).keys())
    return {
        scheme: arithmetic_mean(row[scheme] for row in table.values())
        for scheme in schemes
    }


def render_normalized_table(
    table: Mapping[str, Mapping[str, float]], title: str
) -> str:
    schemes = list(next(iter(table.values())).keys())
    rows = [
        [benchmark, *[row[scheme] for scheme in schemes]]
        for benchmark, row in table.items()
    ]
    avg = average_row(table)
    rows.append(["AVERAGE", *[avg[scheme] for scheme in schemes]])
    return format_table(["Benchmark", *schemes], rows, title=title)


def render_miss_table(
    table: Mapping[str, Mapping[str, Mapping[str, float]]], title: str
) -> str:
    lines = [title, "=" * len(title)]
    categories = ("LLC-Replica-Hits", "LLC-Home-Hits", "OffChip-Misses")
    for benchmark, row in table.items():
        lines.append(f"\n{benchmark}")
        rows = [
            [scheme, *[fractions[category] for category in categories]]
            for scheme, fractions in row.items()
        ]
        lines.append(format_table(["Scheme", *categories], rows))
    return "\n".join(lines)


def render_breakdowns(results, benchmarks: Iterable[str]) -> str:
    """Stacked component bars (Figures 6/7 style) for each benchmark."""
    sections = []
    for benchmark in benchmarks:
        energy = fig6_component_breakdown(results, benchmark)
        sections.append(render_stacked_bars(
            energy, title=f"{benchmark}: energy components (S-NUCA total = 1.0)"
        ))
        latency = fig7_latency_breakdown(results, benchmark)
        sections.append(render_stacked_bars(
            latency,
            title=f"{benchmark}: completion-time components (S-NUCA total = 1.0)",
        ))
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# Registered commands
# ---------------------------------------------------------------------------

def _render_fig6(results: ResultSet, setup: ExperimentSetup) -> str:
    return render_normalized_table(
        fig6_energy(results), "Figure 6: Energy (normalized to S-NUCA)"
    )


def _render_fig7(results: ResultSet, setup: ExperimentSetup) -> str:
    return render_normalized_table(
        fig7_completion(results), "Figure 7: Completion Time (normalized to S-NUCA)"
    )


def _render_fig8(results: ResultSet, setup: ExperimentSetup) -> str:
    return render_miss_table(
        fig8_miss_breakdown(results), "Figure 8: L1 Cache Miss Type Breakdown"
    )


def _render_breakdown(results: ResultSet, setup: ExperimentSetup) -> str:
    return render_breakdowns(results, results.benchmarks())


register_experiment(
    "fig6", "Figure 6: energy per scheme, normalized to S-NUCA", _render_fig6
)(comparison_spec)
register_experiment(
    "fig7", "Figure 7: completion time per scheme, normalized to S-NUCA",
    _render_fig7,
)(lambda setup, benchmarks=None: comparison_spec(setup, benchmarks))
register_experiment(
    "fig8", "Figure 8: L1 miss type breakdown per scheme", _render_fig8
)(lambda setup, benchmarks=None: comparison_spec(setup, benchmarks))
register_experiment(
    "breakdown", "Stacked energy/latency component bars per benchmark",
    _render_breakdown,
)(lambda setup, benchmarks=None: comparison_spec(
    setup, benchmarks if benchmarks else ["BARNES"]
))
