"""Figures 6, 7 and 8: the main scheme-comparison matrix (Section 4.1).

One matrix of runs — seven schemes (S-NUCA, R-NUCA, VR, ASR, RT-1, RT-3,
RT-8) × the benchmark list — feeds all three figures:

* Figure 6: energy breakdown per scheme, normalized to S-NUCA;
* Figure 7: completion-time breakdown per scheme, normalized to S-NUCA;
* Figure 8: L1 miss type breakdown (replica hit / home hit / off-chip).

The paper plots the *Average* (not geometric mean) across benchmarks for
Figures 6 and 7; :func:`average_row` reproduces that convention.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.energy.model import COMPONENTS
from repro.experiments.reporting import arithmetic_mean, format_table
from repro.experiments.runner import ExperimentSetup, RunResult, run_matrix
from repro.schemes.factory import FIGURE_SCHEMES
from repro.sim.stats import LATENCY_BUCKETS


def run_comparison(
    setup: ExperimentSetup,
    benchmarks: Iterable[str] | None = None,
    schemes: Iterable[str] = FIGURE_SCHEMES,
) -> dict[str, dict[str, RunResult]]:
    """Run the Figures 6–8 matrix; ``results[benchmark][scheme]``."""
    return run_matrix(setup, list(schemes), benchmarks)


# ---------------------------------------------------------------------------
# Figure 6: energy
# ---------------------------------------------------------------------------

def fig6_energy(
    results: Mapping[str, Mapping[str, RunResult]]
) -> dict[str, dict[str, float]]:
    """Normalized total energy per (benchmark, scheme), S-NUCA = 1.0."""
    table: dict[str, dict[str, float]] = {}
    for benchmark, row in results.items():
        baseline = row["S-NUCA"].total_energy
        table[benchmark] = {
            scheme: result.total_energy / baseline for scheme, result in row.items()
        }
    return table


def fig6_component_breakdown(
    results: Mapping[str, Mapping[str, RunResult]], benchmark: str
) -> dict[str, dict[str, float]]:
    """Per-component energy for one benchmark, normalized to S-NUCA total."""
    row = results[benchmark]
    baseline = row["S-NUCA"].total_energy
    return {
        scheme: {
            component: result.energy_breakdown.get(component, 0.0) / baseline
            for component in COMPONENTS
        }
        for scheme, result in row.items()
    }


# ---------------------------------------------------------------------------
# Figure 7: completion time
# ---------------------------------------------------------------------------

def fig7_completion(
    results: Mapping[str, Mapping[str, RunResult]]
) -> dict[str, dict[str, float]]:
    """Normalized completion time per (benchmark, scheme), S-NUCA = 1.0."""
    table: dict[str, dict[str, float]] = {}
    for benchmark, row in results.items():
        baseline = row["S-NUCA"].completion_time
        table[benchmark] = {
            scheme: result.completion_time / baseline for scheme, result in row.items()
        }
    return table


def fig7_latency_breakdown(
    results: Mapping[str, Mapping[str, RunResult]], benchmark: str
) -> dict[str, dict[str, float]]:
    """Per-bucket latency cycles for one benchmark, normalized to S-NUCA."""
    row = results[benchmark]
    baseline = sum(row["S-NUCA"].stats.latency_breakdown().values())
    return {
        scheme: {
            bucket: cycles / baseline
            for bucket, cycles in result.stats.latency_breakdown().items()
        }
        for scheme, result in row.items()
    }


# ---------------------------------------------------------------------------
# Figure 8: L1 miss types
# ---------------------------------------------------------------------------

def fig8_miss_breakdown(
    results: Mapping[str, Mapping[str, RunResult]]
) -> dict[str, dict[str, dict[str, float]]]:
    """Miss-type fractions per (benchmark, scheme)."""
    return {
        benchmark: {
            scheme: result.stats.miss_breakdown() for scheme, result in row.items()
        }
        for benchmark, row in results.items()
    }


# ---------------------------------------------------------------------------
# Averages and rendering
# ---------------------------------------------------------------------------

def average_row(table: Mapping[str, Mapping[str, float]]) -> dict[str, float]:
    """The AVERAGE bar of Figures 6/7 (arithmetic mean over benchmarks)."""
    schemes: list[str] = list(next(iter(table.values())).keys())
    return {
        scheme: arithmetic_mean(row[scheme] for row in table.values())
        for scheme in schemes
    }


def render_normalized_table(
    table: Mapping[str, Mapping[str, float]], title: str
) -> str:
    schemes = list(next(iter(table.values())).keys())
    rows = [
        [benchmark, *[row[scheme] for scheme in schemes]]
        for benchmark, row in table.items()
    ]
    avg = average_row(table)
    rows.append(["AVERAGE", *[avg[scheme] for scheme in schemes]])
    return format_table(["Benchmark", *schemes], rows, title=title)


def render_miss_table(
    table: Mapping[str, Mapping[str, Mapping[str, float]]], title: str
) -> str:
    lines = [title, "=" * len(title)]
    categories = ("LLC-Replica-Hits", "LLC-Home-Hits", "OffChip-Misses")
    for benchmark, row in table.items():
        lines.append(f"\n{benchmark}")
        rows = [
            [scheme, *[fractions[category] for category in categories]]
            for scheme, fractions in row.items()
        ]
        lines.append(format_table(["Scheme", *categories], rows))
    return "\n".join(lines)
