"""Content-addressed result store for experiment runs.

Every simulation the experiment layer performs is fully determined by a
:class:`~repro.experiments.spec.RunPoint` resolved against an
:class:`~repro.experiments.runner.ExperimentSetup`: the scheme label,
the benchmark, the *effective* machine configuration (base machine plus
the point's overrides), the trace scale and the workload seed.  That
resolved description — the point's *fingerprint* — hashes to a stable
content address, and :class:`ResultStore` maps addresses to
:class:`~repro.experiments.runner.RunResult` payloads:

* an **in-memory layer** guarantees that one process never performs the
  same simulation twice (``python -m repro.experiments all`` runs each
  unique point exactly once even though Figures 6/7/8, the summary and
  the breakdown all share the comparison matrix);
* an optional **JSON-on-disk layer** (one file per address) persists
  results across invocations, so re-rendering a figure after a crash or
  tweaking only the rendering costs no simulation time.

The simulation *kernel* is deliberately **excluded** from the
fingerprint: all kernels are differentially verified bit-identical
(:mod:`repro.testing`), so reference/fast/batched/auto runs of the same
point are interchangeable payloads.  Serialization is exact — JSON
round-trips Python floats bit-for-bit — so a disk hit reproduces the
original statistics digit for digit.

Controls:

* ``REPRO_RESULT_CACHE=<dir>`` relocates the on-disk store;
* ``REPRO_RESULT_CACHE=off`` (or ``0``/``none``/``false``) disables disk
  persistence (the in-memory layer still deduplicates one invocation);
* an empty or whitespace-only value is treated as *unset* and falls
  back to the default location (previously it disabled persistence):
  ``REPRO_RESULT_CACHE= cmd`` and unset-variable interpolation usually
  mean "no opinion", and the explicit spellings above remain the way to
  opt out — never as ``Path("")``, which would be the current working
  directory;
* ``--no-cache`` on the CLI does the same for a single invocation.

Hit/miss accounting (:attr:`ResultStore.hits` / :attr:`misses`) is the
observable contract the test-suite and the CI smoke job assert on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from collections import Counter
from pathlib import Path
from typing import Callable, Mapping

from repro.common.types import MissStatus
from repro.experiments.runner import RunResult
from repro.sim.stats import SimStats

#: Bump when the simulator's observable statistics change meaning, so
#: stale on-disk results from an older format can never be returned.
STORE_VERSION = 1

#: Environment variable controlling the on-disk location (a path) or
#: disabling persistence (``off``/``0``/``none``; empty falls back to
#: the default location).
CACHE_ENV_VAR = "REPRO_RESULT_CACHE"

_DISABLED_VALUES = ("0", "off", "none", "disabled", "false")

#: Process-wide sequence for temp-file names: combined with the pid it
#: makes every write's temp path unique across *all* concurrent writers
#: (stores in this process, ``--parallel`` workers, other invocations
#: sharing the cache directory), so no two writers can interleave into
#: the same temp file and ``os.replace`` a torn payload.
_TMP_SEQUENCE = itertools.count()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM still means alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def default_cache_dir() -> Path:
    """The XDG-style default location for the on-disk store."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-llc" / "results"


def fingerprint_key(fingerprint: Mapping) -> str:
    """Stable content address for a resolved run fingerprint.

    The fingerprint is canonicalized (sorted keys, minimal separators)
    and hashed together with :data:`STORE_VERSION`; any change to the
    machine configuration, scheme, benchmark, scale or seed produces a
    different address.
    """
    payload = {"store_version": STORE_VERSION, "point": fingerprint}
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# RunResult <-> JSON (exact round-trip)
# ---------------------------------------------------------------------------

def encode_result(result: RunResult) -> dict:
    """JSON-serializable dump of a :class:`RunResult` (exact)."""
    stats = result.stats
    return {
        "scheme": result.scheme,
        "benchmark": result.benchmark,
        "asr_level": result.asr_level,
        "energy_breakdown": dict(result.energy_breakdown),
        "stats": {
            "num_cores": stats.num_cores,
            "completion_time": stats.completion_time,
            "core_finish": list(stats.core_finish),
            "counters": dict(stats.counters),
            "energy_counts": dict(stats.energy_counts),
            "latency": dict(stats.latency),
            "miss_status": {
                status.name: count for status, count in stats.miss_status.items()
            },
        },
    }


def decode_result(payload: Mapping) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`encode_result` output."""
    raw = payload["stats"]
    stats = SimStats(
        num_cores=raw["num_cores"],
        counters=Counter(raw["counters"]),
        energy_counts=Counter(raw["energy_counts"]),
        latency=Counter(raw["latency"]),
        miss_status=Counter(
            {MissStatus[name]: count for name, count in raw["miss_status"].items()}
        ),
        core_finish=list(raw["core_finish"]),
        completion_time=raw["completion_time"],
    )
    return RunResult(
        scheme=payload["scheme"],
        benchmark=payload["benchmark"],
        stats=stats,
        energy_breakdown=dict(payload["energy_breakdown"]),
        asr_level=payload["asr_level"],
    )


@dataclasses.dataclass
class ResultStore:
    """Content-addressed {fingerprint hash → RunResult} with accounting.

    ``root=None`` keeps the store memory-only (one invocation's
    deduplication); a path adds JSON-on-disk persistence.  The counters
    record the outcome of every :meth:`get`/:meth:`get_or_run` lookup:
    ``hits`` (served from memory or disk, split out as ``disk_hits``)
    and ``misses`` (the caller had to simulate).
    """

    root: Path | None = None
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    def __post_init__(self) -> None:
        if self.root is not None:
            self.root = Path(self.root)
        self._memory: dict[str, RunResult] = {}
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Drop ``*.tmp`` litter left behind by crashed writers.

        Runs once on store open; a temp file only survives a write that
        died between creation and ``os.replace``.  Only the store's own
        name shapes are swept (``<key>.json.tmp`` from older versions,
        ``<key>.json.<pid>.<seq>.tmp`` from this one) — the directory
        may hold foreign files — and a pid-stamped file whose writer is
        still alive is left alone (it is an in-flight write of a
        concurrent invocation, not litter).  Best-effort: pids recycle
        (a falsely "alive" stale file waits for the next sweep) and
        unlink errors are ignored.
        """
        if self.root is None or not self.root.is_dir():
            return
        for pattern in ("*.json.tmp", "*.json.*.tmp"):
            for stale in self.root.glob(pattern):
                parts = stale.name.split(".")
                # <key>.json.<pid>.<seq>.tmp — skip live writers.
                if len(parts) >= 5:
                    try:
                        writer = int(parts[-3])
                    except ValueError:
                        writer = None
                    if writer is not None and _pid_alive(writer):
                        continue
                try:
                    stale.unlink()
                except OSError:
                    pass

    # -- construction --------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ResultStore":
        """Build the store the CLI uses, honoring ``REPRO_RESULT_CACHE``."""
        value = os.environ.get(CACHE_ENV_VAR)
        if value is not None:
            value = value.strip()
        if not value:
            # Unset, empty or whitespace-only: the default location —
            # an empty value means "no opinion", not "disable", and must
            # never reach Path("") (the current working directory).
            return cls(default_cache_dir())
        if value.lower() in _DISABLED_VALUES:
            return cls(None)
        return cls(Path(value))

    @classmethod
    def memory(cls) -> "ResultStore":
        """A memory-only store (per-invocation deduplication, no disk)."""
        return cls(None)

    # -- lookups -------------------------------------------------------------
    def key_for(self, fingerprint: Mapping) -> str:
        return fingerprint_key(fingerprint)

    def get(self, key: str) -> RunResult | None:
        """Look up a content address, counting the hit or miss."""
        result = self._memory.get(key)
        if result is not None:
            self.hits += 1
            return result
        result = self._read_disk(key)
        if result is not None:
            self._memory[key] = result
            self.hits += 1
            self.disk_hits += 1
            return result
        self.misses += 1
        return None

    def put(self, key: str, result: RunResult) -> None:
        self._memory[key] = result
        self._write_disk(key, result)

    def get_or_run(self, key: str, run: Callable[[], RunResult]) -> RunResult:
        """Return the stored result or execute ``run`` and store it."""
        result = self.get(key)
        if result is None:
            result = run()
            self.put(key, result)
        return result

    def record_hit(self) -> None:
        """Count a hit served outside :meth:`get` (the parallel executor
        deduplicates same-address points before their result is stored,
        keeping its accounting identical to the sequential path)."""
        self.hits += 1

    # -- accounting ----------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served without simulating (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        """One-line accounting summary (printed by the CLI to stderr)."""
        line = f"{self.hits} hits ({self.disk_hits} from disk), {self.misses} misses"
        if self.lookups:
            line += f", {self.hit_rate():.0%} hit rate"
        return f"result-store: {line}"

    # -- disk layer ----------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.json"

    def _read_disk(self, key: str) -> RunResult | None:
        if self.root is None:
            return None
        path = self._path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return decode_result(payload)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError):
            # A truncated or foreign file is a miss, not a crash; the
            # fresh result overwrites it.
            return None

    def _tmp_path_for(self, key: str) -> Path:
        """A temp path no other writer (process or store) can collide on."""
        assert self.root is not None
        return self.root / (
            f"{key}.json.{os.getpid()}.{next(_TMP_SEQUENCE)}.tmp"
        )

    def _write_disk(self, key: str, result: RunResult) -> None:
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path_for(key)
        tmp = self._tmp_path_for(key)
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(encode_result(result), handle)
            os.replace(tmp, path)
        except OSError:
            # Persistence is best-effort; the in-memory layer still holds
            # the result for this invocation.
            tmp.unlink(missing_ok=True)
