"""Content-addressed result store for experiment runs.

Every simulation the experiment layer performs is fully determined by a
:class:`~repro.experiments.spec.RunPoint` resolved against an
:class:`~repro.experiments.runner.ExperimentSetup`: the scheme label,
the benchmark, the *effective* machine configuration (base machine plus
the point's overrides), the trace scale and the workload seed.  That
resolved description — the point's *fingerprint* — hashes to a stable
content address, and :class:`ResultStore` maps addresses to
:class:`~repro.experiments.runner.RunResult` payloads (and, for the
Figure 1 motivation study, raw profile payloads — see
:meth:`ResultStore.get_payload`).

The store is split into two layers:

* an **in-memory object layer** (inside :class:`ResultStore`) guarantees
  that one process never performs the same simulation twice and
  preserves object identity within an invocation;
* a pluggable :class:`StoreBackend` persists JSON payloads.  Three stock
  backends ship:

  - :class:`MemoryBackend` — payload dict in memory, no persistence
    (``ResultStore(root=None)``; per-invocation deduplication only);
  - :class:`JsonDirBackend` — one ``<address>.json`` file per entry in a
    flat directory, with atomic cross-process writes and an optional
    **size bound with LRU eviction** (reads refresh recency);
  - :class:`SharedDirBackend` — the filesystem-mounted *shared* layout
    for many workers/machines: the same atomic-write discipline plus a
    two-hex-character fanout (``ab/<address>.json``) so network mounts
    never hold one huge directory.  This is the read-through cache the
    distributed experiment service (:mod:`repro.experiments.service`)
    commits results through.

The simulation *kernel* is deliberately **excluded** from the
fingerprint: all kernels are differentially verified bit-identical
(:mod:`repro.testing`), so reference/fast/batched/vector/auto runs of
the same point are interchangeable payloads.  Serialization is exact —
JSON round-trips Python floats bit-for-bit — so a disk hit reproduces
the original statistics digit for digit.

Controls:

* ``REPRO_RESULT_CACHE=<dir>`` relocates the on-disk store;
* ``REPRO_RESULT_CACHE=shared:<dir>`` selects the shared (fanout)
  backend at that directory — the spelling broker and workers use when
  they mount one store across machines;
* ``REPRO_RESULT_CACHE=off`` (or ``0``/``none``/``false``) disables disk
  persistence (the in-memory layer still deduplicates one invocation);
* an empty or whitespace-only value is treated as *unset* and falls
  back to the default location (previously it disabled persistence):
  ``REPRO_RESULT_CACHE= cmd`` and unset-variable interpolation usually
  mean "no opinion", and the explicit spellings above remain the way to
  opt out — never as ``Path("")``, which would be the current working
  directory;
* ``REPRO_RESULT_CACHE_MAX_MB=<float>`` bounds the on-disk store size;
  least-recently-*used* entries are evicted when a write overflows it
  (``python -m repro experiments store stats|purge`` inspects/empties
  the store from the CLI);
* ``--no-cache`` on the CLI does the same as ``off`` for a single
  invocation.

Hit/miss accounting (:attr:`ResultStore.hits` / :attr:`misses`) is the
observable contract the test-suite and the CI smoke jobs assert on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from collections import Counter
from pathlib import Path
from typing import Callable, Iterator, Mapping, Protocol, runtime_checkable

from repro.common.types import MissStatus
from repro.experiments.runner import RunResult
from repro.sim.stats import SimStats

#: Bump when the simulator's observable statistics change meaning, so
#: stale on-disk results from an older format can never be returned.
STORE_VERSION = 1

#: Environment variable controlling the on-disk location (a path, or
#: ``shared:<path>`` for the fanout layout) or disabling persistence
#: (``off``/``0``/``none``; empty falls back to the default location).
CACHE_ENV_VAR = "REPRO_RESULT_CACHE"

#: Environment variable bounding the on-disk store size, in megabytes
#: (unset, empty or <= 0: unbounded).
CACHE_MAX_MB_ENV_VAR = "REPRO_RESULT_CACHE_MAX_MB"

#: ``REPRO_RESULT_CACHE`` prefix selecting :class:`SharedDirBackend`.
SHARED_PREFIX = "shared:"

_DISABLED_VALUES = ("0", "off", "none", "disabled", "false")

#: Process-wide sequence for temp-file names: combined with the pid it
#: makes every write's temp path unique across *all* concurrent writers
#: (stores in this process, ``--parallel`` workers, distributed-service
#: workers on other hosts sharing the directory over a network mount),
#: so no two writers can interleave into the same temp file and
#: ``os.replace`` a torn payload.
_TMP_SEQUENCE = itertools.count()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM still means alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def default_cache_dir() -> Path:
    """The XDG-style default location for the on-disk store."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-llc" / "results"


def max_bytes_from_env() -> int | None:
    """The ``REPRO_RESULT_CACHE_MAX_MB`` size bound in bytes, if set."""
    value = os.environ.get(CACHE_MAX_MB_ENV_VAR, "").strip()
    if not value:
        return None
    try:
        megabytes = float(value)
    except ValueError:
        return None
    if megabytes <= 0:
        return None
    return int(megabytes * 1024 * 1024)


def fingerprint_key(fingerprint: Mapping) -> str:
    """Stable content address for a resolved run fingerprint.

    The fingerprint is canonicalized (sorted keys, minimal separators)
    and hashed together with :data:`STORE_VERSION`; any change to the
    machine configuration, scheme, benchmark, scale or seed produces a
    different address.
    """
    payload = {"store_version": STORE_VERSION, "point": fingerprint}
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# RunResult <-> JSON (exact round-trip)
# ---------------------------------------------------------------------------

def encode_result(result: RunResult) -> dict:
    """JSON-serializable dump of a :class:`RunResult` (exact)."""
    stats = result.stats
    return {
        "scheme": result.scheme,
        "benchmark": result.benchmark,
        "asr_level": result.asr_level,
        "energy_breakdown": dict(result.energy_breakdown),
        "stats": {
            "num_cores": stats.num_cores,
            "completion_time": stats.completion_time,
            "core_finish": list(stats.core_finish),
            "counters": dict(stats.counters),
            "energy_counts": dict(stats.energy_counts),
            "latency": dict(stats.latency),
            "miss_status": {
                status.name: count for status, count in stats.miss_status.items()
            },
        },
    }


def decode_result(payload: Mapping) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`encode_result` output."""
    raw = payload["stats"]
    stats = SimStats(
        num_cores=raw["num_cores"],
        counters=Counter(raw["counters"]),
        energy_counts=Counter(raw["energy_counts"]),
        latency=Counter(raw["latency"]),
        miss_status=Counter(
            {MissStatus[name]: count for name, count in raw["miss_status"].items()}
        ),
        core_finish=list(raw["core_finish"]),
        completion_time=raw["completion_time"],
    )
    return RunResult(
        scheme=payload["scheme"],
        benchmark=payload["benchmark"],
        stats=stats,
        energy_breakdown=dict(payload["energy_breakdown"]),
        asr_level=payload["asr_level"],
    )


# ---------------------------------------------------------------------------
# Backend protocol and the stock implementations
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StoreStats:
    """One backend's persisted footprint (``store stats`` CLI payload)."""

    location: str
    entries: int
    total_bytes: int
    max_bytes: int | None = None
    evictions: int = 0

    def describe(self) -> str:
        line = (
            f"{self.entries} entries, {self.total_bytes / 1024 / 1024:.2f} MB"
            f" at {self.location}"
        )
        if self.max_bytes is not None:
            line += f" (bound {self.max_bytes / 1024 / 1024:.2f} MB)"
        if self.evictions:
            line += f", {self.evictions} evicted this process"
        return line


@runtime_checkable
class StoreBackend(Protocol):
    """Persistence layer behind :class:`ResultStore`.

    A backend maps content addresses to JSON-serializable payload dicts.
    ``load`` returns ``None`` for unknown, unreadable or torn entries (a
    miss, never a crash); ``store`` returns whether the payload is
    durably visible to a *fresh* store sharing this backend.
    ``persistent`` distinguishes backends whose hits the accounting
    reports as served "from disk".
    """

    persistent: bool

    def load(self, key: str) -> "Mapping | None": ...

    def store(self, key: str, payload: Mapping) -> bool: ...

    def delete(self, key: str) -> bool: ...

    def keys(self) -> Iterator[str]: ...

    def location(self) -> str: ...

    def stats(self) -> StoreStats: ...


class MemoryBackend:
    """Payloads in a plain dict — no persistence beyond the object."""

    persistent = False

    def __init__(self) -> None:
        self._payloads: dict[str, Mapping] = {}

    def load(self, key: str) -> Mapping | None:
        return self._payloads.get(key)

    def store(self, key: str, payload: Mapping) -> bool:
        self._payloads[key] = payload
        return True

    def delete(self, key: str) -> bool:
        return self._payloads.pop(key, None) is not None

    def keys(self) -> Iterator[str]:
        return iter(tuple(self._payloads))

    def location(self) -> str:
        return "<memory>"

    def stats(self) -> StoreStats:
        return StoreStats(self.location(), len(self._payloads), 0)


class JsonDirBackend:
    """One ``<key>.json`` per entry in a flat directory.

    Writes are atomic (unique temp name + ``os.replace``) so concurrent
    writers — ``--parallel`` shards, distributed-service workers, other
    invocations — can share the directory without ever exposing a torn
    payload.  ``max_bytes`` bounds the directory size: when a write
    overflows it, the least-recently-used entries are evicted (a read
    hit refreshes an entry's mtime, so recency tracks *use*, not just
    creation).
    """

    persistent = True

    def __init__(self, root: "Path | str", max_bytes: int | None = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.evictions = 0
        self._sweep_stale_tmp()

    # -- layout --------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*.json")

    def _tmp_path_for(self, key: str) -> Path:
        """A temp path no other writer (process or store) can collide on."""
        return self._entry_path(key).parent / (
            f"{key}.json.{os.getpid()}.{next(_TMP_SEQUENCE)}.tmp"
        )

    def _sweep_stale_tmp(self) -> None:
        """Drop ``*.tmp`` litter left behind by crashed writers.

        Runs once on backend open; a temp file only survives a write
        that died between creation and ``os.replace``.  Only the store's
        own name shapes are swept (``<key>.json.tmp`` from older
        versions, ``<key>.json.<pid>.<seq>.tmp`` from this one) — the
        directory may hold foreign files — and a pid-stamped file whose
        writer is still alive is left alone (it is an in-flight write of
        a concurrent invocation, not litter).  Best-effort: pids recycle
        (a falsely "alive" stale file waits for the next sweep) and
        unlink errors are ignored.  The sweep also descends one fanout
        level so the shared layout is covered.
        """
        if not self.root.is_dir():
            return
        patterns = ("*.json.tmp", "*.json.*.tmp", "*/*.json.tmp", "*/*.json.*.tmp")
        for pattern in patterns:
            for stale in self.root.glob(pattern):
                parts = stale.name.split(".")
                # <key>.json.<pid>.<seq>.tmp — skip live writers.
                if len(parts) >= 5:
                    try:
                        writer = int(parts[-3])
                    except ValueError:
                        writer = None
                    if writer is not None and _pid_alive(writer):
                        continue
                try:
                    stale.unlink()
                except OSError:
                    pass

    # -- StoreBackend --------------------------------------------------------
    def load(self, key: str) -> Mapping | None:
        path = self._entry_path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A truncated or foreign file is a miss, not a crash; the
            # fresh result overwrites it.
            return None
        if self.max_bytes is not None:
            # Recency tracks *use*: a read hit refreshes the entry so
            # LRU eviction spares the working set.
            try:
                os.utime(path)
            except OSError:
                pass
        return payload

    def store(self, key: str, payload: Mapping) -> bool:
        path = self._entry_path(key)
        tmp = self._tmp_path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            # Persistence is best-effort; the caller's in-memory layer
            # still holds the result for this invocation.
            tmp.unlink(missing_ok=True)
            return False
        self._enforce_size_bound()
        return True

    def delete(self, key: str) -> bool:
        try:
            self._entry_path(key).unlink()
        except OSError:
            return False
        return True

    def keys(self) -> Iterator[str]:
        for path in self._entries():
            yield path.name[: -len(".json")]

    def location(self) -> str:
        return str(self.root)

    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return StoreStats(
            self.location(), entries, total,
            max_bytes=self.max_bytes, evictions=self.evictions,
        )

    # -- maintenance ---------------------------------------------------------
    def purge(self) -> StoreStats:
        """Delete every entry; returns what was removed."""
        removed = 0
        freed = 0
        for path in list(self._entries()):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return StoreStats(self.location(), removed, freed)

    def _enforce_size_bound(self) -> None:
        """Evict least-recently-used entries beyond ``max_bytes``."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first = least recently used
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1


class SharedDirBackend(JsonDirBackend):
    """The filesystem-mounted shared layout for many workers/machines.

    Entries fan out into 256 two-hex-character subdirectories keyed by
    the address prefix (``ab/<address>.json``) — the sharding pattern
    that keeps a store shared over NFS (or any network mount) from
    concentrating every lookup in one directory.  Atomicity and
    read-through semantics are inherited from :class:`JsonDirBackend`;
    distributed-service workers commit results here and brokers (or any
    later invocation) read them through into their in-memory layer.
    """

    FANOUT = 2
    MARKER = ".shared-layout"

    def __init__(self, root: "Path | str", max_bytes: int | None = None) -> None:
        super().__init__(root, max_bytes=max_bytes)
        # Stamp the layout eagerly: a worker autodetecting this root
        # (``open_disk_backend``) must pick the fanout layout even while
        # the store is still empty, or its commits would land where the
        # broker never looks.
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / self.MARKER).touch()
        except OSError:
            pass

    def _entry_path(self, key: str) -> Path:
        prefix = key[: self.FANOUT] if len(key) > self.FANOUT else "_"
        return self.root / prefix / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")


def open_disk_backend(
    root: "Path | str", max_bytes: int | None = None
) -> JsonDirBackend:
    """Open an existing on-disk store, detecting its layout.

    A directory holding the shared-layout marker (or, for pre-marker
    stores, any fanout subdirectory) opens as :class:`SharedDirBackend`;
    anything else opens flat.  Used by distributed workers and the
    ``store stats``/``store purge`` CLI so one ``--store`` flag serves
    both layouts.
    """
    root = Path(root)
    if root.is_dir():
        if (root / SharedDirBackend.MARKER).exists():
            return SharedDirBackend(root, max_bytes=max_bytes)
        for child in root.iterdir():
            if child.is_dir() and len(child.name) == SharedDirBackend.FANOUT:
                try:
                    int(child.name, 16)
                except ValueError:
                    continue
                return SharedDirBackend(root, max_bytes=max_bytes)
    return JsonDirBackend(root, max_bytes=max_bytes)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ResultStore:
    """Content-addressed {fingerprint hash → RunResult} with accounting.

    ``root=None`` keeps the store memory-only (one invocation's
    deduplication); a path adds JSON-on-disk persistence; an explicit
    ``backend`` plugs in any :class:`StoreBackend` (the distributed
    service passes :class:`SharedDirBackend`).  The counters record the
    outcome of every :meth:`get`/:meth:`get_or_run` lookup: ``hits``
    (served from memory or the backend, split out as ``disk_hits``) and
    ``misses`` (the caller had to simulate).
    """

    root: Path | None = None
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    backend: "StoreBackend | None" = None

    def __post_init__(self) -> None:
        if self.backend is None:
            if self.root is not None:
                self.root = Path(self.root)
                self.backend = JsonDirBackend(self.root)
            else:
                self.backend = MemoryBackend()
        else:
            backend_root = getattr(self.backend, "root", None)
            if self.root is None and backend_root is not None:
                self.root = Path(backend_root)
        self._memory: dict[str, object] = {}

    # -- construction --------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ResultStore":
        """Build the store the CLI uses, honoring ``REPRO_RESULT_CACHE``
        (and the ``REPRO_RESULT_CACHE_MAX_MB`` size bound)."""
        value = os.environ.get(CACHE_ENV_VAR)
        if value is not None:
            value = value.strip()
        if not value:
            # Unset, empty or whitespace-only: the default location —
            # an empty value means "no opinion", not "disable", and must
            # never reach Path("") (the current working directory).
            return cls(backend=JsonDirBackend(
                default_cache_dir(), max_bytes=max_bytes_from_env()
            ))
        if value.lower() in _DISABLED_VALUES:
            return cls(None)
        if value.lower().startswith(SHARED_PREFIX):
            shared_root = value[len(SHARED_PREFIX):].strip()
            if shared_root:
                return cls.shared(shared_root, max_bytes=max_bytes_from_env())
        return cls(backend=JsonDirBackend(
            Path(value), max_bytes=max_bytes_from_env()
        ))

    @classmethod
    def memory(cls) -> "ResultStore":
        """A memory-only store (per-invocation deduplication, no disk)."""
        return cls(None)

    @classmethod
    def shared(
        cls, root: "Path | str", max_bytes: int | None = None
    ) -> "ResultStore":
        """A store over the shared (fanout) filesystem backend."""
        return cls(backend=SharedDirBackend(root, max_bytes=max_bytes))

    # -- lookups -------------------------------------------------------------
    def key_for(self, fingerprint: Mapping) -> str:
        return fingerprint_key(fingerprint)

    def get(self, key: str) -> RunResult | None:
        """Look up a content address, counting the hit or miss."""
        return self._lookup(key, decode_result)

    def get_payload(self, key: str) -> Mapping | None:
        """Look up a raw payload dict (e.g. a Figure 1 run-length
        profile), with the same hit/miss accounting as :meth:`get`."""
        return self._lookup(key, dict)

    def _lookup(self, key: str, decode: Callable) -> "object | None":
        obj = self._memory.get(key)
        if obj is not None:
            self.hits += 1
            return obj
        payload = self.backend.load(key) if self.backend is not None else None
        if payload is not None:
            try:
                obj = decode(payload)
            except (KeyError, ValueError, TypeError):
                # Foreign/stale payload under this address: a miss.
                obj = None
        if obj is not None:
            self._memory[key] = obj
            self.hits += 1
            if getattr(self.backend, "persistent", False):
                self.disk_hits += 1
            return obj
        self.misses += 1
        return None

    def fetch(self, key: str) -> RunResult | None:
        """Uncounted read-through (no hit/miss accounting).

        The distributed service's plumbing — brokers collecting results
        a worker committed, workers checking whether a leased point was
        already served — reads through here so the user-facing counters
        keep the sequential path's meaning: one lookup per RunPoint.
        """
        obj = self._memory.get(key)
        if isinstance(obj, RunResult):
            return obj
        payload = self.backend.load(key) if self.backend is not None else None
        if payload is None:
            return None
        try:
            result = decode_result(payload)
        except (KeyError, ValueError, TypeError):
            return None
        self._memory[key] = result
        return result

    def put(self, key: str, result: RunResult) -> bool:
        """Store a result; True when it is durably visible to a fresh
        store sharing this backend (distributed workers gate their
        lease completion on this)."""
        self._memory[key] = result
        return self.backend.store(key, encode_result(result))

    def put_payload(self, key: str, payload: Mapping) -> bool:
        """Store a raw payload dict under a content address."""
        self._memory[key] = dict(payload)
        return self.backend.store(key, payload)

    def get_or_run(self, key: str, run: Callable[[], RunResult]) -> RunResult:
        """Return the stored result or execute ``run`` and store it."""
        result = self.get(key)
        if result is None:
            result = run()
            self.put(key, result)
        return result

    def record_hit(self) -> None:
        """Count a hit served outside :meth:`get` (the parallel executor
        deduplicates same-address points before their result is stored,
        keeping its accounting identical to the sequential path)."""
        self.hits += 1

    # -- accounting ----------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served without simulating (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        """One-line accounting summary (printed by the CLI to stderr)."""
        line = f"{self.hits} hits ({self.disk_hits} from disk), {self.misses} misses"
        if self.lookups:
            line += f", {self.hit_rate():.0%} hit rate"
        return f"result-store: {line}"

    # -- compatibility delegates --------------------------------------------
    # The pre-backend store exposed these paths directly; the concurrent-
    # writer regression tests (and possibly external tooling) still poke
    # them, so they forward to the disk backend.
    def _path_for(self, key: str) -> Path:
        assert isinstance(self.backend, JsonDirBackend)
        return self.backend._entry_path(key)

    def _tmp_path_for(self, key: str) -> Path:
        assert isinstance(self.backend, JsonDirBackend)
        return self.backend._tmp_path_for(key)

    def _sweep_stale_tmp(self) -> None:
        if isinstance(self.backend, JsonDirBackend):
            self.backend._sweep_stale_tmp()
