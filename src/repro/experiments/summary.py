"""The headline claim: RT-3 vs the four baselines (abstract / Section 4.1).

The paper reports that the locality-aware protocol (RT = 3, Limited₃)
lowers energy by 16%, 14%, 13% and 21% and completion time by 4%, 9%,
6% and 13% versus VR, ASR, R-NUCA and S-NUCA respectively, averaged
over the 21 benchmarks.  This module computes the same four-way average
reduction from a comparison matrix.
"""

from __future__ import annotations

from typing import Mapping

from repro.experiments.comparison import (
    average_row,
    comparison_spec,
    fig6_energy,
    fig7_completion,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunResult
from repro.experiments.spec import register_experiment

#: Baselines in the order the paper quotes them.
BASELINES = ("VR", "ASR", "R-NUCA", "S-NUCA")

#: The paper's reported average reductions (fractions).
PAPER_ENERGY_REDUCTION = {"VR": 0.16, "ASR": 0.14, "R-NUCA": 0.13, "S-NUCA": 0.21}
PAPER_TIME_REDUCTION = {"VR": 0.04, "ASR": 0.09, "R-NUCA": 0.06, "S-NUCA": 0.13}


def headline_reductions(
    results: Mapping[str, Mapping[str, RunResult]], locality: str = "RT-3"
) -> tuple[dict[str, float], dict[str, float]]:
    """Average energy/time reduction of the locality scheme vs baselines.

    Follows the paper's averaging convention: per-benchmark values are
    normalized to S-NUCA, averaged arithmetically, and the reduction is
    ``1 - locality_avg / baseline_avg``.
    """
    energy_avg = average_row(fig6_energy(results))
    time_avg = average_row(fig7_completion(results))
    energy_reduction = {
        baseline: 1.0 - energy_avg[locality] / energy_avg[baseline]
        for baseline in BASELINES
    }
    time_reduction = {
        baseline: 1.0 - time_avg[locality] / time_avg[baseline]
        for baseline in BASELINES
    }
    return energy_reduction, time_reduction


def render_summary(
    energy_reduction: Mapping[str, float], time_reduction: Mapping[str, float]
) -> str:
    rows = [
        [
            baseline,
            energy_reduction[baseline],
            PAPER_ENERGY_REDUCTION[baseline],
            time_reduction[baseline],
            PAPER_TIME_REDUCTION[baseline],
        ]
        for baseline in BASELINES
    ]
    return format_table(
        [
            "Baseline",
            "Energy reduction (ours)",
            "Energy (paper)",
            "Time reduction (ours)",
            "Time (paper)",
        ],
        rows,
        title="Headline: locality-aware RT-3 vs baselines (average reductions)",
    )


def _render(results, setup) -> str:
    energy_reduction, time_reduction = headline_reductions(results)
    return render_summary(energy_reduction, time_reduction)


register_experiment(
    "summary", "Headline reductions: RT-3 vs the four baselines", _render
)(lambda setup, benchmarks=None: comparison_spec(setup, benchmarks))
