"""Declarative experiment API: RunPoints, ExperimentSpecs and the registry.

The paper's evaluation is one large grid — (scheme × benchmark ×
machine-knob) matrices feeding every figure — so the experiment layer
describes each figure as data instead of bespoke loops:

* :class:`RunPoint` — one frozen, hashable simulation coordinate:
  scheme label, benchmark, machine-config overrides, scheme keyword
  arguments, and optional per-point scale/seed/kernel overrides.
* :class:`ExperimentSpec` — a named grid of RunPoints plus presentation
  metadata (title, normalization baseline).  Every figure module builds
  one (``comparison_spec``, ``fig9_spec``, …).
* :func:`execute_spec` — the single executor.  It resolves each point
  against an :class:`~repro.experiments.runner.ExperimentSetup`, checks
  the content-addressed :class:`~repro.experiments.store.ResultStore`,
  simulates only the misses, groups points by benchmark so decoded trace
  views are released exactly once per benchmark (figure modules can no
  longer leak them), and returns a queryable
  :class:`~repro.experiments.results.ResultSet`.  ``max_workers > 1``
  shards the missed points across a process pool
  (:func:`repro.experiments.parallel.execute_spec_parallel`).
* the **registry** — ``@register_experiment`` / ``@register_report``
  bind CLI command names to spec builders (or plain report callables);
  ``python -m repro.experiments`` generates its subcommands and
  ``--list`` output from it.

The simulation kernel is *not* part of a point's content address: all
kernels are differentially verified bit-identical, so it only selects
throughput, never results.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Mapping, Sequence

from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup, RunResult, run_one
from repro.experiments.store import ResultStore
from repro.workloads.benchmarks import BENCHMARKS, BENCHMARK_ORDER
from repro.workloads.imports import (
    IMPORTED_PREFIX,
    imported_trace_path,
    is_imported_benchmark,
    trace_content_hash,
)


def _freeze(pairs) -> tuple:
    """Canonicalize a mapping / pair-iterable into a sorted tuple of pairs."""
    if isinstance(pairs, Mapping):
        items = pairs.items()
    else:
        items = tuple(pairs)
    return tuple(sorted((str(key), value) for key, value in items))


@dataclasses.dataclass(frozen=True)
class RunPoint:
    """One simulation coordinate: everything that determines its result.

    ``config_overrides`` are applied to the setup's machine configuration
    (``MachineConfig.with_overrides``); ``scheme_kwargs`` reach the
    scheme constructor.  Both accept dicts or pair-iterables and are
    canonicalized to sorted tuples, so equal points hash equally
    regardless of spelling order.  ``scale``/``seed``/``kernel`` of
    ``None`` inherit the executing setup's values.

    ``label`` is presentation-only (the column key in tables — e.g.
    ``"k=3"``, ``"C-4"``, an RT integer); it defaults to the scheme
    label and never enters the content address.
    """

    scheme: str
    benchmark: str
    config_overrides: tuple = ()
    scheme_kwargs: tuple = ()
    label: "str | int | None" = None
    scale: "float | None" = None
    seed: "int | None" = None
    kernel: "str | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "config_overrides", _freeze(self.config_overrides))
        object.__setattr__(self, "scheme_kwargs", _freeze(self.scheme_kwargs))

    @property
    def col_label(self) -> "str | int":
        return self.label if self.label is not None else self.scheme

    def effective_config(self, base):
        """The setup's machine with this point's overrides applied."""
        if not self.config_overrides:
            return base
        return base.with_overrides(**dict(self.config_overrides))

    def fingerprint(self, setup: ExperimentSetup) -> dict:
        """The content-address payload: resolved (scheme, benchmark,
        effective machine config, scheme kwargs, scale, seed).

        The kernel is excluded on purpose — every kernel is verified
        bit-identical, so it cannot change the result.  An ASR point
        without an explicit replication level triggers the level
        *search*, so the setup's search space enters its address (a
        different ``asr_levels`` must not reuse the old best-of-search).
        """
        payload = {
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "config": dataclasses.asdict(self.effective_config(setup.config)),
            "scheme_kwargs": [[key, value] for key, value in self.scheme_kwargs],
            "scale": self.scale if self.scale is not None else setup.scale,
            "seed": self.seed if self.seed is not None else setup.seed,
        }
        if is_imported_benchmark(self.benchmark):
            # Imported traces are addressed by file *content*, not path:
            # moving the .npz keeps its stored results valid, rewriting
            # it invalidates them.  Scale/seed shape only synthetic
            # generation, so they are pinned out of the address.
            path = imported_trace_path(self.benchmark)
            payload["benchmark"] = (
                f"{IMPORTED_PREFIX}sha256:{trace_content_hash(path)}"
            )
            payload["scale"] = None
            payload["seed"] = None
        if self.scheme == "ASR" and "replication_level" not in dict(self.scheme_kwargs):
            payload["asr_levels"] = list(setup.asr_levels)
        return payload


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A named grid of RunPoints plus presentation metadata."""

    name: str
    points: tuple
    title: str = ""
    #: Column label tables normalize to (None: no canonical baseline).
    baseline: "str | int | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))

    def benchmarks(self) -> tuple:
        seen: dict = {}
        for point in self.points:
            seen.setdefault(point.benchmark, None)
        return tuple(seen)

    def labels(self) -> tuple:
        seen: dict = {}
        for point in self.points:
            seen.setdefault(point.col_label, None)
        return tuple(seen)


def validate_benchmarks(names: Iterable[str]) -> list[str]:
    """Validate benchmark names up front, with the valid list on error.

    Besides the catalog names, ``imported:<path>`` names are accepted
    when the ``.npz`` trace archive behind them exists (see
    :mod:`repro.workloads.imports` and ``python -m repro trace import``).
    """
    names = list(names)
    unknown = []
    for name in names:
        if is_imported_benchmark(name):
            path = imported_trace_path(name)  # raises on an empty path
            if not path.is_file():
                raise ValueError(
                    f"imported trace archive {str(path)!r} does not exist "
                    f"(benchmark {name!r}); create it with "
                    f"'python -m repro trace import'"
                )
        elif name not in BENCHMARKS:
            unknown.append(name)
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {', '.join(map(repr, unknown))}; "
            f"valid names: {', '.join(BENCHMARK_ORDER)}, "
            f"or {IMPORTED_PREFIX}<path-to-npz>"
        )
    return names


def resolve_benchmarks(
    benchmarks: "Iterable[str] | None", default: Sequence[str]
) -> list[str]:
    """The validated benchmark list, or ``default`` when none was given."""
    if benchmarks is None:
        return list(default)
    return validate_benchmarks(benchmarks)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute_spec(
    spec: ExperimentSpec,
    setup: ExperimentSetup,
    store: "ResultStore | None" = None,
    max_workers: int = 0,
    executor: "Callable | None" = None,
) -> ResultSet:
    """Run every point of ``spec`` (reusing stored results) → ResultSet.

    With no ``store``, a fresh memory-only store still deduplicates
    identical points within the spec.  ``max_workers > 1`` shards the
    missed points across worker processes; results are identical to the
    sequential path (the kernels are deterministic and every point is
    independent).  An explicit ``executor`` — a ``(spec, setup, store)
    -> ResultSet`` callable — replaces the execution substrate entirely;
    the distributed experiment service plugs in through it
    (:func:`repro.experiments.service.make_distributed_executor`), which
    is how ``--distributed N`` reaches every registered grid command.
    """
    if store is None:
        store = ResultStore.memory()
    if executor is not None:
        return executor(spec, setup, store)
    if max_workers and max_workers > 1:
        from repro.experiments.parallel import execute_spec_parallel

        return execute_spec_parallel(spec, setup, store, max_workers=max_workers)

    setups: dict = {}
    results: dict = {}
    for benchmark, points in _group_by_benchmark(spec.points):
        group_setups = []
        for point in points:
            point_setup = _setup_for(point, setup, setups)
            if point_setup not in group_setups:
                group_setups.append(point_setup)
            key = store.key_for(point.fingerprint(setup))
            results[point] = store.get_or_run(
                key, lambda p=point, s=point_setup: _run_point(p, s)
            )
        # Centralized decoded-trace release: exactly once per benchmark,
        # after its whole batch — individual figure modules no longer
        # call (or forget to call) release_decoded themselves.
        for point_setup in group_setups:
            point_setup.release_decoded(benchmark)
    return ResultSet.from_spec(spec, results)


def _group_by_benchmark(points: Sequence[RunPoint]):
    """Points grouped by benchmark, in first-appearance order.

    Grouping keeps each benchmark's trace (and its decoded hot-loop
    views) live for exactly one contiguous batch of runs.
    """
    groups: dict = {}
    for point in points:
        groups.setdefault(point.benchmark, []).append(point)
    return groups.items()


def _setup_for(point: RunPoint, setup: ExperimentSetup, cache: dict) -> ExperimentSetup:
    """The setup a point executes under (per-point scale/seed overrides
    get a derived setup so trace caching stays correct)."""
    scale = point.scale if point.scale is not None else setup.scale
    seed = point.seed if point.seed is not None else setup.seed
    if scale == setup.scale and seed == setup.seed:
        return setup
    key = (scale, seed)
    derived = cache.get(key)
    if derived is None:
        derived = ExperimentSetup(
            setup.config, scale=scale, seed=seed,
            asr_levels=setup.asr_levels, kernel=setup.kernel,
        )
        cache[key] = derived
    return derived


def _run_point(point: RunPoint, setup: ExperimentSetup) -> RunResult:
    config = point.effective_config(setup.config)
    return run_one(
        setup, point.scheme, point.benchmark,
        config=config, kernel=point.kernel,
        **dict(point.scheme_kwargs),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: A spec builder: (setup, benchmarks-or-None) -> ExperimentSpec.
SpecBuilder = Callable[[ExperimentSetup, "Sequence[str] | None"], ExperimentSpec]


@dataclasses.dataclass(frozen=True)
class ExperimentCommand:
    """One registered CLI command.

    ``build`` is the spec builder for grid commands (None for plain
    reports such as ``table1``); ``run`` executes the command end to end
    and returns the rendered text.
    """

    name: str
    description: str
    run: Callable[..., str]
    build: "SpecBuilder | None" = None

    @property
    def is_grid(self) -> bool:
        return self.build is not None


_REGISTRY: dict[str, ExperimentCommand] = {}


def register_experiment(
    name: str,
    description: str,
    render: Callable[[ResultSet, ExperimentSetup], str],
) -> Callable[[SpecBuilder], SpecBuilder]:
    """Register a grid experiment: a spec builder plus its renderer.

    The decorated builder keeps working as a plain function; the CLI
    gains a ``name`` subcommand that builds the spec, executes it
    against the shared ResultStore and prints ``render``'s output.
    """

    def decorate(build: SpecBuilder) -> SpecBuilder:
        def run(
            setup: ExperimentSetup,
            benchmarks: "Sequence[str] | None" = None,
            store: "ResultStore | None" = None,
            max_workers: int = 0,
            executor: "Callable | None" = None,
        ) -> str:
            spec = build(setup, benchmarks)
            results = execute_spec(
                spec, setup, store=store, max_workers=max_workers,
                executor=executor,
            )
            return render(results, setup)

        _register(ExperimentCommand(name, description, run, build))
        return build

    return decorate


def register_report(
    name: str, description: str
) -> Callable[[Callable], Callable]:
    """Register a non-grid command: ``fn(setup, benchmarks) -> str``.

    A report whose signature also accepts a ``store`` keyword receives
    the shared :class:`ResultStore` — that's how fig1 caches its
    run-length profiles alongside the simulation results.
    """

    def decorate(fn: Callable) -> Callable:
        import inspect

        takes_store = "store" in inspect.signature(fn).parameters

        def run(
            setup: ExperimentSetup,
            benchmarks: "Sequence[str] | None" = None,
            store: "ResultStore | None" = None,
            max_workers: int = 0,
            executor: "Callable | None" = None,
        ) -> str:
            if takes_store:
                return fn(setup, benchmarks, store=store)
            return fn(setup, benchmarks)

        _register(ExperimentCommand(name, description, run, None))
        return fn

    return decorate


def _register(command: ExperimentCommand) -> None:
    if command.name in _REGISTRY:
        raise ValueError(f"experiment command {command.name!r} already registered")
    _REGISTRY[command.name] = command


def command_names() -> tuple[str, ...]:
    """Registered command names, in registration order."""
    return tuple(_REGISTRY)


def get_command(name: str) -> ExperimentCommand:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment command {name!r}; "
            f"registered: {', '.join(_REGISTRY)}"
        ) from None


def registered_commands() -> tuple[ExperimentCommand, ...]:
    return tuple(_REGISTRY.values())
