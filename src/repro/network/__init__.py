"""On-chip interconnect: mesh topology, XY routing and contention."""

from repro.network.mesh import Mesh
from repro.network.topology import MeshTopology, cluster_members, cluster_of

__all__ = ["Mesh", "MeshTopology", "cluster_members", "cluster_of"]
