"""2-D mesh topology and XY (dimension-ordered) routing.

The machine is an N×N mesh of tiles (Figure 2).  Core ``c`` sits at
coordinates ``(x, y) = (c % side, c // side)``.  XY routing travels the X
dimension first, then Y, which makes routes deterministic and deadlock
free — and lets us enumerate the exact sequence of directed links a
message occupies for the contention model.
"""

from __future__ import annotations

from typing import Iterator


class MeshTopology:
    """Coordinate math for an N×N mesh with XY routing."""

    def __init__(self, num_cores: int) -> None:
        side = int(num_cores ** 0.5)
        if side * side != num_cores:
            raise ValueError(f"num_cores {num_cores} is not a perfect square")
        self.num_cores = num_cores
        self.side = side

    def coordinates(self, core: int) -> tuple[int, int]:
        """``(x, y)`` position of a core on the mesh."""
        self._check(core)
        return core % self.side, core // self.side

    def core_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(f"({x}, {y}) outside {self.side}x{self.side} mesh")
        return y * self.side + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two cores."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> Iterator[tuple[int, int]]:
        """Directed links ``(from_core, to_core)`` along the XY path."""
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        current = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = self.core_at(x, y)
            yield current, nxt
            current = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = self.core_at(x, y)
            yield current, nxt
            current = nxt

    def average_distance(self) -> float:
        """Mean hop count over all (src, dst) pairs — useful for sizing."""
        total = 0
        for src in range(self.num_cores):
            for dst in range(self.num_cores):
                total += self.hops(src, dst)
        return total / (self.num_cores ** 2)

    def _check(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} outside mesh of {self.num_cores}")


def cluster_of(core: int, cluster_size: int, side: int) -> int:
    """Cluster index of a core for cluster-level replication (Section 2.3.4).

    Clusters are square sub-meshes (cluster_size is a perfect square): a
    64-core mesh with cluster_size 4 has 16 2×2 clusters.
    """
    cside = int(cluster_size ** 0.5)
    if cside * cside != cluster_size:
        raise ValueError("cluster_size must be a perfect square")
    x, y = core % side, core // side
    clusters_per_row = side // cside
    return (y // cside) * clusters_per_row + (x // cside)


def cluster_members(cluster: int, cluster_size: int, side: int) -> list[int]:
    """Core ids belonging to a cluster, in row-major order."""
    cside = int(cluster_size ** 0.5)
    clusters_per_row = side // cside
    base_x = (cluster % clusters_per_row) * cside
    base_y = (cluster // clusters_per_row) * cside
    return [
        (base_y + dy) * side + (base_x + dx)
        for dy in range(cside)
        for dx in range(cside)
    ]
