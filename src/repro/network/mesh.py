"""Electrical 2-D mesh interconnect with contention modelling.

Latency model (Table 1): each hop costs ``hop_latency`` cycles (1 router +
1 link); the message tail arrives ``flits - 1`` cycles after the head.

Contention model: per-link **windowed utilization queueing** (the same
family of analytical contention model the Graphite simulator uses).
Each directed link counts the flits it carried in the current epoch;
a message crossing a link at utilization ``u`` pays an M/D/1-style
queueing delay of ``u / (1 - u)`` service times.  This is deterministic,
O(1) memory per link, and — unlike naive busy-until reservations — is
stable when transactions carry timestamps slightly ahead of the global
simulation frontier (a busy-until model lets one far-future reservation
block frontier traffic on an idle link, producing runaway feedback).

Energy accounting counts router traversals and link traversals per flit;
the energy model charges them separately (Figure 6 splits "Network
Router" and "Network Link").
"""

from __future__ import annotations

from repro.common.params import MachineConfig
from repro.network.topology import MeshTopology


class Mesh:
    """The on-chip network: latency, contention and flit accounting."""

    #: Length of a utilization-accounting window, in cycles.
    CONTENTION_EPOCH = 512
    #: Utilization is clamped below 1 so the delay formula stays finite;
    #: at the cap a message pays ~19 service times of queueing.
    MAX_UTILIZATION = 0.95

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.topology = MeshTopology(config.num_cores)
        #: XY routes are static, so the directed-link sequence of every
        #: (src, dst) pair is computed once and reused — ``send`` sits on
        #: the miss path of every simulation kernel and re-walking the
        #: coordinate math per message dominated its cost.
        self._route_cache: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
        self._hop_latency = config.hop_latency
        #: Per directed link: (epoch index, flits carried in that epoch).
        self._link_load: dict[tuple[int, int], tuple[int, int]] = {}
        # -- counters consumed by the energy model --------------------------
        self.router_flit_traversals = 0
        self.link_flit_traversals = 0
        self.messages_sent = 0
        self.total_flits = 0
        self.total_queueing_delay = 0.0

    def control_flits(self) -> int:
        """Flits in an address-only message (invalidation, ack, request)."""
        return self.config.header_flits

    def data_flits(self) -> int:
        """Flits in a message carrying a full cache line."""
        return self.config.header_flits + self.config.cache_line_flits

    def send(self, src: int, dst: int, flits: int, depart: float) -> float:
        """Send a message; returns the arrival time of the tail flit.

        Accumulates per-link load for the contention model and the
        router/link energy event counts.  ``src == dst`` is a local
        operation: free and instantaneous.
        """
        self.messages_sent += 1
        self.total_flits += flits
        if src == dst:
            return depart
        route = self._route_cache.get((src, dst))
        if route is None:
            route = tuple(self.topology.route(src, dst))
            self._route_cache[(src, dst)] = route
        now = depart
        hop_latency = self._hop_latency
        link_delay = self._link_delay
        for link in route:
            now += link_delay(link, flits, now) + hop_latency
        hops = len(route)
        self.router_flit_traversals += flits * (hops + 1)
        self.link_flit_traversals += flits * hops
        # Tail flit trails the head by (flits - 1) cycles of serialization.
        return now + (flits - 1)

    def _link_delay(self, link: tuple[int, int], flits: int, now: float) -> float:
        """Queueing delay on one link, updating its window load."""
        epoch = int(now) // self.CONTENTION_EPOCH
        stored = self._link_load.get(link)
        if stored is None or epoch > stored[0]:
            prior_load = 0
            self._link_load[link] = (epoch, flits)
        else:
            # Same epoch (or a slightly stale timestamp): accumulate.
            prior_load = stored[1]
            self._link_load[link] = (stored[0], prior_load + flits)
        utilization = min(prior_load / self.CONTENTION_EPOCH, self.MAX_UTILIZATION)
        if utilization <= 0.0:
            return 0.0
        delay = flits * utilization / (1.0 - utilization)
        self.total_queueing_delay += delay
        return delay

    def round_trip(
        self, src: int, dst: int, request_flits: int, response_flits: int, depart: float
    ) -> float:
        """Request/response pair; returns the response arrival time."""
        arrive = self.send(src, dst, request_flits, depart)
        return self.send(dst, src, response_flits, arrive)

    def unloaded_latency(self, src: int, dst: int, flits: int) -> int:
        """Latency with zero contention (for analytical checks)."""
        if src == dst:
            return 0
        hops = self.topology.hops(src, dst)
        return hops * self.config.hop_latency + (flits - 1)
