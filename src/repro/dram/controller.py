"""Off-chip DRAM: 8 memory controllers with bandwidth queueing (Table 1).

Each controller serves one cache line at a time at its provisioned
bandwidth (5 GB/s → ~13 cycles of occupancy per 64-byte line at 1 GHz);
requests arriving while the controller is busy queue up, which produces
the off-chip queueing delays the paper includes in the
"LLC home to off-chip memory" latency component (Section 3.4).
"""

from __future__ import annotations

from repro.common.params import MachineConfig


class MemoryController:
    """One DRAM channel attached to a mesh tile.

    Bandwidth queueing uses the same windowed-utilization model as the
    mesh links (see :class:`repro.network.mesh.Mesh`): the controller
    counts the service cycles demanded in the current epoch and charges
    an M/D/1-style delay — stable against the slightly out-of-order
    timestamps an atomic-transaction simulator produces.
    """

    __slots__ = ("core_id", "latency", "service", "accesses", "_window")

    #: Length of a utilization-accounting window, in cycles.
    CONTENTION_EPOCH = 1024
    MAX_UTILIZATION = 0.95

    def __init__(self, core_id: int, latency_cycles: int, service_cycles: int) -> None:
        self.core_id = core_id
        self.latency = latency_cycles
        self.service = service_cycles
        self.accesses = 0
        #: (epoch index, service cycles demanded in that epoch)
        self._window: tuple[int, int] = (0, 0)

    def access(self, now: float) -> tuple[float, float]:
        """Issue one line transfer; returns ``(queue_wait, total_latency)``."""
        self.accesses += 1
        epoch = int(now) // self.CONTENTION_EPOCH
        stored_epoch, demand = self._window
        if epoch > stored_epoch:
            demand = 0
            self._window = (epoch, self.service)
        else:
            self._window = (stored_epoch, demand + self.service)
        utilization = min(demand / self.CONTENTION_EPOCH, self.MAX_UTILIZATION)
        wait = self.service * utilization / (1.0 - utilization) if utilization > 0 else 0.0
        return wait, wait + self.latency


def controller_tiles(num_cores: int, num_controllers: int) -> list[int]:
    """Tiles hosting memory controllers, spread across the mesh.

    A naive ``index * (num_cores / num_controllers)`` places every
    controller in mesh column 0 (all multiples of the mesh side), turning
    that column into a bandwidth hot-spot.  Staggering alternate
    controllers by half the spacing distributes them over the die, the
    way real tiled parts place their memory PHYs on opposite edges.
    """
    spacing = num_cores // num_controllers
    tiles = []
    for index in range(num_controllers):
        offset = (spacing // 2) if index % 2 else 0
        tiles.append((index * spacing + offset) % num_cores)
    return tiles


class DramSystem:
    """The set of memory controllers, with address interleaving.

    Controllers are attached to tiles spread across the mesh (the paper
    notes "some cores have a connection to a memory controller").  Lines
    are interleaved across controllers by hashed address.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.controllers = [
            MemoryController(
                core_id=core,
                latency_cycles=config.dram_latency_cycles,
                service_cycles=config.dram_service_cycles,
            )
            for core in controller_tiles(config.num_cores, config.num_mem_controllers)
        ]
        self.reads = 0
        self.writes = 0

    def controller_for(self, line_addr: int) -> MemoryController:
        # Hash the interleave so it does not correlate with the home-slice
        # bits (line % num_cores) or with contiguous regions.
        hashed = line_addr ^ (line_addr >> 6)
        return self.controllers[hashed % len(self.controllers)]

    def read(self, line_addr: int, now: float) -> tuple[MemoryController, float, float]:
        """Fetch a line; returns ``(controller, queue_wait, total_latency)``."""
        self.reads += 1
        controller = self.controller_for(line_addr)
        wait, latency = controller.access(now)
        return controller, wait, latency

    def write(self, line_addr: int, now: float) -> MemoryController:
        """Write back a dirty line (off the critical path; occupies bandwidth)."""
        self.writes += 1
        controller = self.controller_for(line_addr)
        controller.access(now)
        return controller

    def total_accesses(self) -> int:
        return self.reads + self.writes
