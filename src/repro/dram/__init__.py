"""Off-chip memory subsystem."""

from repro.dram.controller import DramSystem, MemoryController

__all__ = ["DramSystem", "MemoryController"]
