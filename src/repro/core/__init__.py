"""The paper's primary contribution: locality classification for LLC replication."""

from repro.core.classifier import (
    ClassifierState,
    CompleteClassifier,
    CompleteState,
    LimitedClassifier,
    LimitedState,
    LocalityClassifier,
    TrackedCore,
    make_classifier,
)

__all__ = [
    "ClassifierState",
    "CompleteClassifier",
    "CompleteState",
    "LimitedClassifier",
    "LimitedState",
    "LocalityClassifier",
    "TrackedCore",
    "make_classifier",
]
