"""Locality classifiers — the heart of the paper (Sections 2.2.1–2.2.5).

Every LLC home directory entry carries per-core *replication mode* bits
and *home reuse* saturating counters (Figure 4).  The classifier drives
the Figure 3 state machine:

* every core starts as a **non-replica** sharer of every line;
* a read serviced at the home increments the requester's home-reuse
  counter; reaching the Replication Threshold (RT) **promotes** the core
  to replica mode (future fills create a local LLC replica);
* on an **invalidation**, the core keeps replica status iff
  ``replica_reuse + home_reuse >= RT`` (total reuse between writes);
* on a replica **eviction**, the test is ``replica_reuse >= RT`` alone
  (the replica counter captured all local reuse);
* the write path resets the home-reuse counters of non-replica sharers
  other than the writer, and gives the writer a migratory-friendly rule:
  increment if it was the only sharer, else reset to 1 (Section 2.2.2).

Two implementations:

* :class:`CompleteClassifier` — mode + counter for all ``n`` cores
  (30% LLC storage overhead at 64 cores, Section 2.4.1);
* :class:`LimitedClassifier` — the Limited_k optimization (Section 2.2.5):
  track ``k`` cores; replace only *inactive* tracked sharers; classify
  untracked cores by majority vote of tracked modes (ties conservative:
  non-replica).
"""

from __future__ import annotations

import abc
import dataclasses

from repro.common.types import ReplicationMode


class ClassifierState(abc.ABC):
    """Per-directory-entry classifier state."""

    @abc.abstractmethod
    def mode(self, core: int) -> ReplicationMode:
        """Current replication mode of ``core`` for this line."""

    @abc.abstractmethod
    def home_reuse(self, core: int) -> int:
        """Current home-reuse counter value of ``core`` (0 if untracked)."""


class LocalityClassifier(abc.ABC):
    """Classifier policy: creates and updates per-entry state.

    ``rt`` is the Replication Threshold; ``counter_max`` the saturating
    limit of the reuse counters (3 for the paper's 2-bit counters — note
    RT=3 is reachable exactly at saturation, and the RT-8 sweep point uses
    wider counters).
    """

    def __init__(self, num_cores: int, rt: int, counter_max: int) -> None:
        if counter_max < rt:
            # Counters must be able to reach RT or promotion never fires.
            counter_max = rt
        self.num_cores = num_cores
        self.rt = rt
        self.counter_max = counter_max

    # -- state factory ------------------------------------------------------------
    @abc.abstractmethod
    def new_state(self) -> ClassifierState:
        """Fresh classifier state for a newly allocated directory entry."""

    # -- protocol events ------------------------------------------------------------
    @abc.abstractmethod
    def on_home_read(self, state: ClassifierState, core: int) -> bool:
        """A read by ``core`` was serviced at the home location.

        Returns True when a replica should be created in the requester's
        LLC slice (mode already REPLICA, or promotion just happened).
        """

    @abc.abstractmethod
    def on_home_write(
        self, state: ClassifierState, writer: int, was_only_sharer: bool
    ) -> bool:
        """A write by ``writer`` is being serviced at the home.

        Applies the Section 2.2.2 writer rule and returns True when the
        (possibly just-promoted) writer should receive an M-state replica
        — this is what enables migratory-data replication.
        """

    @abc.abstractmethod
    def on_write_reset_others(
        self, state: ClassifierState, writer: int, sharers: "frozenset[int] | set[int]"
    ) -> None:
        """After a write: reset home-reuse of all non-replica *sharers*
        except the writer (they have not shown enough reuse — Section 2.2.2)."""

    @abc.abstractmethod
    def on_invalidation(self, state: ClassifierState, core: int, replica_reuse: int) -> None:
        """``core``'s replica was invalidated; keep replica status iff
        ``replica_reuse + home_reuse >= RT``, then zero the home counter."""

    @abc.abstractmethod
    def on_replica_eviction(self, state: ClassifierState, core: int, replica_reuse: int) -> None:
        """``core``'s replica was evicted (capacity); keep replica status
        iff ``replica_reuse >= RT``, then zero the home counter."""

    def mark_inactive_nonreplicas(self, state: ClassifierState, writer: int) -> None:
        """Limited_k hook: non-replica cores become inactive on a write by
        another core (eligible for entry replacement)."""


# ---------------------------------------------------------------------------
# Complete classifier
# ---------------------------------------------------------------------------


class CompleteState(ClassifierState):
    """Mode bit + home-reuse counter per core (Figure 4)."""

    __slots__ = ("modes", "counters")

    def __init__(self, num_cores: int) -> None:
        self.modes = [ReplicationMode.NON_REPLICA] * num_cores
        self.counters = [0] * num_cores

    def mode(self, core: int) -> ReplicationMode:
        return self.modes[core]

    def home_reuse(self, core: int) -> int:
        return self.counters[core]


class CompleteClassifier(LocalityClassifier):
    """Tracks locality for every core in the machine."""

    def new_state(self) -> CompleteState:
        return CompleteState(self.num_cores)

    def on_home_read(self, state: CompleteState, core: int) -> bool:
        if state.modes[core] == ReplicationMode.REPLICA:
            return True
        state.counters[core] = min(self.counter_max, state.counters[core] + 1)
        if state.counters[core] >= self.rt:
            state.modes[core] = ReplicationMode.REPLICA
            return True
        return False

    def on_home_write(self, state: CompleteState, writer: int, was_only_sharer: bool) -> bool:
        if state.modes[writer] == ReplicationMode.REPLICA:
            return True
        if was_only_sharer:
            state.counters[writer] = min(self.counter_max, state.counters[writer] + 1)
        else:
            state.counters[writer] = 1
        if state.counters[writer] >= self.rt:
            state.modes[writer] = ReplicationMode.REPLICA
            return True
        return False

    def on_write_reset_others(
        self, state: CompleteState, writer: int, sharers
    ) -> None:
        for core in sharers:
            if core != writer and state.modes[core] == ReplicationMode.NON_REPLICA:
                state.counters[core] = 0

    def on_invalidation(self, state: CompleteState, core: int, replica_reuse: int) -> None:
        total = replica_reuse + state.counters[core]
        if total < self.rt:
            state.modes[core] = ReplicationMode.NON_REPLICA
        state.counters[core] = 0

    def on_replica_eviction(self, state: CompleteState, core: int, replica_reuse: int) -> None:
        if replica_reuse < self.rt:
            state.modes[core] = ReplicationMode.NON_REPLICA
        state.counters[core] = 0


# ---------------------------------------------------------------------------
# Limited_k classifier
# ---------------------------------------------------------------------------


@dataclasses.dataclass(slots=True)
class TrackedCore:
    """One slot of the limited locality list (Figure 5)."""

    core: int
    mode: ReplicationMode = ReplicationMode.NON_REPLICA
    reuse: int = 0
    #: An inactive sharer may relinquish its slot (Section 2.2.5): replica
    #: cores go inactive on LLC invalidation/eviction; non-replica cores
    #: go inactive on a write by another core.
    active: bool = True


class LimitedState(ClassifierState):
    """Locality list tracking at most ``k`` cores."""

    __slots__ = ("slots", "k")

    def __init__(self, k: int) -> None:
        self.k = k
        self.slots: list[TrackedCore] = []

    def find(self, core: int) -> TrackedCore | None:
        for slot in self.slots:
            if slot.core == core:
                return slot
        return None

    def majority_mode(self) -> ReplicationMode:
        """Majority vote of tracked modes; ties and empty list → non-replica."""
        replicas = sum(1 for slot in self.slots if slot.mode == ReplicationMode.REPLICA)
        non_replicas = len(self.slots) - replicas
        if replicas > non_replicas:
            return ReplicationMode.REPLICA
        return ReplicationMode.NON_REPLICA

    def mode(self, core: int) -> ReplicationMode:
        slot = self.find(core)
        if slot is not None:
            return slot.mode
        return self.majority_mode()

    def home_reuse(self, core: int) -> int:
        slot = self.find(core)
        return slot.reuse if slot is not None else 0


class LimitedClassifier(LocalityClassifier):
    """The Limited_k classifier (Section 2.2.5).

    Storage: k × (core-id + mode bit + reuse counter) per entry; with
    k = 3 this is 4.5% over the ACKwise_4 baseline at 64 cores
    (Section 2.4.1 — verified by ``repro.experiments.storage``).
    """

    def __init__(self, num_cores: int, rt: int, counter_max: int, k: int = 3) -> None:
        super().__init__(num_cores, rt, counter_max)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def new_state(self) -> LimitedState:
        return LimitedState(self.k)

    # -- slot management ------------------------------------------------------
    def _acquire_slot(self, state: LimitedState, core: int) -> TrackedCore | None:
        """Find/allocate a tracking slot for ``core`` (None → untracked).

        Order per the paper: already tracked → free entry → replace an
        inactive sharer (seeded by majority vote) → give up (majority vote
        handles the request statelessly).
        """
        slot = state.find(core)
        if slot is not None:
            slot.active = True
            return slot
        if len(state.slots) < state.k:
            slot = TrackedCore(core)
            state.slots.append(slot)
            return slot
        for index, candidate in enumerate(state.slots):
            if not candidate.active:
                seeded_mode = state.majority_mode()
                slot = TrackedCore(core, mode=seeded_mode)
                state.slots[index] = slot
                return slot
        return None

    # -- protocol events --------------------------------------------------------
    def on_home_read(self, state: LimitedState, core: int) -> bool:
        slot = self._acquire_slot(state, core)
        if slot is None:
            return state.majority_mode() == ReplicationMode.REPLICA
        if slot.mode == ReplicationMode.REPLICA:
            return True
        slot.reuse = min(self.counter_max, slot.reuse + 1)
        if slot.reuse >= self.rt:
            slot.mode = ReplicationMode.REPLICA
            return True
        return False

    def on_home_write(self, state: LimitedState, writer: int, was_only_sharer: bool) -> bool:
        slot = self._acquire_slot(state, writer)
        if slot is None:
            return state.majority_mode() == ReplicationMode.REPLICA
        if slot.mode == ReplicationMode.REPLICA:
            return True
        if was_only_sharer:
            slot.reuse = min(self.counter_max, slot.reuse + 1)
        else:
            slot.reuse = 1
        if slot.reuse >= self.rt:
            slot.mode = ReplicationMode.REPLICA
            return True
        return False

    def on_write_reset_others(
        self, state: LimitedState, writer: int, sharers
    ) -> None:
        for slot in state.slots:
            if (
                slot.core != writer
                and slot.core in sharers
                and slot.mode == ReplicationMode.NON_REPLICA
            ):
                slot.reuse = 0

    def mark_inactive_nonreplicas(self, state: LimitedState, writer: int) -> None:
        for slot in state.slots:
            if slot.core != writer and slot.mode == ReplicationMode.NON_REPLICA:
                slot.active = False

    def on_invalidation(self, state: LimitedState, core: int, replica_reuse: int) -> None:
        slot = state.find(core)
        if slot is None:
            return
        total = replica_reuse + slot.reuse
        if total < self.rt:
            slot.mode = ReplicationMode.NON_REPLICA
        slot.reuse = 0
        slot.active = False  # replica core goes inactive on invalidation

    def on_replica_eviction(self, state: LimitedState, core: int, replica_reuse: int) -> None:
        slot = state.find(core)
        if slot is None:
            return
        if replica_reuse < self.rt:
            slot.mode = ReplicationMode.NON_REPLICA
        slot.reuse = 0
        slot.active = False  # replica core goes inactive on eviction


def make_classifier(
    num_cores: int, rt: int, counter_max: int, k: int | None
) -> LocalityClassifier:
    """Factory: Limited_k when ``k`` is given, else the Complete classifier.

    ``k >= num_cores`` degenerates to Complete semantics (the paper's
    k = 64 point in Figure 9 *is* the Complete classifier).
    """
    if k is None or k >= num_cores:
        return CompleteClassifier(num_cores, rt, counter_max)
    return LimitedClassifier(num_cores, rt, counter_max, k)
