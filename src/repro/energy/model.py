"""Per-event energy accounting (DSENT / McPAT-CACTI substitute).

The paper obtains dynamic energy from DSENT (network) and McPAT/CACTI
(caches, directory, DRAM) at the 11 nm node and reports *normalized*
stacked breakdowns (Figure 6) with seven components: L1-I, L1-D,
L2 (LLC), Directory, Network Router, Network Link and DRAM.

We substitute representative per-event energies with the relations the
paper relies on preserved:

* an LLC data write costs 1.2× an LLC data read (Section 4.1's analysis
  of Victim Replication's write-on-every-hit penalty);
* DRAM accesses are more than an order of magnitude costlier than LLC
  accesses, so off-chip-bound benchmarks are DRAM-dominated;
* directory lookups/updates are charged separately from LLC data, and the
  locality classifier makes the directory access slightly more expensive
  (Section 2.4.2) — captured by ``directory_scale``.

Absolute joules are representative, not calibrated; every figure consumes
these numbers *normalized to S-NUCA*, exactly as the paper plots them.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping


#: Event-count keys produced by the protocol engine.
L1I_READ = "l1i_read"
L1I_WRITE = "l1i_write"
L1D_READ = "l1d_read"
L1D_WRITE = "l1d_write"
LLC_TAG_READ = "llc_tag_read"
LLC_TAG_WRITE = "llc_tag_write"
LLC_DATA_READ = "llc_data_read"
LLC_DATA_WRITE = "llc_data_write"
DIR_READ = "dir_read"
DIR_WRITE = "dir_write"
ROUTER_FLIT = "router_flit"
LINK_FLIT = "link_flit"
DRAM_READ = "dram_read"
DRAM_WRITE = "dram_write"

#: Figure 6 component labels, in plot order.
COMPONENTS = (
    "L1-I Cache",
    "L1-D Cache",
    "L2 Cache (LLC)",
    "Directory",
    "Network Router",
    "Network Link",
    "DRAM",
)


@dataclasses.dataclass(frozen=True)
class EnergyParams:
    """Per-event dynamic energies in picojoules (11 nm, representative)."""

    l1i_read_pj: float = 0.35
    l1i_write_pj: float = 0.40
    l1d_read_pj: float = 0.55
    l1d_write_pj: float = 0.62
    llc_tag_read_pj: float = 0.18
    llc_tag_write_pj: float = 0.22
    llc_data_read_pj: float = 1.60
    #: 1.2x the read energy (Section 4.1).
    llc_data_write_pj: float = 1.92
    dir_read_pj: float = 0.30
    dir_write_pj: float = 0.36
    router_flit_pj: float = 0.12
    link_flit_pj: float = 0.09
    dram_access_pj: float = 22.0
    #: Multiplier on directory energy when the locality classifier extends
    #: the directory entry (Section 2.4.2 notes the lookup/update is "more
    #: expensive"); schemes without a classifier use 1.0.
    directory_scale: float = 1.0

    def scaled_directory(self, scale: float) -> "EnergyParams":
        return dataclasses.replace(self, directory_scale=scale)


class EnergyModel:
    """Turns event counts into the Figure 6 component breakdown."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def breakdown(self, counts: Mapping[str, int]) -> dict[str, float]:
        """Energy per component (pJ) from an event-count mapping."""
        p = self.params
        get = lambda key: counts.get(key, 0)
        directory = p.directory_scale * (
            get(DIR_READ) * p.dir_read_pj + get(DIR_WRITE) * p.dir_write_pj
        )
        return {
            "L1-I Cache": get(L1I_READ) * p.l1i_read_pj + get(L1I_WRITE) * p.l1i_write_pj,
            "L1-D Cache": get(L1D_READ) * p.l1d_read_pj + get(L1D_WRITE) * p.l1d_write_pj,
            "L2 Cache (LLC)": (
                get(LLC_TAG_READ) * p.llc_tag_read_pj
                + get(LLC_TAG_WRITE) * p.llc_tag_write_pj
                + get(LLC_DATA_READ) * p.llc_data_read_pj
                + get(LLC_DATA_WRITE) * p.llc_data_write_pj
            ),
            "Directory": directory,
            "Network Router": get(ROUTER_FLIT) * p.router_flit_pj,
            "Network Link": get(LINK_FLIT) * p.link_flit_pj,
            "DRAM": (get(DRAM_READ) + get(DRAM_WRITE)) * p.dram_access_pj,
        }

    def total(self, counts: Mapping[str, int]) -> float:
        """Total dynamic energy in picojoules."""
        return sum(self.breakdown(counts).values())
