"""Core enumerations shared across the simulator.

These types intentionally mirror the vocabulary of the paper:

* :class:`AccessType` — the three kinds of memory references a core issues.
* :class:`MESIState` — private-cache / replica coherence states.
* :class:`LineClass` — the four data classes of Figure 1 (instructions,
  private data, shared read-only data, shared read-write data).
* :class:`MissStatus` — where an L1 miss was serviced (Figure 8 categories).
"""

from __future__ import annotations

import enum


class AccessType(enum.IntEnum):
    """Kind of memory reference issued by a core."""

    READ = 0
    WRITE = 1
    IFETCH = 2
    #: Pseudo-access marking a synchronization barrier in a trace.
    BARRIER = 3


class MESIState(enum.IntEnum):
    """MESI coherence states for L1 lines and LLC replicas.

    Ordering is meaningful: ``state >= MESIState.EXCLUSIVE`` means the
    holder has write permission (single-writer invariant).
    """

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3

    @property
    def writable(self) -> bool:
        """Whether a holder in this state may write without upgrading."""
        return self >= MESIState.EXCLUSIVE

    @property
    def valid(self) -> bool:
        return self != MESIState.INVALID


class LineClass(enum.IntEnum):
    """Data classification used by the Figure 1 profiler and workloads."""

    PRIVATE = 0
    INSTRUCTION = 1
    SHARED_RO = 2
    SHARED_RW = 3

    @property
    def label(self) -> str:
        return _LINE_CLASS_LABELS[self]


_LINE_CLASS_LABELS = {
    LineClass.PRIVATE: "Private",
    LineClass.INSTRUCTION: "Instruction",
    LineClass.SHARED_RO: "Shared Read-Only",
    LineClass.SHARED_RW: "Shared Read-Write",
}


class MissStatus(enum.IntEnum):
    """Where an L1 miss was serviced (Figure 8 / Section 3.4 categories)."""

    L1_HIT = 0
    LLC_REPLICA_HIT = 1
    LLC_HOME_HIT = 2
    OFF_CHIP_MISS = 3


class ReplicationMode(enum.IntEnum):
    """Per-(line, core) replication mode of the locality classifier (Fig. 3)."""

    NON_REPLICA = 0
    REPLICA = 1
