"""Shared configuration, types and helpers for the reproduction."""

from repro.common.addr import Region, RegionAllocator
from repro.common.counters import SaturatingCounter
from repro.common.params import CacheGeometry, MachineConfig
from repro.common.types import (
    AccessType,
    LineClass,
    MESIState,
    MissStatus,
    ReplicationMode,
)

__all__ = [
    "AccessType",
    "CacheGeometry",
    "LineClass",
    "MESIState",
    "MachineConfig",
    "MissStatus",
    "Region",
    "RegionAllocator",
    "ReplicationMode",
    "SaturatingCounter",
]
