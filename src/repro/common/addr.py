"""Address-space helpers.

The simulator operates at cache-line granularity: every address handled by
the memory system is a *line address* (byte address >> 6 for 64-byte lines).
Workload generators allocate disjoint line-address regions per data class;
these helpers centralize that layout so regions can never collide.
"""

from __future__ import annotations

import dataclasses
import itertools


@dataclasses.dataclass(frozen=True)
class Region:
    """A contiguous range of line addresses ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("region size must be non-negative")
        if self.base < 0:
            raise ValueError("region base must be non-negative")

    @property
    def end(self) -> int:
        return self.base + self.size

    def __contains__(self, line_addr: int) -> bool:
        return self.base <= line_addr < self.end

    def line(self, offset: int) -> int:
        """The line address at ``offset`` within the region."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside region of size {self.size}")
        return self.base + offset

    def __len__(self) -> int:
        return self.size


class RegionAllocator:
    """Carves disjoint, page-aligned regions out of a flat address space.

    Page alignment matters: R-NUCA classifies at page granularity, so a
    region intended as one core's private data must not share a page with
    another core's region (unless a workload *wants* page-level false
    sharing, which it requests explicitly via ``allocate_unaligned``).
    """

    def __init__(self, lines_per_page: int = 64) -> None:
        if lines_per_page <= 0:
            raise ValueError("lines_per_page must be positive")
        self._lines_per_page = lines_per_page
        self._next_line = 0

    def allocate(self, size: int) -> Region:
        """Allocate a page-aligned region of ``size`` lines."""
        base = self._align_up(self._next_line)
        self._next_line = base + size
        return Region(base, size)

    def allocate_unaligned(self, size: int) -> Region:
        """Allocate without page alignment (for false-sharing workloads)."""
        base = self._next_line
        self._next_line = base + size
        return Region(base, size)

    def allocate_many(self, count: int, size: int) -> list[Region]:
        """Allocate ``count`` page-aligned regions of ``size`` lines each."""
        return [self.allocate(size) for _ in itertools.repeat(None, count)]

    def _align_up(self, line: int) -> int:
        remainder = line % self._lines_per_page
        if remainder:
            return line + self._lines_per_page - remainder
        return line
