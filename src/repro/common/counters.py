"""Small hardware-counter primitives used throughout the protocol.

The paper's reuse counters are *saturating* counters (2 bits by default,
Section 2.4.1): increments stop at the maximum value and the counter can be
reset.  Keeping this in one place lets the classifier, replica entries and
tests share identical semantics.
"""

from __future__ import annotations


class SaturatingCounter:
    """An unsigned saturating counter with a fixed maximum value."""

    __slots__ = ("_value", "_max")

    def __init__(self, max_value: int, initial: int = 0) -> None:
        if max_value < 1:
            raise ValueError("max_value must be >= 1")
        if not 0 <= initial <= max_value:
            raise ValueError(f"initial {initial} outside [0, {max_value}]")
        self._max = max_value
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    @property
    def max_value(self) -> int:
        return self._max

    def increment(self, amount: int = 1) -> int:
        """Saturating add; returns the new value."""
        if amount < 0:
            raise ValueError("increment amount must be non-negative")
        self._value = min(self._max, self._value + amount)
        return self._value

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self._max:
            raise ValueError(f"reset value {value} outside [0, {self._max}]")
        self._value = value

    def saturated(self) -> bool:
        return self._value == self._max

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"SaturatingCounter({self._value}/{self._max})"
