"""Machine configuration — the architectural parameters of Table 1.

:class:`MachineConfig` captures every knob the paper's evaluation fixes:
core count, cache geometries and latencies, directory protocol, network and
DRAM characteristics, plus the locality-aware protocol parameters
(replication threshold, classifier, cluster size).

Two canonical configurations are provided:

* :meth:`MachineConfig.paper` — the 64-core Table 1 machine.
* :meth:`MachineConfig.small` — a scaled-down machine (same geometry
  *ratios*) used by the test-suite and the pytest benchmarks so the pure
  Python simulator stays fast.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache (line counts, not bytes).

    ``index_shift > 0`` enables XOR-hash set indexing,
    ``set = (line ^ (line >> shift)) mod sets``, used for LLC slices.
    Plain low-bit indexing would alias badly in a distributed LLC: an
    S-NUCA slice only ever sees lines with ``line % num_cores == slice``
    (low bits fixed → 1/num_cores of the sets used), while R-NUCA places
    *contiguous* private regions in one slice (high bits fixed under a
    purely shifted index).  Folding both bit ranges spreads either
    pattern over all sets — the standard hashed-index remedy.  The
    protocol engine applies the shift automatically when building slices.
    """

    sets: int
    ways: int
    line_bytes: int = 64
    index_shift: int = 0

    def __post_init__(self) -> None:
        if self.sets <= 0 or self.sets & (self.sets - 1):
            raise ValueError(f"sets must be a positive power of two, got {self.sets}")
        if self.ways <= 0:
            raise ValueError(f"ways must be positive, got {self.ways}")
        if self.index_shift < 0:
            raise ValueError(f"index_shift must be non-negative, got {self.index_shift}")

    @property
    def lines(self) -> int:
        return self.sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        return self.lines * self.line_bytes

    def set_index(self, line_addr: int) -> int:
        """Map a line address to its set index."""
        if self.index_shift:
            return (line_addr ^ (line_addr >> self.index_shift)) & (self.sets - 1)
        return line_addr & (self.sets - 1)

    def with_index_shift(self, shift: int) -> "CacheGeometry":
        return dataclasses.replace(self, index_shift=shift)


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Full machine description (Table 1 plus protocol parameters)."""

    # -- topology -----------------------------------------------------------
    num_cores: int = 64
    frequency_ghz: float = 1.0

    # -- caches -------------------------------------------------------------
    l1i: CacheGeometry = CacheGeometry(sets=64, ways=4)    # 16 KB, 4-way
    l1d: CacheGeometry = CacheGeometry(sets=128, ways=4)   # 32 KB, 4-way
    llc_slice: CacheGeometry = CacheGeometry(sets=512, ways=8)  # 256 KB, 8-way
    l1_latency: int = 1
    llc_tag_latency: int = 2
    llc_data_latency: int = 4

    # -- coherence ----------------------------------------------------------
    ackwise_pointers: int = 4
    #: Use the paper's modified-LRU LLC replacement (Section 2.2.4).
    llc_modified_lru: bool = True
    #: Temporal Locality Hints (Jaleel et al. [15]) — the prior approach
    #: Section 2.2.4 rejects: periodic L1-hit hint messages keep the LLC's
    #: plain-LRU state warm at the cost of extra network traffic.  When
    #: enabled, the LLC uses plain LRU plus hints (for the ablation bench).
    tla_hints: bool = False
    #: Send one hint per this many L1 hits.
    tla_hint_interval: int = 16

    # -- network ------------------------------------------------------------
    hop_latency: int = 2           # 1 router + 1 link cycle per hop
    flit_width_bits: int = 64
    cache_line_flits: int = 8      # 512-bit line / 64-bit flits
    header_flits: int = 1

    # -- DRAM ---------------------------------------------------------------
    num_mem_controllers: int = 8
    dram_latency_ns: float = 75.0
    dram_bandwidth_gbps: float = 5.0   # per controller, GB/s

    # -- locality-aware protocol (Section 2) ---------------------------------
    replication_threshold: int = 3
    #: Number of cores tracked by the Limited_k classifier; ``None`` selects
    #: the Complete classifier.
    classifier_k: int | None = 3
    #: Saturating-counter width for reuse counters (2 bits in the paper).
    reuse_counter_bits: int = 2
    #: Cluster size for cluster-level replication (Section 2.3.4); 1 places
    #: replicas in the requester's own slice.
    cluster_size: int = 1
    #: Classifier organization (Section 2.3.3): "incache" extends every
    #: LLC tag with classifier state; "sparse" keeps a decoupled
    #: fixed-capacity side table per slice (a second CAM lookup per
    #: access, and classifier state is lost on side-table eviction).
    classifier_organization: str = "incache"
    #: Side-table entries per LLC slice for the sparse organization.
    sparse_classifier_entries: int = 1024

    # -- address layout -----------------------------------------------------
    page_bytes: int = 4096
    physical_address_bits: int = 48

    def __post_init__(self) -> None:
        side = math.isqrt(self.num_cores)
        if side * side != self.num_cores:
            raise ValueError(
                f"num_cores must be a perfect square for a 2-D mesh, got {self.num_cores}"
            )
        if self.num_mem_controllers > self.num_cores:
            raise ValueError("more memory controllers than cores")
        if self.replication_threshold < 1:
            raise ValueError("replication threshold must be >= 1")
        if self.classifier_k is not None and self.classifier_k < 1:
            raise ValueError("classifier_k must be >= 1 or None")
        cluster = self.cluster_size
        if cluster < 1 or self.num_cores % cluster:
            raise ValueError(f"cluster_size {cluster} must divide num_cores")
        cside = math.isqrt(cluster)
        if cside * cside != cluster:
            raise ValueError("cluster_size must be a perfect square (sub-mesh)")
        if self.classifier_organization not in ("incache", "sparse"):
            raise ValueError(
                f"classifier_organization must be 'incache' or 'sparse', "
                f"got {self.classifier_organization!r}"
            )
        if self.sparse_classifier_entries < 1:
            raise ValueError("sparse_classifier_entries must be positive")
        if self.tla_hint_interval < 1:
            raise ValueError("tla_hint_interval must be positive")

    # -- derived quantities ---------------------------------------------------
    @property
    def mesh_side(self) -> int:
        return math.isqrt(self.num_cores)

    @property
    def dram_latency_cycles(self) -> int:
        return round(self.dram_latency_ns * self.frequency_ghz)

    @property
    def dram_service_cycles(self) -> int:
        """Cycles a controller is occupied transferring one cache line."""
        bytes_per_cycle = self.dram_bandwidth_gbps / self.frequency_ghz
        return max(1, round(self.llc_slice.line_bytes / bytes_per_cycle))

    @property
    def lines_per_page(self) -> int:
        return self.page_bytes // self.llc_slice.line_bytes

    @property
    def reuse_counter_max(self) -> int:
        return (1 << self.reuse_counter_bits) - 1

    def page_of(self, line_addr: int) -> int:
        return line_addr // self.lines_per_page

    # -- canonical configurations -------------------------------------------
    @classmethod
    def paper(cls, **overrides) -> "MachineConfig":
        """The 64-core Table 1 machine."""
        return cls(**overrides)

    @classmethod
    def small(cls, **overrides) -> "MachineConfig":
        """A 16-core machine with 1/8-size caches for fast tests/benches.

        Geometry ratios (L1-I : L1-D : LLC slice = 1 : 2 : 16) match the
        paper configuration so qualitative pressure effects are preserved.
        """
        defaults = dict(
            num_cores=16,
            l1i=CacheGeometry(sets=8, ways=4),
            l1d=CacheGeometry(sets=16, ways=4),
            llc_slice=CacheGeometry(sets=64, ways=8),
            num_mem_controllers=4,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def tiny(cls, **overrides) -> "MachineConfig":
        """A 4-core machine for unit tests that need hand-traceable state."""
        defaults = dict(
            num_cores=4,
            l1i=CacheGeometry(sets=2, ways=2),
            l1d=CacheGeometry(sets=4, ways=2),
            llc_slice=CacheGeometry(sets=8, ways=4),
            num_mem_controllers=2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_overrides(self, **overrides) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **overrides)
