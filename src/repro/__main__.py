"""Top-level command-line entry point — the single documented CLI surface.

Usage::

    python -m repro trace import CAPTURE --out TRACE.npz [options]
    python -m repro trace inspect TRACE.npz
    python -m repro trace synthesize-fixture --format FMT --out CAPTURE [options]
    python -m repro experiments ...     figures, tables, distributed service
    python -m repro testing ...         kernel verification / fuzzing

The ``experiments`` group (:mod:`repro.experiments.cli`) regenerates
every figure and table, and hosts the distributed experiment service
(``serve`` / ``work`` / ``store`` / ``--distributed N``); the
``testing`` group (:mod:`repro.testing.cli`) differentially verifies
the simulation kernels.  The old ``python -m repro.experiments`` and
``python -m repro.testing`` spellings remain as deprecated forwarders.

The ``trace`` group is the real-trace ingestion pipeline
(:mod:`repro.workloads.imports`):

``import``
    Convert an external capture — ChampSim-style text, din-style text,
    or the CSV interchange format, optionally gzipped — into a
    first-class ``.npz`` trace archive with inferred data-class regions
    and provenance metadata.  The result runs anywhere a catalog
    benchmark does: ``python -m repro.experiments fig6 --benchmarks
    imported:TRACE.npz``.

``inspect``
    Print an archive's shape: cores, record/barrier counts, the
    inferred region map per data class, and provenance.

``synthesize-fixture``
    Generate a small synthetic capture *in an external format* — the
    fixture generator behind the ``trace-conformance`` CI job and a
    quick way to try the importer without a real capture.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.common.params import MachineConfig
from repro.common.types import LineClass
from repro.workloads.benchmarks import BenchmarkProfile, build_trace
from repro.workloads.imports import (
    FORMATS,
    SPLITS,
    ImportOptions,
    export_champsim,
    export_csv,
    export_din,
    import_trace,
)
from repro.workloads.io import load_trace_set, save_trace_set

#: Core counts the fixture generator supports, mapped to a machine whose
#: geometry scales the synthetic working sets (num_cores must match a
#: valid mesh, so arbitrary counts are not constructible).
FIXTURE_MACHINES = {
    1: lambda: MachineConfig.tiny(num_cores=1, num_mem_controllers=1),
    4: MachineConfig.tiny,
    16: MachineConfig.small,
    64: MachineConfig.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="repro command-line interface.",
    )
    groups = parser.add_subparsers(dest="group", required=True)

    trace = groups.add_parser("trace", help="real-trace ingestion pipeline")
    commands = trace.add_subparsers(dest="command", required=True)

    imp = commands.add_parser(
        "import", help="convert an external capture into a .npz trace archive"
    )
    imp.add_argument("capture", type=Path, help="capture file (may be .gz)")
    imp.add_argument("--out", "-o", type=Path, required=True,
                     help="output .npz trace archive")
    imp.add_argument("--format", choices=(*FORMATS, "auto"), default="auto",
                     help="capture format (default: auto-detect by "
                          "extension, then content)")
    imp.add_argument("--cores", type=int, default=None, metavar="N",
                     help="number of cores (champsim/din: split target, "
                          "default 1; csv: validates record core ids, "
                          "default inferred as max id + 1)")
    imp.add_argument("--split", choices=SPLITS, default="round-robin",
                     help="single-stream record distribution: round-robin "
                          "(record i -> core i mod N) or blocks (N "
                          "contiguous chunks); csv carries explicit core "
                          "ids and ignores this")
    imp.add_argument("--line-bytes", type=int, default=64,
                     help="cache-line size for byte->line address "
                          "conversion in champsim/din captures (default 64)")
    imp.add_argument("--name", type=str, default=None,
                     help="trace-set name (default: capture file stem)")

    inspect = commands.add_parser(
        "inspect", help="summarize a .npz trace archive"
    )
    inspect.add_argument("archive", type=Path)

    synth = commands.add_parser(
        "synthesize-fixture",
        help="generate a small synthetic capture in an external format",
    )
    synth.add_argument("--format", choices=FORMATS, required=True)
    synth.add_argument("--out", "-o", type=Path, required=True)
    synth.add_argument("--cores", type=int, default=4,
                       choices=sorted(FIXTURE_MACHINES),
                       help="cores in the synthesized capture (default 4)")
    synth.add_argument("--records", type=int, default=200,
                       help="accesses per core (default 200)")
    synth.add_argument("--seed", type=int, default=1)
    return parser


def _cmd_import(args: argparse.Namespace) -> int:
    options = ImportOptions(
        num_cores=args.cores,
        split=args.split,
        line_bytes=args.line_bytes,
        name=args.name,
    )
    traces = import_trace(args.capture, fmt=args.format, options=options)
    out = save_trace_set(traces, args.out)
    provenance = traces.provenance or {}
    print(
        f"imported {args.capture} ({provenance.get('format', '?')}) -> {out}: "
        f"{traces.num_cores} cores, {provenance.get('records', 0)} records, "
        f"{provenance.get('barriers', 0)} barriers, "
        f"{len(traces.regions)} inferred regions"
    )
    print(f"run it with: python -m repro.experiments fig6 --benchmarks imported:{out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    traces = load_trace_set(args.archive)
    lengths = [len(trace) for trace in traces.cores]
    print(f"name:     {traces.name}")
    print(f"cores:    {traces.num_cores}")
    print(
        f"records:  {sum(lengths)} total "
        f"(per core min {min(lengths)}, max {max(lengths)})"
    )
    print(f"barriers: {traces.cores[0].barrier_count()} per core")
    by_class: dict[LineClass, list[int]] = {}
    for region, line_class in traces.regions:
        by_class.setdefault(line_class, []).append(region.size)
    print(f"regions:  {len(traces.regions)} "
          f"({traces.footprint_lines()} lines mapped)")
    for line_class in LineClass:
        sizes = by_class.get(line_class)
        if sizes:
            print(f"  {line_class.label:17s} {len(sizes):4d} regions, "
                  f"{sum(sizes)} lines")
    if traces.provenance:
        print("provenance:")
        for key, value in sorted(traces.provenance.items()):
            print(f"  {key}: {value}")
    return 0


def _fixture_profile(fmt: str, records: int) -> BenchmarkProfile:
    """A small mixed-class profile expressible in the target format.

    The single-stream text formats carry neither barriers nor compute
    gaps (and champsim cannot encode instruction fetches), so those
    features are zeroed to keep the synthesized capture exactly
    re-importable; the CSV interchange format carries everything.
    """
    f_ifetch = 0.0 if fmt == "champsim" else 0.05
    return BenchmarkProfile(
        name=f"FIXTURE-{fmt.upper()}",
        description=f"synthesized {fmt} conformance fixture",
        f_ifetch=f_ifetch,
        f_private=0.50 - f_ifetch,
        f_shared_ro=0.25,
        f_shared_rw=0.25,
        shared_ro_ws_x_l1d=2.0,
        shared_rw_ws_x_l1d=2.0,
        write_frac_rw=0.2,
        mean_gap=2.0 if fmt == "csv" else 0.0,
        barriers=2 if fmt == "csv" else 0,
        accesses_per_core=records,
    )


def _cmd_synthesize(args: argparse.Namespace) -> int:
    config = FIXTURE_MACHINES[args.cores]()
    traces = build_trace(
        _fixture_profile(args.format, args.records), config, seed=args.seed
    )
    if args.format == "csv":
        out = export_csv(traces, args.out)
    elif args.format == "din":
        out = export_din(traces, args.out)
    else:
        out = export_champsim(traces, args.out)
    total = sum(len(trace) for trace in traces.cores)
    print(f"synthesized {args.format} fixture -> {out}: "
          f"{traces.num_cores} cores, {total} records")
    print(f"import it with: python -m repro trace import {out} "
          f"--cores {traces.num_cores} --out {out}.npz")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Forward the sibling CLIs so `python -m repro <group>` covers the
    # whole toolbox; their parsers own everything after the group name.
    if argv and argv[0] == "experiments":
        from repro.experiments.cli import main as experiments_main

        return experiments_main(argv[1:])
    if argv and argv[0] == "testing":
        from repro.testing.cli import main as testing_main

        return testing_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "import":
        return _cmd_import(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    return _cmd_synthesize(args)


if __name__ == "__main__":
    raise SystemExit(main())
