"""Top-level command-line entry point — the single documented CLI surface.

Usage::

    python -m repro trace import CAPTURE --out TRACE.npz [options]
    python -m repro trace inspect TRACE.npz
    python -m repro trace simulate TRACE [--scheme S] [--stream] [--json]
    python -m repro trace synthesize-fixture --format FMT --out CAPTURE [options]
    python -m repro experiments ...     figures, tables, distributed service
    python -m repro testing ...         kernel verification / fuzzing

The ``experiments`` group (:mod:`repro.experiments.cli`) regenerates
every figure and table, and hosts the distributed experiment service
(``serve`` / ``work`` / ``store`` / ``--distributed N``); the
``testing`` group (:mod:`repro.testing.cli`) differentially verifies
the simulation kernels.  The old ``python -m repro.experiments`` and
``python -m repro.testing`` spellings remain as deprecated forwarders.

The ``trace`` group is the real-trace ingestion pipeline
(:mod:`repro.workloads.imports`):

``import``
    Convert an external capture — ChampSim-style text, din-style text,
    or the CSV interchange format, optionally gzipped — into a
    first-class ``.npz`` trace archive with inferred data-class regions
    and provenance metadata.  The result runs anywhere a catalog
    benchmark does: ``python -m repro.experiments fig6 --benchmarks
    imported:TRACE.npz``.

``inspect``
    Print an archive's shape: cores, record/barrier counts, the
    inferred region map per data class, and provenance.

``simulate``
    Run a trace archive or a ChampSim *binary* capture
    (``.trace.xz``/``.champsimtrace.xz``) through one scheme.  Binary
    captures stream by default: chunks are decoded on a background
    thread while the simulator consumes the previous chunk, so
    giga-record captures run in bounded memory.  ``--json`` emits a
    digest line (stats SHA-256, completion time, peak RSS) that the
    ``streaming-smoke`` CI job diffs across streamed and materialized
    runs.

``synthesize-fixture``
    Generate a small synthetic capture *in an external format* — the
    fixture generator behind the ``trace-conformance`` CI job and a
    quick way to try the importer without a real capture.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.common.params import MachineConfig
from repro.common.types import LineClass
from repro.workloads.benchmarks import BenchmarkProfile, build_trace
from repro.workloads.imports import (
    ALL_FORMATS,
    FORMATS,
    SPLITS,
    ImportOptions,
    detect_format,
    export_champsim,
    export_csv,
    export_din,
    import_trace,
)
from repro.workloads.io import load_trace_set, save_trace_set

#: Core counts the fixture generator supports, mapped to a machine whose
#: geometry scales the synthetic working sets (num_cores must match a
#: valid mesh, so arbitrary counts are not constructible).
FIXTURE_MACHINES = {
    1: lambda: MachineConfig.tiny(num_cores=1, num_mem_controllers=1),
    4: MachineConfig.tiny,
    16: MachineConfig.small,
    64: MachineConfig.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="repro command-line interface.",
    )
    groups = parser.add_subparsers(dest="group", required=True)

    trace = groups.add_parser("trace", help="real-trace ingestion pipeline")
    commands = trace.add_subparsers(dest="command", required=True)

    imp = commands.add_parser(
        "import", help="convert an external capture into a .npz trace archive"
    )
    imp.add_argument("capture", type=Path, help="capture file (may be .gz)")
    imp.add_argument("--out", "-o", type=Path, required=True,
                     help="output .npz trace archive")
    imp.add_argument("--format", choices=(*ALL_FORMATS, "auto"), default="auto",
                     help="capture format (default: auto-detect by "
                          "extension, then content)")
    imp.add_argument("--cores", type=int, default=None, metavar="N",
                     help="number of cores (champsim/din: split target, "
                          "default 1; csv: validates record core ids, "
                          "default inferred as max id + 1)")
    imp.add_argument("--split", choices=SPLITS, default="round-robin",
                     help="single-stream record distribution: round-robin "
                          "(record i -> core i mod N) or blocks (N "
                          "contiguous chunks); csv carries explicit core "
                          "ids and ignores this")
    imp.add_argument("--line-bytes", type=int, default=64,
                     help="cache-line size for byte->line address "
                          "conversion in champsim/din captures (default 64)")
    imp.add_argument("--name", type=str, default=None,
                     help="trace-set name (default: capture file stem)")
    imp.add_argument("--max-inst", type=int, default=None, metavar="N",
                     help="import at most N records/instructions from the "
                          "capture (giga-trace sampling)")

    inspect = commands.add_parser(
        "inspect", help="summarize a .npz trace archive"
    )
    inspect.add_argument("archive", type=Path)

    synth = commands.add_parser(
        "synthesize-fixture",
        help="generate a small synthetic capture in an external format",
    )
    synth.add_argument("--format", choices=ALL_FORMATS, required=True)
    synth.add_argument("--out", "-o", type=Path, required=True)
    synth.add_argument("--cores", type=int, default=4,
                       choices=sorted(FIXTURE_MACHINES),
                       help="cores in the synthesized capture (default 4)")
    synth.add_argument("--records", type=int, default=200,
                       help="accesses per core (default 200)")
    synth.add_argument("--seed", type=int, default=1)

    sim = commands.add_parser(
        "simulate",
        help="run an archive or binary capture through one scheme "
             "(streaming by default for captures)",
    )
    sim.add_argument("trace", type=Path,
                     help=".npz trace archive or ChampSim binary capture "
                          "(.trace/.champsimtrace, optionally .xz/.gz)")
    sim.add_argument("--scheme", default="RT-3",
                     help="scheme label (default RT-3); see "
                          "repro.schemes.factory.FIGURE_SCHEMES")
    sim.add_argument("--kernel", default=None,
                     help="simulation kernel (reference/fast/batched/"
                          "vector/auto; default: REPRO_SIM_KERNEL or fast)")
    sim.add_argument("--cores", type=int, default=None,
                     choices=sorted(FIXTURE_MACHINES),
                     help="core count for binary captures (default 4); "
                          "archives carry their own")
    stream_group = sim.add_mutually_exclusive_group()
    stream_group.add_argument("--stream", dest="stream", action="store_true",
                              default=None,
                              help="force bounded-memory streaming "
                                   "(default for binary captures)")
    stream_group.add_argument("--no-stream", dest="stream",
                              action="store_false",
                              help="force full materialization")
    sim.add_argument("--chunk", type=int, default=None, metavar="RECORDS",
                     help="streaming window size in records per core "
                          "(default: REPRO_STREAM_CHUNK or 65536)")
    sim.add_argument("--max-inst", type=int, default=None, metavar="N",
                     help="simulate at most N capture instructions")
    sim.add_argument("--json", action="store_true",
                     help="emit one machine-readable JSON line (stats "
                          "digest, completion time, peak RSS)")
    return parser


def _cmd_import(args: argparse.Namespace) -> int:
    options = ImportOptions(
        num_cores=args.cores,
        split=args.split,
        line_bytes=args.line_bytes,
        name=args.name,
        max_records=args.max_inst,
    )
    traces = import_trace(args.capture, fmt=args.format, options=options)
    out = save_trace_set(traces, args.out)
    provenance = traces.provenance or {}
    print(
        f"imported {args.capture} ({provenance.get('format', '?')}) -> {out}: "
        f"{traces.num_cores} cores, {provenance.get('records', 0)} records, "
        f"{provenance.get('barriers', 0)} barriers, "
        f"{len(traces.regions)} inferred regions"
    )
    print(f"run it with: python -m repro.experiments fig6 --benchmarks imported:{out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    traces = load_trace_set(args.archive)
    lengths = [len(trace) for trace in traces.cores]
    print(f"name:     {traces.name}")
    print(f"cores:    {traces.num_cores}")
    print(
        f"records:  {sum(lengths)} total "
        f"(per core min {min(lengths)}, max {max(lengths)})"
    )
    print(f"barriers: {traces.cores[0].barrier_count()} per core")
    by_class: dict[LineClass, list[int]] = {}
    for region, line_class in traces.regions:
        by_class.setdefault(line_class, []).append(region.size)
    print(f"regions:  {len(traces.regions)} "
          f"({traces.footprint_lines()} lines mapped)")
    for line_class in LineClass:
        sizes = by_class.get(line_class)
        if sizes:
            print(f"  {line_class.label:17s} {len(sizes):4d} regions, "
                  f"{sum(sizes)} lines")
    if traces.provenance:
        print("provenance:")
        for key, value in sorted(traces.provenance.items()):
            print(f"  {key}: {value}")
    return 0


def _fixture_profile(fmt: str, records: int) -> BenchmarkProfile:
    """A small mixed-class profile expressible in the target format.

    The single-stream text formats carry neither barriers nor compute
    gaps (and champsim cannot encode instruction fetches), so those
    features are zeroed to keep the synthesized capture exactly
    re-importable; the CSV interchange format carries everything.
    """
    f_ifetch = 0.0 if fmt.startswith("champsim") else 0.05
    return BenchmarkProfile(
        name=f"FIXTURE-{fmt.upper()}",
        description=f"synthesized {fmt} conformance fixture",
        f_ifetch=f_ifetch,
        f_private=0.50 - f_ifetch,
        f_shared_ro=0.25,
        f_shared_rw=0.25,
        shared_ro_ws_x_l1d=2.0,
        shared_rw_ws_x_l1d=2.0,
        write_frac_rw=0.2,
        mean_gap=2.0 if fmt == "csv" else 0.0,
        barriers=2 if fmt == "csv" else 0,
        accesses_per_core=records,
    )


def _cmd_synthesize(args: argparse.Namespace) -> int:
    config = FIXTURE_MACHINES[args.cores]()
    traces = build_trace(
        _fixture_profile(args.format, args.records), config, seed=args.seed
    )
    if args.format == "csv":
        out = export_csv(traces, args.out)
    elif args.format == "din":
        out = export_din(traces, args.out)
    elif args.format == "champsim-bin":
        from repro.workloads.champsim_bin import write_champsim_bin

        out = write_champsim_bin(traces, args.out)
    else:
        out = export_champsim(traces, args.out)
    total = sum(len(trace) for trace in traces.cores)
    print(f"synthesized {args.format} fixture -> {out}: "
          f"{traces.num_cores} cores, {total} records")
    print(f"import it with: python -m repro trace import {out} "
          f"--cores {traces.num_cores} --out {out}.npz")
    return 0


def _stats_digest(stats) -> str:
    """SHA-256 over the canonical JSON dump of a SimStats.

    Canonical = sorted keys, full float repr; two runs hash equal iff
    their stats are bit-identical — the streamed-vs-materialized CI
    contract compares these digests across processes.
    """
    import hashlib
    import json

    payload = json.dumps(stats.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json
    import resource

    from repro.schemes.factory import make_scheme
    from repro.sim.simulator import simulate
    from repro.workloads.streaming import StreamingTraceSet, stream_threshold_bytes

    path = args.trace
    if not path.exists():
        raise SystemExit(f"{path} does not exist")
    is_archive = path.suffix == ".npz"
    if is_archive:
        if args.max_inst is not None:
            raise SystemExit("--max-inst applies to binary captures, not "
                             ".npz archives (re-import with --max-inst)")
        traces = load_trace_set(path)
        stream = args.stream
        if stream is None:
            threshold = stream_threshold_bytes()
            stream = threshold >= 0 and path.stat().st_size >= threshold
        if stream:
            traces = StreamingTraceSet.from_trace_set(traces, args.chunk)
    else:
        if detect_format(path) != "champsim-bin":
            raise SystemExit(
                f"{path} is neither a .npz archive nor a ChampSim binary "
                f"capture; text captures must be imported first "
                f"(python -m repro trace import)"
            )
        cores = args.cores if args.cores is not None else 4
        if args.stream is False:
            traces = import_trace(
                path,
                fmt="champsim-bin",
                options=ImportOptions(num_cores=cores,
                                      max_records=args.max_inst),
            )
        else:
            traces = StreamingTraceSet.from_champsim_bin(
                path,
                num_cores=cores,
                chunk_records=args.chunk,
                max_instructions=args.max_inst,
            )
    config_factory = FIXTURE_MACHINES.get(traces.num_cores)
    if config_factory is None:
        raise SystemExit(
            f"no machine geometry for {traces.num_cores} cores "
            f"(supported: {sorted(FIXTURE_MACHINES)})"
        )
    engine = make_scheme(args.scheme, config_factory())
    stats = simulate(engine, traces, kernel=args.kernel)
    streamed = bool(getattr(traces, "is_streaming", False))
    records = (
        traces.total_records
        if streamed
        else sum(len(trace) for trace in traces.cores)
    )
    result = {
        "trace": str(path),
        "scheme": args.scheme,
        "kernel": args.kernel or "default",
        "streamed": streamed,
        "records": records,
        "completion_time": stats.completion_time,
        "stats_sha256": _stats_digest(stats),
        "max_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if args.json:
        print(json.dumps(result, sort_keys=True))
    else:
        mode = "streamed" if streamed else "materialized"
        print(f"{path} [{args.scheme}] {mode}: "
              f"{records} records, completion {stats.completion_time:.1f}, "
              f"peak RSS {result['max_rss_kib'] / 1024:.0f} MiB")
        print(f"stats sha256: {result['stats_sha256']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Forward the sibling CLIs so `python -m repro <group>` covers the
    # whole toolbox; their parsers own everything after the group name.
    if argv and argv[0] == "experiments":
        from repro.experiments.cli import main as experiments_main

        return experiments_main(argv[1:])
    if argv and argv[0] == "testing":
        from repro.testing.cli import main as testing_main

        return testing_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "import":
        return _cmd_import(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    return _cmd_synthesize(args)


if __name__ == "__main__":
    raise SystemExit(main())
