"""Static-NUCA baseline (Section 3.3, scheme 1).

Every cache line is address-interleaved across all LLC slices, nothing is
ever replicated, and every L1 miss travels to the home slice.  This is
the normalization baseline for Figures 6–8.
"""

from __future__ import annotations

from repro.placement.base import Placement, StaticNuca
from repro.schemes.base import ProtocolEngine


class SNucaScheme(ProtocolEngine):
    """S-NUCA: address-interleaved shared LLC, no replication."""

    name = "S-NUCA"

    def make_placement(self) -> Placement:
        return StaticNuca(self.config.num_cores)
