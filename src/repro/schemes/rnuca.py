"""Reactive-NUCA baseline (Section 3.3, scheme 2).

Private data is placed at the requester's LLC slice (first-touch page
classification), shared data is address-interleaved, and instructions are
replicated at one slice per 4-core cluster via rotational interleaving.
No other data is ever replicated.
"""

from __future__ import annotations

from repro.placement.base import Placement
from repro.placement.rnuca import ReactiveNuca
from repro.schemes.base import ProtocolEngine


class RNucaScheme(ProtocolEngine):
    """R-NUCA: private-at-requester, shared-interleaved, clustered instructions."""

    name = "R-NUCA"

    def make_placement(self) -> Placement:
        return ReactiveNuca(
            self.config.num_cores,
            self.config.lines_per_page,
            instruction_clustering=True,
        )
