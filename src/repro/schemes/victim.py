"""Victim Replication baseline (Zhang & Asanović, ISCA 2005; Section 3.3).

VR uses the requester's local LLC slice as a **victim cache** for lines
evicted from the L1:

* an L1 victim whose home is remote is placed in the local slice *only if*
  a cheap replacement candidate exists — an invalid way, an existing
  replica, or a home line with no L1 sharers — so "global" (home) lines
  with active sharers are never displaced;
* the L1/local-slice relationship is **exclusive**: a replica hit removes
  the replica and moves the line (including dirty data) into the L1, so
  every useful replica hit later costs an LLC data *write* when the line
  returns — the 1.2× write-energy penalty Section 4.1 highlights;
* replicas are created blindly (no reuse tracking, no LLC-pressure
  awareness), which is exactly the weakness the locality-aware protocol
  addresses.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.entries import HomeEntry, L1Line, ReplicaEntry
from repro.common.types import MESIState
from repro.energy import model as energy_events
from repro.schemes.base import LocalHit, ProtocolEngine


class VictimReplicationScheme(ProtocolEngine):
    """VR: local LLC slice as an L1 victim cache over an S-NUCA LLC."""

    name = "VR"

    # ------------------------------------------------------------------
    # Lookup: replica hits move the line to the L1 (exclusive relation)
    # ------------------------------------------------------------------
    def local_lookup(
        self, core: int, line_addr: int, write: bool, is_ifetch: bool, now: float
    ) -> tuple[Optional[LocalHit], float]:
        llc = self.slices[core]
        self.stats.energy_event(energy_events.LLC_TAG_READ)
        probe_cost = float(self.config.llc_tag_latency)
        replica = llc.replica(line_addr)
        if replica is None:
            return None, probe_cost
        if write and not replica.state.writable:
            # S-state replica cannot satisfy a write; the home's
            # invalidation sweep will collect it.
            return None, probe_cost
        self.stats.energy_event(energy_events.LLC_DATA_READ)
        llc.remove(line_addr)
        state = MESIState.MODIFIED if write else replica.state
        dirty = replica.dirty or replica.state == MESIState.MODIFIED
        return LocalHit(float(self.config.llc_data_latency), state, dirty), probe_cost

    def _make_replica_service(self):
        """Batched-kernel replica fast path (see the base-class hook).

        A VR replica hit is the exclusive move: the replica leaves the
        slice and the line (dirty data included) fills the L1 — entirely
        local, constant-latency.  Writes are serviceable only against an
        E/M replica; an S replica cannot satisfy them (the home's
        invalidation sweep collects it) and ends the run.  Because VR
        overrides :meth:`handle_l1_eviction` (victim placement can evict
        slice entries with full protocol), the base closure only batches
        VR replica hits whose L1 fill evicts nothing.
        """
        if (
            "local_lookup" in self.__dict__
            or type(self).local_lookup is not VictimReplicationScheme.local_lookup
        ):
            return None
        slices = self.slices
        MODIFIED = MESIState.MODIFIED

        def service(core: int, line_addr: int, write: bool):
            llc = slices[core]
            replica = llc.replica(line_addr)
            if replica is None:
                return None
            if write and not replica.state.writable:
                return None
            llc.remove(line_addr)
            dirty = replica.dirty or replica.state == MODIFIED
            return (MODIFIED if write else replica.state), dirty

        return service

    # ------------------------------------------------------------------
    # L1 evictions: place victims into the local slice when cheap
    # ------------------------------------------------------------------
    def handle_l1_eviction(self, core: int, victim: L1Line, is_ifetch: bool, now: float) -> None:
        line_addr = victim.line_addr
        home = self._home_of_cached_line(core, line_addr, is_ifetch)
        if home == core:
            self._notify_home_of_l1_eviction(core, victim, is_ifetch, now)
            return
        if not self._make_victim_room(core, line_addr, now):
            self.stats.bump("vr_placement_rejected")
            self._notify_home_of_l1_eviction(core, victim, is_ifetch, now)
            return
        replica = ReplicaEntry(line_addr, victim.state, self.config.reuse_counter_max)
        replica.dirty = victim.dirty
        self.slices[core].insert(replica)
        # VR always writes the victim's data into the slice, clean or not.
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        self.stats.energy_event(energy_events.LLC_DATA_WRITE)
        self.stats.bump("vr_placements")

    def _make_victim_room(self, core: int, line_addr: int, now: float) -> bool:
        """Find a VR-eligible way for the victim; True when room was made.

        Eligible candidates (in priority order): a free/invalid way, an
        existing replica, a home line with no L1 sharers.
        """
        llc = self.slices[core]
        existing = llc.lookup(line_addr)
        if isinstance(existing, ReplicaEntry):
            llc.remove(line_addr)  # stale replica of the same line
            return True
        if isinstance(existing, HomeEntry):
            return False  # cannot shadow our own home line
        if llc.victim_for(line_addr) is None:
            return True  # a free way exists
        set_index = llc.geometry.set_index(line_addr)
        candidates = [
            entry
            for entry in llc
            if llc.geometry.set_index(entry.line_addr) == set_index
        ]
        replicas = [entry for entry in candidates if isinstance(entry, ReplicaEntry)]
        if replicas:
            chosen = min(replicas, key=lambda entry: entry.last_use)
            self.evict_slice_entry(core, chosen, now)
            return True
        sharerless = [
            entry
            for entry in candidates
            if isinstance(entry, HomeEntry) and entry.sharers.count == 0
        ]
        if sharerless:
            chosen = min(sharerless, key=lambda entry: entry.last_use)
            self.evict_slice_entry(core, chosen, now)
            return True
        return False

    # ------------------------------------------------------------------
    # Invalidations must also probe the local slice
    # ------------------------------------------------------------------
    def invalidate_local_copies(
        self, target: int, line_addr: int, now: float
    ) -> tuple[bool, bool, Optional[int]]:
        had_copy, dirty, _ = super().invalidate_local_copies(target, line_addr, now)
        llc = self.slices[target]
        self.stats.energy_event(energy_events.LLC_TAG_READ)
        replica = llc.replica(line_addr)
        if replica is not None:
            had_copy = True
            dirty = dirty or replica.dirty or replica.state == MESIState.MODIFIED
            llc.remove(line_addr)
        return had_copy, dirty, None

    def _invalidate_replica_only(self, target, line_addr, now):
        llc = self.slices[target]
        replica = llc.replica(line_addr)
        if replica is None:
            return False, False, None
        dirty = replica.dirty or replica.state == MESIState.MODIFIED
        llc.remove(line_addr)
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        return True, dirty, None
