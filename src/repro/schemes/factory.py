"""Scheme registry: build any evaluated LLC management scheme by name.

The experiment harness refers to schemes with the labels the paper's
figures use (``S-NUCA``, ``R-NUCA``, ``VR``, ``ASR``, ``RT-1``, ``RT-3``,
``RT-8``); this module translates those labels into configured engines.
"""

from __future__ import annotations

from typing import Callable

from repro.common.params import MachineConfig
from repro.schemes.asr import ASRScheme
from repro.schemes.base import ProtocolEngine, ProtocolObserver
from repro.schemes.locality import LocalityAwareScheme
from repro.schemes.rnuca import RNucaScheme
from repro.schemes.snuca import SNucaScheme
from repro.schemes.victim import VictimReplicationScheme

#: The seven scheme columns of Figures 6–8, in plot order.
FIGURE_SCHEMES = ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-1", "RT-3", "RT-8")


def make_scheme(
    label: str,
    config: MachineConfig,
    observer: ProtocolObserver | None = None,
    **overrides,
) -> ProtocolEngine:
    """Instantiate the engine for a figure label.

    ``RT-<n>`` labels configure the locality-aware scheme with replication
    threshold ``n``; extra keyword arguments reach the scheme constructor
    (e.g. ``replication_level`` for ASR, ``oracle_lookup`` for locality).
    """
    if label == "S-NUCA":
        return SNucaScheme(config, observer)
    if label == "R-NUCA":
        return RNucaScheme(config, observer)
    if label == "VR":
        return VictimReplicationScheme(config, observer)
    if label == "ASR":
        return ASRScheme(config, observer, **overrides)
    if label.startswith("RT-"):
        threshold = int(label[3:])
        tuned = config.with_overrides(replication_threshold=threshold)
        return LocalityAwareScheme(tuned, observer, **overrides)
    if label == "Locality":
        return LocalityAwareScheme(config, observer, **overrides)
    raise ValueError(f"unknown scheme label {label!r}")


def scheme_builder(label: str, **overrides) -> Callable[[MachineConfig], ProtocolEngine]:
    """Partially applied constructor, convenient for sweeps."""
    def build(config: MachineConfig) -> ProtocolEngine:
        return make_scheme(label, config, **overrides)
    build.__name__ = f"build_{label.replace('-', '_').lower()}"
    return build
