"""Adaptive Selective Replication baseline (Beckmann et al., MICRO 2006).

ASR replicates cache lines into the requester's local LLC slice on L1
eviction, but **only** lines classified *shared read-only* (a sticky
per-line shared bit), and only with a probability given by the current
*replication level*.  Following the paper's methodology (Section 3.3), we
do not model ASR's hardware monitoring circuits: the experiment runner
executes ASR at the five discrete levels {0, 0.25, 0.5, 0.75, 1} and
keeps the level with the lowest energy-delay product per benchmark.

Shared read-only classification here uses directory-visible evidence:
a line is eligible once two distinct cores have read it, no write request
has ever reached the home, and no dirty data has ever been written back
(the last condition catches silent E→M upgrades, which the home only
learns about from the eventual write-back — same information a sticky
hardware shared bit would have).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.entries import HomeEntry, L1Line, ReplicaEntry
from repro.common.types import MESIState
from repro.energy import model as energy_events
from repro.schemes.base import LocalHit, ProtocolEngine


class ASRScheme(ProtocolEngine):
    """ASR: probabilistic replication of shared read-only lines."""

    name = "ASR"

    #: The discrete replication levels evaluated by the paper.
    LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)

    def __init__(self, config, observer=None, replication_level: float = 0.5) -> None:
        if not 0.0 <= replication_level <= 1.0:
            raise ValueError("replication level must be in [0, 1]")
        super().__init__(config, observer)
        self.replication_level = replication_level
        #: Lines that have seen a write request at the home (sticky).
        self._written: set[int] = set()
        #: line -> first reader, or -1 once multiple readers were seen.
        self._reader: dict[int, int] = {}
        self._decisions = 0

    # ------------------------------------------------------------------
    # Shared read-only classification
    # ------------------------------------------------------------------
    def _note_reader(self, line_addr: int, core: int) -> None:
        first = self._reader.get(line_addr)
        if first is None:
            self._reader[line_addr] = core
        elif first != core:
            self._reader[line_addr] = -1  # multiple readers

    def is_shared_readonly(self, line_addr: int) -> bool:
        """Sticky shared-RO classification at the home directory."""
        if line_addr in self._written:
            return False
        return self._reader.get(line_addr) == -1

    def _service_read(self, home, core, entry, is_ifetch, t):
        self._note_reader(entry.line_addr, core)
        return super()._service_read(home, core, entry, is_ifetch, t)

    def _service_write(self, home, core, entry, t):
        self._written.add(entry.line_addr)
        return super()._service_write(home, core, entry, t)

    # ------------------------------------------------------------------
    # Local lookup: replicas stay resident on hits (inclusive, unlike VR)
    # ------------------------------------------------------------------
    def local_lookup(
        self, core: int, line_addr: int, write: bool, is_ifetch: bool, now: float
    ) -> tuple[Optional[LocalHit], float]:
        llc = self.slices[core]
        self.stats.energy_event(energy_events.LLC_TAG_READ)
        probe_cost = float(self.config.llc_tag_latency)
        replica = llc.replica(line_addr)
        if replica is None or write:
            # ASR replicas are S-state (read-only data); writes go home.
            return None, probe_cost
        replica.reuse.increment()
        replica.l1_copy = True
        llc.touch(replica)
        self.stats.energy_event(energy_events.LLC_DATA_READ)
        return LocalHit(float(self.config.llc_data_latency), MESIState.SHARED), probe_cost

    def _make_replica_service(self):
        """Batched-kernel replica fast path (see the base-class hook).

        ASR replicas are S-state shared read-only data: only reads are
        serviceable inline (writes always go to the home, ending the
        run).  ASR overrides :meth:`handle_l1_eviction` (probabilistic
        victim replication), so the base closure only batches hits whose
        L1 fill evicts nothing.
        """
        if (
            "local_lookup" in self.__dict__
            or type(self).local_lookup is not ASRScheme.local_lookup
        ):
            return None
        slices = self.slices
        SHARED = MESIState.SHARED

        def service(core: int, line_addr: int, write: bool):
            if write:
                return None
            llc = slices[core]
            replica = llc.replica(line_addr)
            if replica is None:
                return None
            replica.reuse.increment()
            replica.l1_copy = True
            llc.touch(replica)
            return SHARED, False

        return service

    # ------------------------------------------------------------------
    # L1 evictions: probabilistic shared-RO replication
    # ------------------------------------------------------------------
    def handle_l1_eviction(self, core: int, victim: L1Line, is_ifetch: bool, now: float) -> None:
        line_addr = victim.line_addr
        home = self._home_of_cached_line(core, line_addr, is_ifetch)
        dirty = victim.dirty or victim.state == MESIState.MODIFIED
        if (
            home != core
            and not dirty
            and self.is_shared_readonly(line_addr)
            and self._replicate_now(line_addr, core)
            and self.slices[core].replica(line_addr) is None
            and self.slices[core].home(line_addr) is None
        ):
            self._make_room(core, line_addr, now)
            replica = ReplicaEntry(line_addr, MESIState.SHARED, self.config.reuse_counter_max)
            self.slices[core].insert(replica)
            self.stats.energy_event(energy_events.LLC_TAG_WRITE)
            self.stats.energy_event(energy_events.LLC_DATA_WRITE)
            self.stats.bump("asr_placements")
            return  # the core keeps a copy: it remains a sharer at the home
        self._notify_home_of_l1_eviction(core, victim, is_ifetch, now)

    def _replicate_now(self, line_addr: int, core: int) -> bool:
        """Deterministic pseudo-random draw against the replication level."""
        if self.replication_level <= 0.0:
            return False
        if self.replication_level >= 1.0:
            return True
        self._decisions += 1
        draw = (hash((line_addr, core, self._decisions)) & 0xFFFF) / 0x10000
        return draw < self.replication_level

    # ------------------------------------------------------------------
    # Invalidations probe the local slice
    # ------------------------------------------------------------------
    def invalidate_local_copies(
        self, target: int, line_addr: int, now: float
    ) -> tuple[bool, bool, Optional[int]]:
        had_copy, dirty, _ = super().invalidate_local_copies(target, line_addr, now)
        llc = self.slices[target]
        self.stats.energy_event(energy_events.LLC_TAG_READ)
        replica = llc.replica(line_addr)
        if replica is not None:
            had_copy = True
            llc.remove(line_addr)
        return had_copy, dirty, None

    def _invalidate_replica_only(self, target, line_addr, now):
        llc = self.slices[target]
        replica = llc.replica(line_addr)
        if replica is None:
            return False, False, None
        llc.remove(line_addr)
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        return True, False, None
