"""The locality-aware LLC data replication protocol (Section 2 — the paper).

On top of R-NUCA data placement (without R-NUCA's instruction clustering),
the scheme replicates *any* class of cache line — instructions, private
data, shared read-only and shared read-write data — into the requesting
core's LLC slice, but only once the line has demonstrated reuse at or
above the Replication Threshold (RT).  The per-line, per-core decision is
made by a locality classifier (Complete or Limited_k, Section 2.2.5)
stored in the home directory entry, and is *adaptive*: replicas that stop
earning their keep (reuse below RT at eviction/invalidation time) demote
their core back to non-replica mode.

Replicas live in MESI states: S/E replicas serve reads; E/M replicas also
serve writes locally, which is what makes migratory shared data (LU-NC)
replicatable — something neither R-NUCA nor ASR can do (Section 2.3.1).

``cluster_size > 1`` enables cluster-level replication (Section 2.3.4):
one replica per cluster of neighboring cores, placed by address
interleaving within the cluster.  The paper finds cluster size 1 optimal;
Figure 10's sensitivity sweep reproduces that conclusion.

``oracle_lookup=True`` models the dynamic oracle of Section 2.3.2 that
skips the local-slice probe whenever no replica is present.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.entries import HomeEntry, ReplicaEntry
from repro.common.params import MachineConfig
from repro.common.types import MESIState, ReplicationMode
from repro.core.classifier import make_classifier
from repro.energy import model as energy_events
from repro.energy.model import EnergyModel, EnergyParams
from repro.network.topology import cluster_members, cluster_of
from repro.placement.base import Placement
from repro.placement.rnuca import ReactiveNuca
from repro.schemes.base import LocalHit, ProtocolEngine


class LocalityAwareScheme(ProtocolEngine):
    """Locality-aware selective LLC replication (the paper's protocol)."""

    name = "Locality"

    #: Directory access cost scale with the classifier attached (§2.4.2).
    DIRECTORY_ENERGY_SCALE = 1.2

    def __init__(
        self,
        config: MachineConfig,
        observer=None,
        oracle_lookup: bool = False,
        shared_only_replicas: bool = False,
    ) -> None:
        rt = config.replication_threshold
        #: Counters must be able to reach RT (RT-8 needs >2-bit counters).
        self.reuse_max = max(config.reuse_counter_max, rt)
        self.classifier = make_classifier(
            config.num_cores, rt, self.reuse_max, config.classifier_k
        )
        self.oracle_lookup = oracle_lookup
        #: Section 2.3.1's simpler strategy: replicas only in the Shared
        #: state.  Instructions and read-shared data still replicate, but
        #: migratory data (interleaved reads and writes) cannot — the
        #: benchmarks with such patterns (LU-NC) lose their benefit.
        self.shared_only_replicas = shared_only_replicas
        super().__init__(config, observer)
        if config.classifier_organization == "sparse":
            from collections import OrderedDict
            #: Per-slice decoupled classifier side tables (Section 2.3.3).
            self._sparse_tables: list["OrderedDict[int, object]"] | None = [
                OrderedDict() for _ in range(config.num_cores)
            ]
        else:
            self._sparse_tables = None
        side = config.mesh_side
        if config.cluster_size > 1:
            self._cluster_map = [
                cluster_members(cluster_of(core, config.cluster_size, side),
                                config.cluster_size, side)
                for core in range(config.num_cores)
            ]
        else:
            self._cluster_map = None

    # ------------------------------------------------------------------
    # Scheme identity and substrate choices
    # ------------------------------------------------------------------
    def make_placement(self) -> Placement:
        # R-NUCA placement for data; instructions are classified and
        # replicated like any other line (Section 2.1), so no clustering.
        return ReactiveNuca(
            self.config.num_cores,
            self.config.lines_per_page,
            instruction_clustering=False,
        )

    def energy_model(self) -> EnergyModel:
        return EnergyModel(EnergyParams().scaled_directory(self.DIRECTORY_ENERGY_SCALE))

    def _new_classifier_state(self):
        if self._sparse_tables is not None:
            return None  # state lives in the decoupled side table
        return self.classifier.new_state()

    def _state_for(self, entry: HomeEntry):
        """Classifier state for a home entry under either organization.

        The sparse organization pays a second lookup (Section 2.3.3:
        "the energy expended to lookup two CAM structures needs to be
        paid") and loses state on side-table capacity eviction.
        """
        if self._sparse_tables is None:
            return entry.classifier
        line_addr = entry.line_addr
        home = self._active_home.get(
            line_addr, self.placement.home_for(line_addr, 0, False)
        )
        table = self._sparse_tables[home]
        self.stats.energy_event(energy_events.DIR_READ)  # second CAM
        state = table.get(line_addr)
        if state is None:
            if len(table) >= self.config.sparse_classifier_entries:
                table.popitem(last=False)
                self.stats.bump("sparse_classifier_evictions")
            state = self.classifier.new_state()
            table[line_addr] = state
        else:
            table.move_to_end(line_addr)
        return state

    def replica_slice_for(self, core: int, line_addr: int) -> int:
        if self._cluster_map is None:
            return core
        members = self._cluster_map[core]
        return members[line_addr % len(members)]

    def replica_would_help(self, home: int, core: int, line_addr: int) -> bool:
        """No replica when the home already sits inside the requester's
        cluster — with cluster size = num_cores this degenerates to
        'R-NUCA except that it does not even replicate instructions'
        (Figure 10's C-64 bar)."""
        if self._cluster_map is None:
            return home != core
        return home not in self._cluster_map[core]

    def _home_service_guards(self) -> bool:
        """Non-cluster locality qualifies for inline local-home servicing.

        The base assumptions hold under this scheme's own hooks: with no
        cluster map, :meth:`local_lookup` of a line whose *home* entry is
        in the requester's slice takes the free-probe branch (the replica
        probe is physically the home tag lookup), and
        :meth:`replica_would_help` is ``home != core`` — False at the
        home — so no replica is created.  Cluster-level replication is
        declined (probes cross the mesh), as are further overrides of the
        hooks this analysis covers.
        """
        if self._cluster_map is not None:
            return False
        if (
            "local_lookup" in self.__dict__
            or "replica_slice_for" in self.__dict__
            or "replica_would_help" in self.__dict__
            or type(self).local_lookup is not LocalityAwareScheme.local_lookup
            or type(self).replica_slice_for
            is not LocalityAwareScheme.replica_slice_for
            or type(self).replica_would_help
            is not LocalityAwareScheme.replica_would_help
        ):
            return False
        return self._home_request_stock()

    # ------------------------------------------------------------------
    # Local replica lookup (Section 2.2.1 / 2.2.2)
    # ------------------------------------------------------------------
    def local_lookup(
        self, core: int, line_addr: int, write: bool, is_ifetch: bool, now: float
    ) -> tuple[Optional[LocalHit], float]:
        slice_id = self.replica_slice_for(core, line_addr)
        llc = self.slices[slice_id]
        if slice_id == core and llc.home(line_addr) is not None:
            # The local slice holds the *home* entry: the replica probe is
            # physically the same tag lookup as the home access (in-cache
            # organization, Section 2.3.3), so it costs nothing extra.
            return None, 0.0
        replica = llc.replica(line_addr)
        if self.oracle_lookup and replica is None:
            return None, 0.0
        self.stats.energy_event(energy_events.LLC_TAG_READ)
        probe_cost = float(self.config.llc_tag_latency)
        if slice_id != core:
            # Cluster-level replication: the probe crosses the mesh.
            probe_cost += self.mesh.unloaded_latency(
                core, slice_id, self.mesh.control_flits()
            )
        if replica is None or (write and not replica.state.writable):
            if slice_id != core:
                probe_cost += self.mesh.unloaded_latency(
                    slice_id, core, self.mesh.control_flits()
                )
            return None, probe_cost
        replica.reuse.increment()
        replica.l1_copy = True
        llc.touch(replica)
        self.stats.energy_event(energy_events.LLC_DATA_READ)
        latency = float(self.config.llc_data_latency)
        if slice_id != core:
            latency += self.mesh.unloaded_latency(slice_id, core, self.mesh.data_flits())
        if write:
            # A write through an E/M cluster replica must hierarchically
            # invalidate the other members' L1 copies (Section 2.3.4).
            latency += self._hierarchical_invalidation(core, line_addr, slice_id, now)
            replica.state = MESIState.MODIFIED
            replica.dirty = True
            return LocalHit(latency, MESIState.MODIFIED), probe_cost
        if self._cluster_map is not None:
            # Member L1s under a shared cluster replica hold S; the replica
            # itself retains cluster-level ownership (E/M).
            return LocalHit(latency, MESIState.SHARED), probe_cost
        return LocalHit(latency, replica.state), probe_cost

    def _make_replica_service(self):
        """Batched-kernel replica fast path (see the base-class hook).

        A locality-aware replica hit is constant-latency and coherence-free
        whenever the local slice holds a replica (reads in any state,
        writes only against an E/M replica the classifier already granted
        — a write against an S replica needs a directory upgrade and ends
        the run).  Cluster-level replication is declined: the probe and
        the write's hierarchical invalidation cross the mesh.  The reuse
        counter is bumped through the same saturating increment as
        :meth:`local_lookup`, so classifier feedback at the eventual
        eviction/invalidation sees identical values.
        """
        if self._cluster_map is not None:
            return None
        if (
            "local_lookup" in self.__dict__
            or type(self).local_lookup is not LocalityAwareScheme.local_lookup
            # The closure hardcodes the non-cluster slice choice
            # (slices[core]); a replica_slice_for override would change
            # where local_lookup probes.
            or "replica_slice_for" in self.__dict__
            or type(self).replica_slice_for
            is not LocalityAwareScheme.replica_slice_for
        ):
            return None
        slices = self.slices
        MODIFIED = MESIState.MODIFIED

        def service(core: int, line_addr: int, write: bool):
            llc = slices[core]
            replica = llc.lookup(line_addr)
            if not isinstance(replica, ReplicaEntry):
                # No replica — or the local slice holds the *home* entry,
                # which local_lookup routes through the home path.
                return None
            if write and not replica.state.writable:
                return None
            replica.reuse.increment()
            replica.l1_copy = True
            llc.touch(replica)
            if write:
                replica.state = MODIFIED
                replica.dirty = True
                return MODIFIED, False
            return replica.state, False

        return service

    def _hierarchical_invalidation(
        self, writer: int, line_addr: int, replica_slice: int, now: float
    ) -> float:
        """Invalidate other cluster members' L1 copies under the replica."""
        if self._cluster_map is None:
            return 0.0
        max_rtt = 0.0
        for member in self._cluster_map[writer]:
            if member == writer:
                continue
            had_copy = False
            for l1 in (self.l1d[member], self.l1i[member]):
                self.stats.energy_event(energy_events.L1D_READ)
                if l1.invalidate(line_addr) is not None:
                    had_copy = True
            if had_copy:
                self.stats.bump("back_invalidations")
                rtt = 2.0 * self.mesh.unloaded_latency(
                    replica_slice, member, self.mesh.control_flits()
                )
                if rtt > max_rtt:
                    max_rtt = rtt
        return max_rtt

    # ------------------------------------------------------------------
    # Fill-time replication decision (the classifier)
    # ------------------------------------------------------------------
    def should_replicate(
        self, home_entry: HomeEntry, core: int, write: bool, is_ifetch: bool, only_sharer: bool
    ) -> bool:
        state = self._state_for(home_entry)
        before = state.mode(core)
        if write:
            replicate = self.classifier.on_home_write(state, core, only_sharer)
        else:
            replicate = self.classifier.on_home_read(state, core)
        if before == ReplicationMode.NON_REPLICA and state.mode(core) == ReplicationMode.REPLICA:
            self.stats.bump("promotions")
        return replicate

    def create_replica(
        self, core: int, line_addr: int, state: MESIState, write: bool, is_ifetch: bool, now: float
    ) -> None:
        if self.shared_only_replicas and (write or state != MESIState.SHARED):
            return  # Section 2.3.1: the simple strategy skips E/M replicas
        slice_id = self.replica_slice_for(core, line_addr)
        llc = self.slices[slice_id]
        if llc.home(line_addr) is not None or llc.replica(line_addr) is not None:
            return
        self._make_room(slice_id, line_addr, now)
        replica = ReplicaEntry(line_addr, state, self.reuse_max)
        if write:
            replica.state = MESIState.MODIFIED
        llc.insert(replica)
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        self.stats.energy_event(energy_events.LLC_DATA_WRITE)
        self.stats.bump("replicas_created")

    # ------------------------------------------------------------------
    # Invalidation / eviction classifier feedback (Section 2.2.3)
    # ------------------------------------------------------------------
    def invalidate_local_copies(
        self, target: int, line_addr: int, now: float
    ) -> tuple[bool, bool, Optional[int]]:
        had_copy, dirty, _ = super().invalidate_local_copies(target, line_addr, now)
        slice_id = self.replica_slice_for(target, line_addr)
        llc = self.slices[slice_id]
        self.stats.energy_event(energy_events.LLC_TAG_READ)
        replica = llc.replica(line_addr)
        reuse: Optional[int] = None
        if replica is not None:
            had_copy = True
            dirty = dirty or replica.dirty or replica.state == MESIState.MODIFIED
            reuse = replica.reuse.value
            llc.remove(line_addr)
            self.stats.bump("replica_invalidations")
            dirty = self._invalidate_replica_children(
                slice_id, line_addr, keep=target) or dirty
        return had_copy, dirty, reuse

    def _invalidate_replica_only(self, target, line_addr, now):
        slice_id = self.replica_slice_for(target, line_addr)
        llc = self.slices[slice_id]
        replica = llc.replica(line_addr)
        if replica is None:
            return False, False, None
        dirty = replica.dirty or replica.state == MESIState.MODIFIED
        reuse = replica.reuse.value
        llc.remove(line_addr)
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        self.stats.bump("replica_invalidations")
        dirty = self._invalidate_replica_children(slice_id, line_addr, keep=target) or dirty
        return True, dirty, reuse

    def _invalidate_replica_children(
        self, replica_slice: int, line_addr: int, keep: int
    ) -> bool:
        """Invalidate the member L1 copies beneath a removed cluster replica.

        Members that hit the shared replica directly never registered at
        the home, so the replica's removal must hierarchically collect
        their L1 copies (Section 2.3.4).  ``keep`` is exempted (the
        requesting writer receives its grant instead).
        """
        if self._cluster_map is None:
            return False
        dirty = False
        for member in self._replica_children(replica_slice):
            if member == keep:
                continue
            for l1 in (self.l1d[member], self.l1i[member]):
                entry = l1.invalidate(line_addr)
                if entry is not None:
                    self.stats.bump("back_invalidations")
                    dirty = dirty or entry.dirty or entry.state == MESIState.MODIFIED
        return dirty

    def _replica_children(self, replica_slice: int) -> list[int]:
        if self._cluster_map is None:
            return [replica_slice]
        return list(self._cluster_map[replica_slice])

    def _downgrade_local_copies(self, target: int, line_addr: int) -> bool:
        dirty = super()._downgrade_local_copies(target, line_addr)
        if self._cluster_map is not None:
            # Hierarchical downgrade: members sharing the cluster replica
            # may hold M/E L1 copies beneath it.
            for member in self._cluster_map[target]:
                if member != target:
                    dirty = self.l1d[member].downgrade(line_addr) or dirty
        return dirty

    def _classifier_invalidated(self, entry: HomeEntry, core: int, replica_reuse: int) -> None:
        state = self._state_for(entry)
        before = state.mode(core)
        self.classifier.on_invalidation(state, core, replica_reuse)
        if before == ReplicationMode.REPLICA and state.mode(core) == ReplicationMode.NON_REPLICA:
            self.stats.bump("demotions")

    def _classifier_after_write(self, entry: HomeEntry, writer: int, sharers) -> None:
        state = self._state_for(entry)
        self.classifier.on_write_reset_others(state, writer, sharers)
        self.classifier.mark_inactive_nonreplicas(state, writer)

    def _classifier_replica_evicted(self, entry: HomeEntry, core: int, replica_reuse: int) -> None:
        state = self._state_for(entry)
        before = state.mode(core)
        self.classifier.on_replica_eviction(state, core, replica_reuse)
        if before == ReplicationMode.REPLICA and state.mode(core) == ReplicationMode.NON_REPLICA:
            self.stats.bump("demotions")
