"""LLC management schemes: the locality-aware protocol and all baselines."""

from repro.schemes.asr import ASRScheme
from repro.schemes.base import AccessResult, LocalHit, ProtocolEngine, ProtocolObserver
from repro.schemes.factory import FIGURE_SCHEMES, make_scheme, scheme_builder
from repro.schemes.locality import LocalityAwareScheme
from repro.schemes.rnuca import RNucaScheme
from repro.schemes.snuca import SNucaScheme
from repro.schemes.victim import VictimReplicationScheme

__all__ = [
    "ASRScheme",
    "AccessResult",
    "FIGURE_SCHEMES",
    "LocalHit",
    "LocalityAwareScheme",
    "ProtocolEngine",
    "ProtocolObserver",
    "RNucaScheme",
    "SNucaScheme",
    "VictimReplicationScheme",
    "make_scheme",
    "scheme_builder",
]
