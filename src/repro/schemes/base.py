"""The shared LLC-management protocol engine.

All five evaluated schemes (S-NUCA, R-NUCA, Victim Replication, ASR and
the locality-aware protocol) share the same machine skeleton — private L1
caches kept coherent by an ACKwise directory integrated in the LLC tags,
a 2-D mesh, DRAM controllers — and differ only in four decisions
(Section 2.2): which lines to replicate, where replicas live, how lookups
find them, and how replicas stay coherent.

:class:`ProtocolEngine` implements the common MESI directory protocol and
exposes exactly those four decisions as overridable hooks:

* :meth:`local_lookup` — L1-miss-time probe for a nearby replica;
* :meth:`should_replicate` / :meth:`create_replica` — fill-time policy;
* :meth:`handle_l1_eviction` — what happens to L1 victims;
* :meth:`invalidate_local_copies` — what an invalidation must probe.

Timing follows Section 3.4: every L1-miss latency is decomposed into the
L1→LLC-replica, L1→LLC-home, LLC-home-waiting (per-line serialization),
LLC-home→sharers and LLC-home→off-chip components.  Coherence actions
that are off the critical path (evictions, write-backs) still send real
messages through the mesh — they contend for links and consume energy —
but do not stall the requester.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.cache.entries import HomeEntry, L1Line, ReplicaEntry
from repro.cache.l1 import L1Cache
from repro.cache.llc import LLCSlice
from repro.cache.replacement import make_policy
from repro.coherence.mesi import read_grant_state
from repro.coherence.sharers import make_sharer_tracker
from repro.common.params import MachineConfig
from repro.common.types import AccessType, MESIState, MissStatus
from repro.dram.controller import DramSystem
from repro.energy import model as energy_events
from repro.energy.model import EnergyModel
from repro.network.mesh import Mesh
from repro.placement.base import Placement, StaticNuca
from repro.sim import stats as stat_names
from repro.sim.stats import SimStats


@dataclasses.dataclass(slots=True)
class AccessResult:
    """Outcome of one memory access."""

    latency: float
    status: MissStatus
    #: MESI state granted to the L1 copy.
    state: MESIState = MESIState.SHARED
    #: Whether the granted data is dirty (VR moves dirty replicas to L1).
    dirty: bool = False


@dataclasses.dataclass(slots=True)
class LocalHit:
    """Outcome of a successful local (replica) lookup."""

    latency: float
    state: MESIState
    dirty: bool = False


class ProtocolObserver:
    """Optional hook consumer (used by the Figure 1 run-length profiler)."""

    def on_llc_home_access(self, core: int, line_addr: int, is_write: bool) -> None:
        """An L1 miss was serviced at (or filled through) the home LLC."""

    def on_home_eviction(self, line_addr: int) -> None:
        """A home LLC entry was evicted (all reuse runs terminate)."""

    def on_replica_access(self, core: int, line_addr: int, is_write: bool) -> None:
        """An L1 miss was serviced by a local LLC replica."""


class ProtocolEngine:
    """Base machine + directory protocol; schemes subclass and override hooks."""

    #: Human-readable scheme name (used by experiment tables).
    name = "base"

    def __init__(self, config: MachineConfig, observer: ProtocolObserver | None = None) -> None:
        self.config = config
        self.observer = observer
        self.l1i = [L1Cache(config.l1i) for _ in range(config.num_cores)]
        self.l1d = [L1Cache(config.l1d) for _ in range(config.num_cores)]
        # Index LLC sets with the bits above the slice-interleaving bits so
        # a slice's home lines spread over all of its sets (see
        # CacheGeometry.index_shift).
        slice_geometry = config.llc_slice.with_index_shift(
            max(config.llc_slice.index_shift, (config.num_cores - 1).bit_length())
        )
        if config.tla_hints:
            llc_policy_name = "lru"  # TLA pairs hints with plain LRU
        else:
            llc_policy_name = "modified_lru" if config.llc_modified_lru else "lru"
        self.slices = [
            LLCSlice(core, slice_geometry, make_policy(llc_policy_name))
            for core in range(config.num_cores)
        ]
        self._tla_hit_counts = [0] * config.num_cores
        self.mesh = Mesh(config)
        self.dram = DramSystem(config)
        self.placement = self.make_placement()
        self.stats = SimStats(config.num_cores)
        #: Per-(home, line) serialization: requests to the same line queue.
        self._line_busy: dict[tuple[int, int], float] = {}
        #: Current home slice per data line (R-NUCA rehoming support).
        self._active_home: dict[int, int] = {}
        self._control_flits = self.mesh.control_flits()
        self._data_flits = self.mesh.data_flits()

    # ------------------------------------------------------------------
    # Scheme hooks
    # ------------------------------------------------------------------
    def make_placement(self) -> Placement:
        """Home-mapping policy; S-NUCA interleaving by default."""
        return StaticNuca(self.config.num_cores)

    def energy_model(self) -> EnergyModel:
        """Energy model for this scheme (classifier schemes scale directory)."""
        return EnergyModel()

    def local_lookup(
        self, core: int, line_addr: int, write: bool, is_ifetch: bool, now: float
    ) -> tuple[Optional[LocalHit], float]:
        """Probe for a local replica before going to the home.

        Returns ``(hit, probe_cost)``; ``hit`` is None on a miss and
        ``probe_cost`` is the critical-path cycles spent probing (charged
        to the L1→LLC-replica bucket either way).  The base machine has
        no replicas and skips the probe entirely.
        """
        return None, 0.0

    def should_replicate(
        self, home_entry: HomeEntry, core: int, write: bool, is_ifetch: bool, only_sharer: bool
    ) -> bool:
        """Fill-time replication decision (classifier hook)."""
        return False

    def create_replica(
        self, core: int, line_addr: int, state: MESIState, write: bool, is_ifetch: bool, now: float
    ) -> None:
        """Materialize a replica after a home fill (no-op by default)."""

    def replica_slice_for(self, core: int, line_addr: int) -> int:
        """Slice where ``core`` would keep/find a replica of ``line_addr``."""
        return core

    def replica_would_help(self, home: int, core: int, line_addr: int) -> bool:
        """Whether a replica would be closer than the home (placement test)."""
        return home != self.replica_slice_for(core, line_addr)

    def _replica_children(self, replica_slice: int) -> list[int]:
        """Cores whose L1s live beneath a replica at ``replica_slice``.

        One core for per-core replicas; the whole cluster under
        cluster-level replication (hierarchical invalidation targets).
        """
        return [replica_slice]

    def invalidate_local_copies(
        self, target: int, line_addr: int, now: float
    ) -> tuple[bool, bool, Optional[int]]:
        """Invalidate every copy in ``target``'s local hierarchy.

        Returns ``(had_copy, dirty, replica_reuse)`` where ``replica_reuse``
        is the replica's reuse-counter value if an LLC replica was
        invalidated (communicated back in the acknowledgement —
        Section 2.2.3), else None.
        """
        had_copy = False
        dirty = False
        for l1 in (self.l1d[target], self.l1i[target]):
            entry = l1.invalidate(line_addr)
            self.stats.energy_event(energy_events.L1D_READ)  # probe
            if entry is not None:
                had_copy = True
                dirty = dirty or entry.dirty or entry.state == MESIState.MODIFIED
        return had_copy, dirty, None

    def handle_l1_eviction(self, core: int, victim: L1Line, is_ifetch: bool, now: float) -> None:
        """Dispose of an L1 victim; default sends the home an ack/writeback."""
        self._notify_home_of_l1_eviction(core, victim, is_ifetch, now)

    def evict_slice_entry(self, slice_core: int, entry, now: float) -> None:
        """Evict one LLC slice entry (home or replica) with full protocol."""
        if isinstance(entry, HomeEntry):
            self._evict_home_entry(slice_core, entry, now)
        else:
            self._evict_replica_entry(slice_core, entry, now)

    # ------------------------------------------------------------------
    # Top-level access path
    # ------------------------------------------------------------------
    def access(self, core: int, atype: AccessType, line_addr: int, now: float) -> AccessResult:
        """Process one memory reference from ``core`` at time ``now``."""
        is_ifetch = atype == AccessType.IFETCH
        write = atype == AccessType.WRITE
        l1 = self.l1i[core] if is_ifetch else self.l1d[core]
        self._l1_energy(is_ifetch, read=True)
        entry = l1.probe_hit(line_addr, write)
        if entry is not None:
            if write:
                entry.state = MESIState.MODIFIED
                entry.dirty = True
                self._l1_energy(is_ifetch, read=False)
            self.stats.record_miss(MissStatus.L1_HIT)
            self.stats.add_latency(stat_names.L1_HIT_TIME, self.config.l1_latency)
            self.stats.bump("l1i_hits" if is_ifetch else "l1d_hits")
            if self.config.tla_hints:
                self._maybe_send_tla_hint(core, line_addr, is_ifetch, now)
            return AccessResult(self.config.l1_latency, MissStatus.L1_HIT)

        self.stats.bump("l1i_misses" if is_ifetch else "l1d_misses")
        result = self._handle_l1_miss(core, line_addr, write, is_ifetch, now)
        # The fill (and any L1 eviction it triggers) is timestamped at the
        # *issue* time, not issue + latency: off-critical-path messages must
        # not reserve mesh links ahead of the global simulation frontier,
        # or critical-path traffic would queue behind reservations for
        # links that are actually idle (a runaway-feedback artifact).
        self._fill_l1(
            core, line_addr, result.state, write, is_ifetch, now, dirty=result.dirty
        )
        self.stats.record_miss(result.status)
        total = result.latency + self.config.l1_latency
        self.stats.add_latency(stat_names.L1_HIT_TIME, self.config.l1_latency)
        return AccessResult(total, result.status, result.state)

    def make_fast_access(self):
        """Specialized access entry point for the fast simulation kernel.

        Returns a closure with the semantics of :meth:`access` but with
        every per-call attribute lookup pre-bound and the result reduced
        to the latency scalar the event loop actually consumes (the stats
        side effects are identical — the differential harness in
        :mod:`repro.testing` enforces this).  Returns ``None`` when
        :meth:`access` or :meth:`_l1_energy` (the two methods the closure
        inlines) is overridden — on the subclass or as an instance
        attribute — so the kernel falls back to the generic path instead
        of silently bypassing the override.  The other helpers the
        closure uses (:meth:`_handle_l1_miss`, :meth:`_fill_l1`,
        :meth:`_maybe_send_tla_hint`) are captured as bound methods, so
        their overrides are honored without a guard.
        """
        if (
            "access" in self.__dict__
            or "_l1_energy" in self.__dict__
            or type(self).access is not ProtocolEngine.access
            or type(self)._l1_energy is not ProtocolEngine._l1_energy
        ):
            return None
        config = self.config
        l1_latency = config.l1_latency
        tla_hints = config.tla_hints
        send_tla_hint = self._maybe_send_tla_hint
        l1i = self.l1i
        l1d = self.l1d
        stats = self.stats
        counters = stats.counters
        latency_buckets = stats.latency
        miss_status = stats.miss_status
        energy_counts = stats.energy_counts
        handle_l1_miss = self._handle_l1_miss
        fill_l1 = self._fill_l1
        IFETCH = AccessType.IFETCH
        WRITE = AccessType.WRITE
        MODIFIED = MESIState.MODIFIED
        L1_HIT = MissStatus.L1_HIT
        L1_HIT_TIME = stat_names.L1_HIT_TIME
        L1I_READ = energy_events.L1I_READ
        L1D_READ = energy_events.L1D_READ
        L1I_WRITE = energy_events.L1I_WRITE
        L1D_WRITE = energy_events.L1D_WRITE

        def fast_access(core: int, atype: AccessType, line_addr: int, now: float) -> float:
            is_ifetch = atype is IFETCH
            write = atype is WRITE
            l1 = (l1i if is_ifetch else l1d)[core]
            energy_counts[L1I_READ if is_ifetch else L1D_READ] += 1
            entry = l1.probe_hit(line_addr, write)
            if entry is not None:
                if write:
                    entry.state = MODIFIED
                    entry.dirty = True
                    energy_counts[L1I_WRITE if is_ifetch else L1D_WRITE] += 1
                miss_status[L1_HIT] += 1
                latency_buckets[L1_HIT_TIME] += l1_latency
                counters["l1i_hits" if is_ifetch else "l1d_hits"] += 1
                if tla_hints:
                    send_tla_hint(core, line_addr, is_ifetch, now)
                return l1_latency
            counters["l1i_misses" if is_ifetch else "l1d_misses"] += 1
            result = handle_l1_miss(core, line_addr, write, is_ifetch, now)
            fill_l1(core, line_addr, result.state, write, is_ifetch, now, dirty=result.dirty)
            miss_status[result.status] += 1
            latency_buckets[L1_HIT_TIME] += l1_latency
            return result.latency + l1_latency

        return fast_access

    def _make_replica_service(self):
        """Scheme hook behind the batched kernel's local-replica fast path.

        Returns ``None`` (the base machine keeps no replicas, so replica
        hits are never batchable) or a closure ``service(core, line_addr,
        write)`` that tries to service one L1-missing access as a
        *no-coherence* hit in the core's local LLC replica slice:

        * when the access is not serviceable inline — no replica, a write
          against a non-writable replica (directory upgrade), the local
          slice holding the *home* entry, or any other case that must run
          the full miss path — it returns ``None`` **without mutating any
          state**, and the kernel single-steps the record through
          :meth:`access` semantics instead;
        * otherwise it commits the replica-side effects of
          :meth:`local_lookup` for this scheme (reuse-counter increment,
          LRU touch, ``l1_copy``, VR's exclusive-move removal, a write's
          M-state transition) and returns ``(state, dirty)`` — the MESI
          grant and dirty flag the L1 fill receives.

        The base closure in :meth:`make_batched_access` owns everything
        scheme-independent: the L1-victim precheck, the L1 fill and the
        per-run statistics flush.  Implementations must guard their own
        inlined hooks (decline when :meth:`local_lookup` is overridden
        further) and decline configurations whose replica hits are not
        constant-latency (e.g. cluster-level replication, whose probes
        cross the mesh).
        """
        return None

    def _replica_batching_guards(self) -> bool:
        """Scheme-independent guards of the batched replica fast path.

        No observer (``on_replica_access`` fires per hit, in order),
        integer-valued replica-hit latency components (the per-run
        ``n * probe_cost`` flush is only exact for integers), and the
        miss/fill helpers the fast path inlines not overridden.
        """
        if self.observer is not None:
            return False
        if not (
            float(self.config.llc_tag_latency).is_integer()
            and float(self.config.llc_data_latency).is_integer()
        ):
            return False
        return not (
            "_handle_l1_miss" in self.__dict__
            or "_fill_l1" in self.__dict__
            or type(self)._handle_l1_miss is not ProtocolEngine._handle_l1_miss
            or type(self)._fill_l1 is not ProtocolEngine._fill_l1
        )

    def _stock_eviction_hooks(self) -> bool:
        """Whether L1 victims take the base (replica-merge capable) path.

        Only then can the batched closure dispose of an evicted L1
        victim inline — by merging it into its own local replica — which
        is what keeps replica runs going once the L1 is full.
        """
        return not (
            "handle_l1_eviction" in self.__dict__
            or "_notify_home_of_l1_eviction" in self.__dict__
            or type(self).handle_l1_eviction is not ProtocolEngine.handle_l1_eviction
            or type(self)._notify_home_of_l1_eviction
            is not ProtocolEngine._notify_home_of_l1_eviction
        )

    def supports_replica_batching(self) -> bool:
        """Whether batched replica runs *sustain* in the full-L1 steady state.

        The ``auto`` kernel probe's replica-friendliness signal
        (:func:`repro.sim.kernel.choose_kernel`).  Deliberately stricter
        than "the fast path exists": it also requires the stock eviction
        hooks, because once the L1 is full every replica-hit fill evicts
        a victim, and a scheme with overridden eviction hooks (VR's
        victim placement, ASR's probabilistic replication) single-steps
        those records — its replica hits batch only opportunistically
        while L1 sets have room, which does not justify steering
        ``auto`` toward the batched kernel.
        """
        return (
            self._replica_batching_guards()
            and self._stock_eviction_hooks()
            and self._make_replica_service() is not None
        )

    def supports_vector_spans(self) -> bool:
        """Whether the vector kernel's array-at-a-time spans engage.

        The ``auto`` kernel probe's vector signal
        (:func:`repro.sim.kernel.choose_kernel`): True when
        :meth:`make_vector_access` would return a working closure for
        integral-gap traces — i.e. batching is available, so vectorized
        L1-hit spans (which need no further engine support) run on top
        of it.
        """
        return self.make_vector_access() is not None

    def make_batched_access(self, charge_gaps: bool = False):
        """Run-servicing entry point for the batched simulation kernel.

        Returns a closure ``run_hits(core, decoded, index, stop, now,
        limit, strict)`` that executes records ``decoded[index:]`` for as
        long as they are L1 hits — or, for replicating schemes
        (:meth:`_make_replica_service`), constant-latency local-replica
        hits — stopping at the first of:

        * a record that must run the full miss path: an L1 miss with no
          serviceable local replica, a write needing a directory upgrade
          (against a SHARED L1 copy or a non-writable replica), or a
          replica-hit fill whose L1 victim cannot be disposed of locally
          (any event that can mutate replica or directory state beyond
          the run's own slice — the kernel services it through the
          fast-access miss path);
        * ``stop`` — the run boundary the kernel computed (the next
          barrier record or the end of the trace);
        * the scheduling limit — after a record completes at time ``t``,
          the core must yield when ``t > limit`` (or ``t >= limit`` if
          ``strict`` is False, i.e. the heap-front core wins the tie).

        Returns ``(index, now, yielded)``: the first unexecuted record,
        the core's clock, and whether the stop was a scheduling yield.
        The closure owns the whole run's statistics: one flush of the
        hit/energy/latency counters per run, with the Compute bucket
        charged from the decoded trace's numpy ``gap_prefix`` slice
        (``charge_gaps`` switches to per-record charging, which the
        kernel requests when gaps are fractional and the reference
        accumulation order is therefore observable).

        A batched replica hit replays the reference path exactly: the
        scheme service commits the :meth:`local_lookup` effects (reuse
        increment with the same saturation, the same single LRU touch),
        the closure fills the L1 — including merging an evicted L1
        victim into its own local replica when the scheme uses the stock
        eviction path, the common steady state once the L1 is full — and
        the flush adds the per-hit ``L1-To-LLC-Replica`` probe cost,
        ``LLC_REPLICA_HIT`` statuses and tag/data energies.  Its clock
        charge keeps the reference operation grouping
        ``(probe + data) + l1`` per record.

        All side effects are bit-identical to issuing the same records
        through :meth:`access` — enforced by ``repro.testing``.  Returns
        ``None`` (kernel falls back to the fast path) when the
        specialization guards fail: :meth:`access`/:meth:`_l1_energy`
        overrides (same rule as :meth:`make_fast_access`), non-stock L1
        cache objects, TLA hints (hints send per-hit mesh messages, so
        hits are not schedule-free), or a fractional L1 latency (the
        flushed ``n * l1_latency`` sum is only exact for integers).
        """
        if (
            "access" in self.__dict__
            or "_l1_energy" in self.__dict__
            or type(self).access is not ProtocolEngine.access
            or type(self)._l1_energy is not ProtocolEngine._l1_energy
        ):
            return None
        if self.config.tla_hints:
            return None
        if not float(self.config.l1_latency).is_integer():
            return None
        if any(type(cache) is not L1Cache for cache in (*self.l1i, *self.l1d)):
            return None

        l1_latency = self.config.l1_latency
        stats = self.stats
        counters = stats.counters
        latency_buckets = stats.latency
        miss_status = stats.miss_status
        energy_counts = stats.energy_counts
        # type(cache) is L1Cache above makes probe_hit's body the one we
        # inline here: _array.access plus the write-permission check.
        instr_probe = [cache._array.access for cache in self.l1i]
        data_probe = [cache._array.access for cache in self.l1d]
        l1i_caches = self.l1i
        l1d_caches = self.l1d
        READ = AccessType.READ
        WRITE = AccessType.WRITE
        MODIFIED = MESIState.MODIFIED
        L1_HIT = MissStatus.L1_HIT
        LLC_REPLICA_HIT = MissStatus.LLC_REPLICA_HIT
        COMPUTE = stat_names.COMPUTE
        L1_HIT_TIME = stat_names.L1_HIT_TIME
        L1_TO_LLC_REPLICA = stat_names.L1_TO_LLC_REPLICA
        L1I_READ = energy_events.L1I_READ
        L1D_READ = energy_events.L1D_READ
        L1I_WRITE = energy_events.L1I_WRITE
        L1D_WRITE = energy_events.L1D_WRITE
        LLC_TAG_READ = energy_events.LLC_TAG_READ
        LLC_DATA_READ = energy_events.LLC_DATA_READ
        LLC_DATA_WRITE = energy_events.LLC_DATA_WRITE

        replica_service = (
            self._make_replica_service() if self._replica_batching_guards() else None
        )
        # Per-record replica-hit latency with the reference operation
        # grouping (AccessResult(probe + hit.latency) then + l1_latency);
        # probe_cost is the constant local-slice tag probe every scheme's
        # local_lookup charges on a (non-cluster) replica hit.
        probe_cost = float(self.config.llc_tag_latency)
        replica_latency = (probe_cost + float(self.config.llc_data_latency)) + l1_latency
        # An L1 victim evicted by a replica-hit fill can be disposed of
        # inline only through the stock eviction path's replica-merge arm
        # (no mesh traffic); schemes overriding the eviction hooks (VR's
        # victim placement, ASR's probabilistic replication) single-step
        # any record whose fill would evict.
        inline_victims = replica_service is not None and self._stock_eviction_hooks()
        slices = self.slices
        replica_slice_for = self.replica_slice_for

        # Replica-record service outcomes (bit flags accumulated by the
        # flush): 0 = not serviceable inline (single-step the record).
        SERVED = 1
        SERVED_EVICT = 2
        SERVED_EVICT_DIRTY = 3

        def replica_record(core, line_addr, write, l1):
            """Inline one replica hit + L1 fill; returns a SERVED_* code.

            Mirrors access() for a no-coherence replica hit exactly:
            local_lookup's replica-side effects (committed by the scheme
            service), then _fill_l1 — including the stock eviction
            path's local replica-merge of an evicted L1 victim.  All
            prechecks run before any mutation, so a 0 return leaves the
            machine untouched for the single-step fallback.
            """
            victim = l1._array.victim_for(line_addr)
            if victim is not None:
                if not inline_victims:
                    return 0
                victim_replica = slices[
                    replica_slice_for(core, victim.line_addr)
                ].replica(victim.line_addr)
                if victim_replica is None:
                    # The victim would notify its home (possible mesh
                    # traffic / directory update): not schedule-free.
                    return 0
            grant = replica_service(core, line_addr, write)
            if grant is None:
                return 0
            state, rep_dirty = grant
            # The L1 fill, inlined from L1Cache.insert minus the lookup
            # (the probe just missed) and the victim re-selection (no L1
            # mutation since the precheck — same victim).
            array = l1._array
            if victim is not None:
                array.remove(victim.line_addr)
            entry = L1Line(line_addr, state)
            array.insert(entry)
            if rep_dirty:
                entry.dirty = True
            if write:
                entry.state = MODIFIED
                entry.dirty = True
            if victim is None:
                return SERVED
            # The merge arm of _notify_home_of_l1_eviction: dirty data
            # folds into the victim's replica, the core stays a sharer.
            victim_replica.l1_copy = False
            if victim.dirty or victim.state is MODIFIED:
                victim_replica.dirty = True
                if victim_replica.state.writable:
                    victim_replica.state = MODIFIED
                return SERVED_EVICT_DIRTY
            return SERVED_EVICT

        def run_hits(core, decoded, index, stop, now, limit, strict):
            atypes = decoded.atypes
            lines = decoded.lines
            gaps = decoded.gaps
            probe_data = data_probe[core]
            probe_instr = instr_probe[core]
            l1_data = l1d_caches[core]
            l1_instr = l1i_caches[core]
            start = index
            n_data = 0
            n_instr = 0
            n_write = 0
            r_data = 0
            r_instr = 0
            n_evict = 0
            n_evict_dirty = 0
            yielded = False
            while index < stop:
                atype = atypes[index]
                line_addr = lines[index]
                latency = l1_latency
                if atype is READ:
                    entry = probe_data(line_addr)
                    if entry is not None:
                        n_data += 1
                    else:
                        if replica_service is None:
                            break
                        code = replica_record(core, line_addr, False, l1_data)
                        if not code:
                            break
                        r_data += 1
                        if code > SERVED:
                            n_evict += 1
                            if code == SERVED_EVICT_DIRTY:
                                n_evict_dirty += 1
                        latency = replica_latency
                elif atype is WRITE:
                    entry = probe_data(line_addr)
                    if entry is not None:
                        if not entry.state.writable:
                            break  # upgrade through the home directory
                        entry.state = MODIFIED
                        entry.dirty = True
                        n_data += 1
                        n_write += 1
                    else:
                        if replica_service is None:
                            break
                        code = replica_record(core, line_addr, True, l1_data)
                        if not code:
                            break
                        r_data += 1
                        if code > SERVED:
                            n_evict += 1
                            if code == SERVED_EVICT_DIRTY:
                                n_evict_dirty += 1
                        latency = replica_latency
                else:  # IFETCH (barriers never appear inside a run)
                    entry = probe_instr(line_addr)
                    if entry is not None:
                        n_instr += 1
                    else:
                        if replica_service is None:
                            break
                        code = replica_record(core, line_addr, False, l1_instr)
                        if not code:
                            break
                        r_instr += 1
                        if code > SERVED:
                            n_evict += 1
                            if code == SERVED_EVICT_DIRTY:
                                n_evict_dirty += 1
                        latency = replica_latency
                gap = gaps[index]
                index += 1
                if charge_gaps and gap:
                    latency_buckets[COMPUTE] += gap
                # Same two-step accumulation as the reference loop
                # (issue = now + gap; now = issue + latency): float
                # addition is not associative, so the grouping is part
                # of the bit-identity contract.
                now = now + gap + latency
                if now >= limit and (not strict or now > limit):
                    yielded = True
                    break
            hits = index - start
            if hits:
                if not charge_gaps:
                    gap_prefix = decoded.gap_prefix
                    run_gaps = float(gap_prefix[index] - gap_prefix[start])
                    if run_gaps:
                        latency_buckets[COMPUTE] += run_gaps
                latency_buckets[L1_HIT_TIME] += hits * l1_latency
                replicas = r_data + r_instr
                l1_hits = hits - replicas
                if l1_hits:
                    miss_status[L1_HIT] += l1_hits
                if n_data:
                    counters["l1d_hits"] += n_data
                    energy_counts[L1D_READ] += n_data
                if n_instr:
                    counters["l1i_hits"] += n_instr
                    energy_counts[L1I_READ] += n_instr
                if n_write:
                    energy_counts[L1D_WRITE] += n_write
                if replicas:
                    miss_status[LLC_REPLICA_HIT] += replicas
                    counters["llc_replica_hits"] += replicas
                    latency_buckets[L1_TO_LLC_REPLICA] += replicas * probe_cost
                    energy_counts[LLC_TAG_READ] += replicas
                    energy_counts[LLC_DATA_READ] += replicas
                    if r_data:
                        counters["l1d_misses"] += r_data
                        energy_counts[L1D_READ] += r_data
                        energy_counts[L1D_WRITE] += r_data
                    if r_instr:
                        counters["l1i_misses"] += r_instr
                        energy_counts[L1I_READ] += r_instr
                        energy_counts[L1I_WRITE] += r_instr
                    if n_evict:
                        counters["l1_evictions"] += n_evict
                        if n_evict_dirty:
                            energy_counts[LLC_DATA_WRITE] += n_evict_dirty
            return index, now, yielded

        return run_hits

    # ------------------------------------------------------------------
    # Vector-kernel specialization
    # ------------------------------------------------------------------
    #: Minimum vectorizable L1-hit span (records) worth the numpy planning
    #: overhead.  Purely a performance heuristic: shorter spans are simply
    #: serviced by the batched per-record closure instead, so any value is
    #: bit-identical.
    VECTOR_MIN_SPAN = 24

    def _home_request_stock(self) -> bool:
        """Whether the home-request read path is the base implementation.

        The vector kernel's inline home-hit arm re-implements the no-mesh
        read case of :meth:`_home_request` / :meth:`_home_access` /
        :meth:`_service_read`; any override must disable it.
        """
        cls = type(self)
        return not (
            "_home_request" in self.__dict__
            or "_home_access" in self.__dict__
            or "_service_read" in self.__dict__
            or "_resolve_home" in self.__dict__
            or "_home_of_cached_line" in self.__dict__
            or cls._home_request is not ProtocolEngine._home_request
            or cls._home_access is not ProtocolEngine._home_access
            or cls._service_read is not ProtocolEngine._service_read
            or cls._resolve_home is not ProtocolEngine._resolve_home
            or cls._home_of_cached_line is not ProtocolEngine._home_of_cached_line
        )

    def _home_service_guards(self) -> bool:
        """Whether inline local-home-hit servicing is sound for this scheme.

        The base rule additionally requires the replica-placement hooks to
        be stock, because the inline arm assumes (a) ``local_lookup`` of a
        line whose *home* entry sits in the requester's own slice charges
        nothing, and (b) ``replica_would_help(home == core)`` is False, so
        no replica is ever created at the home.  Schemes for which both
        still hold under their own overrides (the locality scheme) widen
        the check.
        """
        cls = type(self)
        if (
            "local_lookup" in self.__dict__
            or cls.local_lookup is not ProtocolEngine.local_lookup
            or cls.replica_slice_for is not ProtocolEngine.replica_slice_for
            or cls.replica_would_help is not ProtocolEngine.replica_would_help
        ):
            return False
        return self._home_request_stock()

    def _make_home_service(self):
        """Inline servicing of local-home read hits (vector kernel).

        Returns ``None``, or a closure ``home_step(core, line_addr,
        is_ifetch, now) -> float | None`` servicing one L1-missing *read*
        (data or instruction fetch) as an LLC hit at a home entry in the
        requester's own slice.  This is the one miss disposition that is
        schedule-free — no mesh message in either direction, no remote
        owner to downgrade, no replica created (``replica_would_help`` is
        False at the home) — yet breaks batched replica runs (R-NUCA
        homes ~1/num_cores of any shared region in the requester's own
        slice), so servicing it inline is what lets vector/batched runs
        span whole replica-heavy phases.

        Every precheck runs before any mutation: a ``None`` return leaves
        the machine untouched and the caller single-steps the record
        through the generic miss path.  On success the closure commits
        the exact reference side effects — placement observation, home
        resolution, per-line serialization (``line_busy``), directory
        read (sharers/owner/E-grant), classifier hook, LLC LRU touch,
        the L1 fill with a locally-disposable victim — and returns the
        access's total latency (``result.latency + l1_latency``).
        """
        if not (self._replica_batching_guards() and self._stock_eviction_hooks()):
            return None
        if not self._home_service_guards():
            return None
        config = self.config
        l1_latency = config.l1_latency
        tag_latency = config.llc_tag_latency
        data_latency = config.llc_data_latency
        stats = self.stats
        counters = stats.counters
        latency_buckets = stats.latency
        miss_status = stats.miss_status
        energy_counts = stats.energy_counts
        l1i = self.l1i
        l1d = self.l1d
        slices = self.slices
        placement = self.placement
        peek_home = placement.peek_home
        observe_access = placement.observe_access
        active_home = self._active_home
        line_busy = self._line_busy
        replica_slice_for = self.replica_slice_for
        home_of_cached_line = self._home_of_cached_line
        should_replicate = self.should_replicate
        MODIFIED = MESIState.MODIFIED
        EXCLUSIVE = MESIState.EXCLUSIVE
        SHARED = MESIState.SHARED
        LLC_HOME_HIT = MissStatus.LLC_HOME_HIT
        L1_HIT_TIME = stat_names.L1_HIT_TIME
        L1_TO_LLC_HOME = stat_names.L1_TO_LLC_HOME
        LLC_HOME_WAITING = stat_names.LLC_HOME_WAITING
        LLC_HOME_TO_SHARERS = stat_names.LLC_HOME_TO_SHARERS
        LLC_HOME_TO_OFFCHIP = stat_names.LLC_HOME_TO_OFFCHIP
        L1I_READ = energy_events.L1I_READ
        L1D_READ = energy_events.L1D_READ
        L1I_WRITE = energy_events.L1I_WRITE
        L1D_WRITE = energy_events.L1D_WRITE
        LLC_TAG_READ = energy_events.LLC_TAG_READ
        LLC_DATA_READ = energy_events.LLC_DATA_READ
        LLC_DATA_WRITE = energy_events.LLC_DATA_WRITE
        DIR_READ = energy_events.DIR_READ
        DIR_WRITE = energy_events.DIR_WRITE

        homes_depend_on_requester = placement.homes_depend_on_requester

        def home_step(core, line_addr, is_ifetch, now):
            # -- prechecks: all pure; None leaves the machine untouched --
            if is_ifetch and homes_depend_on_requester:
                # Per-cluster instruction homes skip the _active_home
                # bookkeeping; keep that branch on the generic path.
                return None
            array = (l1i if is_ifetch else l1d)[core]._array
            if array.lookup(line_addr) is not None:
                return None  # L1 hit / write upgrade: not this path
            llc = slices[core]
            entry = llc.home(line_addr)
            if entry is None:
                return None  # remote home or off-chip miss
            if peek_home(line_addr, core, is_ifetch) != core:
                return None  # resolution would land (or migrate) elsewhere
            current = active_home.get(line_addr)
            if current is not None and current != core:
                return None  # resolution would migrate the old home
            owner = entry.owner
            if owner is not None and owner != core:
                return None  # remote owner: the downgrade crosses the mesh
            victim = array.victim_for(line_addr)
            victim_replica = None
            victim_home = None
            if victim is not None:
                victim_replica = slices[
                    replica_slice_for(core, victim.line_addr)
                ].replica(victim.line_addr)
                if victim_replica is None:
                    if home_of_cached_line(core, victim.line_addr, is_ifetch) != core:
                        return None  # victim ack would cross the mesh
                    victim_home = llc.home(victim.line_addr)
            # -- commit: mirrors access() for this disposition exactly --
            energy_counts[L1I_READ if is_ifetch else L1D_READ] += 1
            counters["l1i_misses" if is_ifetch else "l1d_misses"] += 1
            # local_lookup: the local slice holds the home entry, so the
            # probe is the home access itself (zero extra cost/energy).
            observe_access(line_addr, core, is_ifetch)
            active_home[line_addr] = core
            busy_key = (core, line_addr)
            busy_until = line_busy.get(busy_key, 0.0)
            wait = busy_until - now if busy_until > now else 0.0
            latency_buckets[LLC_HOME_WAITING] += wait
            t = now + wait
            energy_counts[LLC_TAG_READ] += 1
            energy_counts[DIR_READ] += 1
            t += tag_latency
            counters["llc_home_hits"] += 1
            llc.touch(entry)
            # _service_read with a local (or absent) owner: no downgrade,
            # no sharer latency.
            members_before = entry.sharers.members()
            only_sharer = not (members_before - {core})
            entry.sharers.add(core)
            if only_sharer:
                grant = EXCLUSIVE
                entry.owner = core
            else:
                grant = SHARED
            should_replicate(entry, core, False, is_ifetch, only_sharer)
            # replica_would_help(home == core) is False under the guards:
            # no replica is created, whatever the classifier said.
            energy_counts[LLC_DATA_READ] += 1
            energy_counts[DIR_WRITE] += 1
            t += data_latency
            line_busy[busy_key] = t
            total = t - now
            home_component = total - wait - 0.0 - 0.0
            if home_component < 0.0:
                home_component = 0.0
            latency_buckets[L1_TO_LLC_HOME] += home_component
            latency_buckets[LLC_HOME_TO_SHARERS] += 0.0
            latency_buckets[LLC_HOME_TO_OFFCHIP] += 0.0
            # _fill_l1 with the precomputed victim (no mutation happened
            # between the precheck and here, so it is still the victim).
            if victim is not None:
                array.remove(victim.line_addr)
            l1_entry = L1Line(line_addr, grant)
            array.insert(l1_entry)
            energy_counts[L1I_WRITE if is_ifetch else L1D_WRITE] += 1
            replica = llc.replica(line_addr)
            if replica is not None:
                replica.l1_copy = True
            if victim is not None:
                counters["l1_evictions"] += 1
                dirty = victim.dirty or victim.state is MODIFIED
                if victim_replica is not None:
                    # Merge arm of _notify_home_of_l1_eviction.
                    victim_replica.l1_copy = False
                    if dirty:
                        victim_replica.dirty = True
                        if victim_replica.state.writable:
                            victim_replica.state = MODIFIED
                        energy_counts[LLC_DATA_WRITE] += 1
                elif victim_home is not None:
                    # Local-home ack arm (no mesh: victim home == core).
                    victim_home.sharers.remove(core)
                    if victim_home.owner == core:
                        victim_home.owner = None
                        victim_home.state = SHARED
                    if dirty:
                        victim_home.dirty = True
                        energy_counts[LLC_DATA_WRITE] += 1
                    energy_counts[DIR_WRITE] += 1
            miss_status[LLC_HOME_HIT] += 1
            latency_buckets[L1_HIT_TIME] += l1_latency
            return total + l1_latency

        return home_step

    def make_vector_access(self, charge_gaps: bool = False):
        """Array-at-a-time entry point for the vector simulation kernel.

        Returns a closure with the exact ``run_hits`` contract of
        :meth:`make_batched_access` — ``run_vector(core, decoded, index,
        stop, now, limit, strict) -> (index, now, yielded)`` — that
        executes whole *pure-L1-hit spans* as numpy array operations
        instead of a per-record Python loop:

        * a **span oracle** proves records hittable in bulk: during a
          span of L1 hits, L1 membership and line writability are
          invariant (hits never evict; writes only land on writable
          lines, and MODIFIED stays writable), so a sorted snapshot of
          each L1 array plus ``searchsorted`` membership/writability
          tests classifies an arbitrary window of upcoming records at
          once.  The first non-hit (miss, or write needing an upgrade)
          ends the span;
        * **per-record completion times** replay the reference clock
          chain exactly: the reference advances ``now = (now + gap) +
          l1_latency`` per record — two separately rounded float adds —
          and ``np.cumsum`` (sequential accumulation, never pairwise)
          over the interleaved ``(gap, latency)`` increments performs
          the identical sequence of float64 adds.  The resulting clock
          vector matches the reference bit-for-bit even when ``now``
          carries a fractional DRAM-queue component, so truncating the
          span at the scheduling limit with one ``searchsorted`` over
          ``t`` reproduces the reference per-record yield check;
        * **LRU replay** commits the snapshot-validated hits exactly:
          the reference bumps the array clock once per hit and stamps
          the entry, so per array ``_clock += n`` and each touched line
          gets ``last_use = clock_before + (1-based ordinal of its last
          hit)`` — computed with one ``np.unique`` over the reversed
          hit sequence.  Written lines go MODIFIED/dirty (idempotent);
        * the **stats flush** per span is identical to the batched
          flush for the same records (integer counter/energy adds plus
          one ``gap_prefix`` Compute charge).

        Everything that is not a pure L1 hit delegates: short spans and
        replica hits go through the captured :meth:`make_batched_access`
        closure (per-record, replica fast path included), local-home
        read hits through :meth:`_make_home_service`, and anything else
        returns to the kernel for single-stepping.  Returns ``None`` —
        the vector kernel then falls back to the batched kernel — when
        batching itself is unavailable or when ``charge_gaps`` is set
        (fractional gaps make the reference Compute accumulation order
        observable, which array summation cannot reproduce).
        """
        if charge_gaps:
            return None
        run_hits = self.make_batched_access(charge_gaps=False)
        if run_hits is None:
            return None
        home_step = self._make_home_service()
        l1_latency = self.config.l1_latency
        stats = self.stats
        counters = stats.counters
        latency_buckets = stats.latency
        miss_status = stats.miss_status
        energy_counts = stats.energy_counts
        l1i_caches = self.l1i
        l1d_caches = self.l1d
        min_span = self.VECTOR_MIN_SPAN
        min_budget = min_span * l1_latency
        INFINITY = float("inf")
        IFETCH_CODE = int(AccessType.IFETCH)
        WRITE_CODE = int(AccessType.WRITE)
        IFETCH = AccessType.IFETCH
        WRITE = AccessType.WRITE
        MODIFIED = MESIState.MODIFIED
        L1_HIT = MissStatus.L1_HIT
        COMPUTE = stat_names.COMPUTE
        L1_HIT_TIME = stat_names.L1_HIT_TIME
        L1I_READ = energy_events.L1I_READ
        L1D_READ = energy_events.L1D_READ
        L1D_WRITE = energy_events.L1D_WRITE

        def snapshot(array):
            """Sorted (lines, writability) view of one L1 array."""
            sets = array._sets
            addrs = [line_addr for cache_set in sets for line_addr in cache_set]
            writable = [
                entry.state.writable
                for cache_set in sets
                for entry in cache_set.values()
            ]
            lines = np.array(addrs, dtype=np.int64)
            order = np.argsort(lines)
            return lines[order], np.asarray(writable, dtype=bool)[order]

        def membership(sorted_lines, seg_lines):
            """(hit mask, clipped insertion index) for a record window."""
            size = sorted_lines.shape[0]
            if size == 0:
                zeros = np.zeros(seg_lines.shape[0], dtype=np.intp)
                return np.zeros(seg_lines.shape[0], dtype=bool), zeros
            idx = np.searchsorted(sorted_lines, seg_lines)
            np.minimum(idx, size - 1, out=idx)
            return sorted_lines[idx] == seg_lines, idx

        def replay_lru(array, seq):
            """Commit a pure-hit sequence's exact LRU effects on one array.

            The reference bumps ``_clock`` once per hit and stamps the
            entry; only each line's *last* hit is observable, at
            ``clock_before + its 1-based hit ordinal``.
            """
            base = array._clock
            n = seq.shape[0]
            uniq, first_pos = np.unique(seq[::-1], return_index=True)
            last_ordinal = n - first_pos
            sets = array._sets
            set_index = array._geometry.set_index
            for line_addr, ordinal in zip(uniq.tolist(), last_ordinal.tolist()):
                sets[set_index(line_addr)][line_addr].last_use = base + ordinal
            array._clock = base + n

        def run_vector(core, decoded, index, stop, now, limit, strict):
            types_arr = decoded.types_array
            lines_arr = decoded.lines_array
            gaps_arr = decoded.gaps_array
            gap_prefix = decoded.gap_prefix
            atypes = decoded.atypes
            lines = decoded.lines
            gaps = decoded.gaps
            data_array = l1d_caches[core]._array
            instr_array = l1i_caches[core]._array
            d_snap = None
            i_snap = None
            while True:
                # ---- vectorized pure-L1-hit span --------------------------
                first_hit = False
                if stop - index >= min_span and limit - now >= min_budget:
                    # Scalar pre-gate: only pay for numpy planning when
                    # both the first record and the record at
                    # ``min_span - 1`` are L1 hits right now.  During a
                    # pure-hit span membership and writability never
                    # improve (hits don't insert lines; a non-writable
                    # line can't become writable without a miss), so a
                    # currently-unhittable record there proves no
                    # committable span exists — skipping two snapshot
                    # builds and a window oracle.
                    for probe in (index, index + min_span - 1):
                        atype0 = atypes[probe]
                        if atype0 is IFETCH:
                            entry0 = instr_array.lookup(lines[probe])
                            first_hit = entry0 is not None
                        else:
                            entry0 = data_array.lookup(lines[probe])
                            first_hit = entry0 is not None and (
                                atype0 is not WRITE or entry0.state.writable
                            )
                        if not first_hit:
                            break
                if first_hit:
                    if d_snap is None:
                        d_snap = snapshot(data_array)
                    if i_snap is None:
                        i_snap = snapshot(instr_array)
                    d_lines, d_writable = d_snap
                    i_lines, i_writable = i_snap
                    # Plan: grow a window until the first non-hit (or stop),
                    # so short spans never pay for a full-run oracle.
                    # The scheduling limit bounds how far a span can
                    # commit — completion times grow by at least
                    # ``l1_latency`` per record — so don't classify
                    # records the limit truncation would discard anyway.
                    plan_stop = stop
                    if limit != INFINITY:
                        budget_cap = index + int((limit - now) / l1_latency) + 2
                        if budget_cap < plan_stop:
                            plan_stop = budget_cap
                    n_hits = 0
                    window = 64
                    pos = index
                    while pos < plan_stop:
                        end = (
                            plan_stop
                            if plan_stop - pos < window
                            else pos + window
                        )
                        seg_lines = lines_arr[pos:end]
                        seg_types = types_arr[pos:end]
                        d_hit, d_idx = membership(d_lines, seg_lines)
                        is_write = seg_types == WRITE_CODE
                        if is_write.any():
                            ok = d_hit & (~is_write | d_writable[d_idx])
                        else:
                            ok = d_hit
                        is_instr = seg_types == IFETCH_CODE
                        if is_instr.any():
                            i_hit, _ = membership(i_lines, seg_lines)
                            ok = np.where(is_instr, i_hit, ok)
                        if not ok.all():
                            n_hits += int(np.argmin(ok))
                            break
                        n_hits += end - pos
                        pos = end
                        window <<= 3
                    if n_hits >= min_span:
                        # Exact per-record completion times: the
                        # reference advances ``now = (now + gap) +
                        # l1_latency``, two separately rounded float
                        # adds per record.  ``np.cumsum`` (sequential
                        # accumulation, never pairwise) over the
                        # interleaved (gap, latency) increments performs
                        # the identical sequence of float64 adds, so the
                        # clocks match the reference bit-for-bit even
                        # when ``now`` carries a fractional DRAM-queue
                        # component or the gaps are themselves
                        # fractional.
                        incr = np.empty(2 * n_hits + 1, dtype=np.float64)
                        incr[0] = now
                        incr[1::2] = gaps_arr[index : index + n_hits]
                        incr[2::2] = l1_latency
                        t = np.cumsum(incr)[2::2]
                        if limit == INFINITY:
                            n = n_hits
                            yielded = False
                        else:
                            # First record whose completion triggers the
                            # reference yield check ends the span.
                            k = int(
                                np.searchsorted(
                                    t, limit, "right" if strict else "left"
                                )
                            )
                            if k < n_hits:
                                n = k + 1
                                yielded = True
                            else:
                                n = n_hits
                                yielded = False
                        span_end = float(t[n - 1])
                        span_lines = lines_arr[index : index + n]
                        span_types = types_arr[index : index + n]
                        span_instr = span_types == IFETCH_CODE
                        span_write = span_types == WRITE_CODE
                        n_instr = int(np.count_nonzero(span_instr))
                        n_data = n - n_instr
                        n_write = int(np.count_nonzero(span_write))
                        if n_instr:
                            d_seq = span_lines[~span_instr]
                            i_seq = span_lines[span_instr]
                        else:
                            d_seq = span_lines
                            i_seq = None
                        if n_data:
                            replay_lru(data_array, d_seq)
                        if n_instr:
                            replay_lru(instr_array, i_seq)
                        if n_write:
                            # Writes only landed on writable lines, and
                            # MODIFIED stays writable: the snapshot's
                            # writability view remains valid.
                            written = np.unique(span_lines[span_write])
                            lookup = data_array.lookup
                            for line_addr in written.tolist():
                                entry = lookup(line_addr)
                                entry.state = MODIFIED
                                entry.dirty = True
                        run_gaps = float(gap_prefix[index + n] - gap_prefix[index])
                        if run_gaps:
                            latency_buckets[COMPUTE] += run_gaps
                        latency_buckets[L1_HIT_TIME] += n * l1_latency
                        miss_status[L1_HIT] += n
                        if n_data:
                            counters["l1d_hits"] += n_data
                            energy_counts[L1D_READ] += n_data
                        if n_instr:
                            counters["l1i_hits"] += n_instr
                            energy_counts[L1I_READ] += n_instr
                        if n_write:
                            energy_counts[L1D_WRITE] += n_write
                        index += n
                        now = span_end
                        if yielded:
                            return index, now, True
                        if index >= stop:
                            return index, now, False
                        # A pure-hit span leaves L1 membership (and the
                        # writability of every snapshotted line) intact:
                        # the snapshots stay valid for the next attempt.
                # ---- per-record delegation: batched closure ---------------
                new_index, now, yielded = run_hits(
                    core, decoded, index, stop, now, limit, strict
                )
                if new_index != index:
                    # Replica fills change L1 membership.
                    d_snap = None
                    i_snap = None
                    index = new_index
                if yielded:
                    return index, now, True
                if index >= stop:
                    return index, now, False
                # ---- inline local-home read hit ---------------------------
                if home_step is None:
                    return index, now, False
                atype = atypes[index]
                if atype is WRITE:
                    return index, now, False
                is_ifetch = atype is IFETCH
                gap = gaps[index]
                issue = now + gap
                latency = home_step(core, lines[index], is_ifetch, issue)
                if latency is None:
                    return index, now, False
                if gap:
                    latency_buckets[COMPUTE] += gap
                now = issue + latency
                index += 1
                if is_ifetch:  # the L1 fill changed membership
                    i_snap = None
                else:
                    d_snap = None
                if now >= limit and (not strict or now > limit):
                    return index, now, True
                if index >= stop:
                    return index, now, False

        return run_vector

    # ------------------------------------------------------------------
    # Miss handling
    # ------------------------------------------------------------------
    def _handle_l1_miss(
        self, core: int, line_addr: int, write: bool, is_ifetch: bool, now: float
    ) -> AccessResult:
        hit, probe_cost = self.local_lookup(core, line_addr, write, is_ifetch, now)
        if probe_cost:
            self.stats.add_latency(stat_names.L1_TO_LLC_REPLICA, probe_cost)
        if hit is not None:
            self.stats.bump("llc_replica_hits")
            if self.observer is not None:
                self.observer.on_replica_access(core, line_addr, write)
            return AccessResult(
                probe_cost + hit.latency, MissStatus.LLC_REPLICA_HIT, hit.state, hit.dirty
            )
        result = self._home_request(core, line_addr, write, is_ifetch, now + probe_cost)
        result.latency += probe_cost
        return result

    def _home_request(
        self, core: int, line_addr: int, write: bool, is_ifetch: bool, now: float
    ) -> AccessResult:
        """The full request/response transaction with the home directory.

        This is the head of the miss path, hot for every kernel, so the
        per-transaction ``self`` attribute chains are bound to locals up
        front (``make_fast_access``-style specialization carried into the
        miss path; the mesh's ``send`` fast path below is shared by the
        fast and batched kernels through these bindings).
        """
        mesh_send = self.mesh.send
        latency_buckets = self.stats.latency
        line_busy = self._line_busy

        self.placement.observe_access(line_addr, core, is_ifetch)
        home = self._resolve_home(core, line_addr, is_ifetch, now)

        request_arrive = mesh_send(core, home, self._control_flits, now) \
            if home != core else now

        busy_key = (home, line_addr)
        busy_until = line_busy.get(busy_key, 0.0)
        wait = busy_until - request_arrive if busy_until > request_arrive else 0.0
        latency_buckets[stat_names.LLC_HOME_WAITING] += wait
        t = request_arrive + wait

        t, status, grant, sharer_latency, offchip_latency = self._home_access(
            home, core, line_addr, write, is_ifetch, t
        )
        line_busy[busy_key] = t

        response_arrive = mesh_send(home, core, self._data_flits, t) \
            if home != core else t
        total = response_arrive - now

        home_component = total - wait - sharer_latency - offchip_latency
        if home_component < 0.0:
            home_component = 0.0
        latency_buckets[stat_names.L1_TO_LLC_HOME] += home_component
        latency_buckets[stat_names.LLC_HOME_TO_SHARERS] += sharer_latency
        latency_buckets[stat_names.LLC_HOME_TO_OFFCHIP] += offchip_latency
        return AccessResult(total, status, grant)

    def _home_access(
        self, home: int, core: int, line_addr: int, write: bool, is_ifetch: bool, t: float
    ) -> tuple[float, MissStatus, MESIState, float, float]:
        """Directory + data actions at the home slice.

        Returns ``(finish_time, status, granted_state, sharer_latency,
        offchip_latency)``.
        """
        llc = self.slices[home]
        self.stats.energy_event(energy_events.LLC_TAG_READ)
        self.stats.energy_event(energy_events.DIR_READ)
        t += self.config.llc_tag_latency

        entry = llc.home(line_addr)
        offchip_latency = 0.0
        if entry is None:
            status = MissStatus.OFF_CHIP_MISS
            self.stats.bump("offchip_misses")
            entry, fetch_latency = self._fetch_from_dram(home, line_addr, t)
            offchip_latency = fetch_latency
            t += fetch_latency
        else:
            status = MissStatus.LLC_HOME_HIT
            self.stats.bump("llc_home_hits")
            llc.touch(entry)

        if self.observer is not None:
            self.observer.on_llc_home_access(core, line_addr, write)

        sharer_latency = 0.0
        if write:
            grant, sharer_latency = self._service_write(home, core, entry, t)
        else:
            grant, sharer_latency = self._service_read(home, core, entry, is_ifetch, t)
        t += sharer_latency

        self.stats.energy_event(energy_events.LLC_DATA_READ)
        self.stats.energy_event(energy_events.DIR_WRITE)
        t += self.config.llc_data_latency
        return t, status, grant, sharer_latency, offchip_latency

    def _service_read(
        self, home: int, core: int, entry: HomeEntry, is_ifetch: bool, t: float
    ) -> tuple[MESIState, float]:
        """Read at the home: downgrade any remote owner, grant S/E."""
        sharer_latency = 0.0
        if entry.owner is not None and entry.owner != core:
            sharer_latency = self._downgrade_owner(home, entry, t)
        members_before = entry.sharers.members()
        only_sharer = not (members_before - {core})
        entry.sharers.add(core)
        grant = read_grant_state(1 if only_sharer else entry.sharers.count)
        if grant == MESIState.EXCLUSIVE:
            entry.owner = core
        replicate = self.should_replicate(entry, core, False, is_ifetch, only_sharer)
        if replicate and self.replica_would_help(home, core, entry.line_addr):
            self.create_replica(core, entry.line_addr, grant, False, is_ifetch, t)
        return grant, sharer_latency

    def _service_write(
        self, home: int, core: int, entry: HomeEntry, t: float
    ) -> tuple[MESIState, float]:
        """Write at the home: invalidate every other copy, grant M."""
        members_before = entry.sharers.members()
        only_sharer = not (members_before - {core})
        sharer_latency = self._invalidate_for_write(home, core, entry, t)
        replicate = self.should_replicate(entry, core, True, False, only_sharer)
        entry.sharers.clear()
        entry.sharers.add(core)
        entry.owner = core
        entry.state = MESIState.MODIFIED
        entry.dirty = True
        if replicate and self.replica_would_help(home, core, entry.line_addr):
            self.create_replica(core, entry.line_addr, MESIState.MODIFIED, True, False, t)
        return MESIState.MODIFIED, sharer_latency

    def _invalidate_for_write(
        self, home: int, writer: int, entry: HomeEntry, t: float
    ) -> float:
        """Invalidate all sharers' copies; returns the max ack round trip.

        The writer's own L1 copy survives (it receives the M grant), but a
        writer's LLC replica in S is invalidated like any other replica.
        ACKwise overflow broadcasts the invalidation to every core.
        """
        members = entry.sharers.members()
        if entry.sharers.precise:
            targets = set(members)
        else:
            targets = set(range(self.config.num_cores))
            self.stats.bump("broadcast_invalidations")
        targets.discard(writer)

        line_addr = entry.line_addr
        max_rtt = 0.0
        for target in sorted(targets):
            inval_arrive = self.mesh.send(home, target, self._control_flits, t) \
                if target != home else t
            self.stats.bump("invalidations_sent")
            had_copy, dirty, replica_reuse = self.invalidate_local_copies(
                target, line_addr, inval_arrive)
            if replica_reuse is not None:
                self._classifier_invalidated(entry, target, replica_reuse)
            if not had_copy:
                # Broadcast probe of a non-holder: no acknowledgement needed
                # (ACKwise counts acks only from true sharers).
                continue
            flits = self._data_flits if dirty else self._control_flits
            ack_arrive = self.mesh.send(target, home, flits, inval_arrive) \
                if target != home else inval_arrive
            if dirty:
                entry.dirty = True
                self.stats.bump("dirty_writebacks")
            rtt = ack_arrive - t
            if rtt > max_rtt:
                max_rtt = rtt
        # The writer is the requester: no invalidation message is needed,
        # but a writer-side LLC replica in S must be dropped locally.
        _had, _dirty, writer_reuse = self._invalidate_replica_only(writer, line_addr, t)
        if writer_reuse is not None:
            self._classifier_invalidated(entry, writer, writer_reuse)
        self._classifier_after_write(entry, writer, members)
        return max_rtt

    def _invalidate_replica_only(
        self, target: int, line_addr: int, now: float
    ) -> tuple[bool, bool, Optional[int]]:
        """Invalidate only the LLC replica of the *writer* (keep its L1)."""
        return False, False, None  # base machine: no replicas

    def _downgrade_owner(self, home: int, entry: HomeEntry, t: float) -> float:
        """Ask the E/M owner to downgrade to S and write back dirty data."""
        owner = entry.owner
        assert owner is not None
        arrive = self.mesh.send(home, owner, self._control_flits, t) if owner != home else t
        dirty = self._downgrade_local_copies(owner, entry.line_addr)
        self.stats.bump("downgrades")
        flits = self._data_flits if dirty else self._control_flits
        ack = self.mesh.send(owner, home, flits, arrive) if owner != home else arrive
        if dirty:
            entry.dirty = True
            self.stats.bump("dirty_writebacks")
        entry.owner = None
        entry.state = MESIState.SHARED
        return ack - t

    def _downgrade_local_copies(self, target: int, line_addr: int) -> bool:
        """Downgrade M/E copies in ``target``'s hierarchy; True if dirty."""
        dirty = self.l1d[target].downgrade(line_addr)
        # Instruction lines can hold EXCLUSIVE too (sole first reader).
        dirty = self.l1i[target].downgrade(line_addr) or dirty
        self.stats.energy_event(energy_events.L1D_READ)
        replica = self.slices[self.replica_slice_for(target, line_addr)].replica(line_addr)
        if replica is not None and replica.state.writable:
            dirty = dirty or replica.dirty or replica.state == MESIState.MODIFIED
            replica.state = MESIState.SHARED
            replica.dirty = False
            self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        return dirty

    # -- classifier notification points (overridden by the locality scheme) ----
    def _classifier_invalidated(self, entry: HomeEntry, core: int, replica_reuse: int) -> None:
        """A replica belonging to ``core`` was invalidated by a write."""

    def _classifier_after_write(self, entry: HomeEntry, writer: int, sharers) -> None:
        """Post-invalidation classifier bookkeeping for a write."""

    def _classifier_replica_evicted(self, entry: HomeEntry, core: int, replica_reuse: int) -> None:
        """A replica belonging to ``core`` was evicted for capacity."""

    # ------------------------------------------------------------------
    # DRAM path
    # ------------------------------------------------------------------
    def _fetch_from_dram(self, home: int, line_addr: int, t: float) -> tuple[HomeEntry, float]:
        """Fetch a line from memory and install the home entry."""
        self._make_room(home, line_addr, t)
        controller, _, dram_latency = self.dram.read(line_addr, t)
        ctrl_core = controller.core_id
        request_arrive = self.mesh.send(home, ctrl_core, self._control_flits, t) \
            if ctrl_core != home else t
        response = self.mesh.send(
            ctrl_core, home, self._data_flits, request_arrive + dram_latency
        ) if ctrl_core != home else request_arrive + dram_latency
        self.stats.energy_event(energy_events.DRAM_READ)
        entry = HomeEntry(
            line_addr,
            make_sharer_tracker(self.config.num_cores, self.config.ackwise_pointers),
            state=MESIState.SHARED,
        )
        entry.classifier = self._new_classifier_state()
        self.slices[home].insert(entry)
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        self.stats.energy_event(energy_events.LLC_DATA_WRITE)
        return entry, response - t

    def _new_classifier_state(self):
        """Classifier state for a fresh home entry (locality scheme only)."""
        return None

    def _writeback_to_dram(self, slice_core: int, line_addr: int, t: float) -> None:
        """Send a dirty line off chip (off the critical path)."""
        controller = self.dram.controller_for(line_addr)
        if controller.core_id != slice_core:
            self.mesh.send(slice_core, controller.core_id, self._data_flits, t)
        self.dram.write(line_addr, t)
        self.stats.energy_event(energy_events.DRAM_WRITE)
        self.stats.bump("dram_writebacks")

    # ------------------------------------------------------------------
    # LLC slice room-making and evictions
    # ------------------------------------------------------------------
    def _make_room(self, slice_core: int, line_addr: int, t: float) -> None:
        victim = self.slices[slice_core].victim_for(line_addr)
        if victim is not None:
            self.evict_slice_entry(slice_core, victim, t)

    def _evict_home_entry(self, slice_core: int, entry: HomeEntry, t: float) -> None:
        """Evict a home line: back-invalidate all sharers, write back dirty."""
        self.stats.bump("home_evictions")
        line_addr = entry.line_addr
        members = entry.sharers.members()
        if entry.sharers.precise:
            targets = set(members)
        else:
            targets = set(range(self.config.num_cores))
        dirty = entry.dirty
        for target in sorted(targets):
            if target != slice_core:
                self.mesh.send(slice_core, target, self._control_flits, t)
            had_copy, copy_dirty, _replica_reuse = self.invalidate_local_copies(
                target, line_addr, t)
            if had_copy:
                self.stats.bump("back_invalidations")
                flits = self._data_flits if copy_dirty else self._control_flits
                if target != slice_core:
                    self.mesh.send(target, slice_core, flits, t)
                dirty = dirty or copy_dirty
        self.slices[slice_core].remove(line_addr)
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        if dirty:
            self.stats.energy_event(energy_events.LLC_DATA_READ)
            self._writeback_to_dram(slice_core, line_addr, t)
        self._line_busy.pop((slice_core, line_addr), None)
        self._active_home.pop(line_addr, None)
        if self.observer is not None:
            self.observer.on_home_eviction(line_addr)

    def _evict_replica_entry(self, slice_core: int, entry: ReplicaEntry, t: float) -> None:
        """Evict a replica: back-invalidate the local L1, notify the home."""
        self.stats.bump("replica_evictions")
        line_addr = entry.line_addr
        dirty = entry.dirty or entry.state == MESIState.MODIFIED
        for child in self._replica_children(slice_core):
            for l1 in (self.l1d[child], self.l1i[child]):
                l1_entry = l1.invalidate(line_addr)
                if l1_entry is not None:
                    self.stats.bump("back_invalidations")
                    dirty = dirty or l1_entry.dirty or l1_entry.state == MESIState.MODIFIED
        self.slices[slice_core].remove(line_addr)
        home = self._home_of_cached_line(slice_core, line_addr)
        flits = self._data_flits if dirty else self._control_flits
        if home != slice_core:
            self.mesh.send(slice_core, home, flits, t)
        home_entry = self.slices[home].home(line_addr)
        if home_entry is not None:
            self._classifier_replica_evicted(home_entry, slice_core, entry.reuse.value)
            home_entry.sharers.remove(slice_core)
            if home_entry.owner == slice_core:
                home_entry.owner = None
                home_entry.state = MESIState.SHARED
            if dirty:
                home_entry.dirty = True
                self.stats.energy_event(energy_events.LLC_DATA_WRITE)
            self.stats.energy_event(energy_events.DIR_WRITE)

    # ------------------------------------------------------------------
    # L1 fills and evictions
    # ------------------------------------------------------------------
    def _fill_l1(
        self,
        core: int,
        line_addr: int,
        state: MESIState,
        write: bool,
        is_ifetch: bool,
        now: float,
        dirty: bool = False,
    ) -> None:
        l1 = self.l1i[core] if is_ifetch else self.l1d[core]
        entry, victim = l1.insert(line_addr, state)
        if dirty:
            entry.dirty = True
        if write:
            entry.state = MESIState.MODIFIED
            entry.dirty = True
        self._l1_energy(is_ifetch, read=False)
        replica = self.slices[self.replica_slice_for(core, line_addr)].replica(line_addr)
        if replica is not None:
            replica.l1_copy = True
        if victim is not None:
            self.stats.bump("l1_evictions")
            self.handle_l1_eviction(core, victim, is_ifetch, now)

    def _notify_home_of_l1_eviction(
        self, core: int, victim: L1Line, is_ifetch: bool, now: float
    ) -> None:
        """Default L1-victim path: merge into a local replica if one exists,
        otherwise acknowledge (and write back) to the home (Section 2.2.3)."""
        line_addr = victim.line_addr
        dirty = victim.dirty or victim.state == MESIState.MODIFIED
        replica = self.slices[self.replica_slice_for(core, line_addr)].replica(line_addr)
        if replica is not None:
            # Dirty data merges into the replica; the core remains a sharer.
            replica.l1_copy = False
            if dirty:
                replica.dirty = True
                if replica.state.writable:
                    replica.state = MESIState.MODIFIED
                self.stats.energy_event(energy_events.LLC_DATA_WRITE)
            return
        home = self._home_of_cached_line(core, line_addr, is_ifetch)
        flits = self._data_flits if dirty else self._control_flits
        if home != core:
            self.mesh.send(core, home, flits, now)
        home_entry = self.slices[home].home(line_addr)
        if home_entry is not None:
            home_entry.sharers.remove(core)
            if home_entry.owner == core:
                home_entry.owner = None
                home_entry.state = MESIState.SHARED
            if dirty:
                home_entry.dirty = True
                self.stats.energy_event(energy_events.LLC_DATA_WRITE)
            self.stats.energy_event(energy_events.DIR_WRITE)

    # ------------------------------------------------------------------
    # Home resolution and migration (R-NUCA support)
    # ------------------------------------------------------------------
    def _resolve_home(self, core: int, line_addr: int, is_ifetch: bool, now: float) -> int:
        desired = self.placement.home_for(line_addr, core, is_ifetch)
        if is_ifetch and self.placement.homes_depend_on_requester:
            # Per-cluster instruction copies are independent read-only homes.
            return desired
        current = self._active_home.get(line_addr)
        if current is not None and current != desired:
            self._migrate_home(line_addr, current, desired, now)
            self.stats.bump("rehomings")
        self._active_home[line_addr] = desired
        return desired

    def _migrate_home(self, line_addr: int, old_home: int, new_home: int, now: float) -> None:
        """R-NUCA private→shared transition: flush the line from its old home."""
        entry = self.slices[old_home].home(line_addr)
        if entry is not None:
            self._evict_home_entry(old_home, entry, now)

    def _home_of_cached_line(self, core: int, line_addr: int, is_ifetch: bool = False) -> int:
        """Home of a line already resident in a cache (no learning side effects)."""
        if is_ifetch and self.placement.homes_depend_on_requester:
            return self.placement.home_for(line_addr, core, True)
        current = self._active_home.get(line_addr)
        if current is not None:
            return current
        return self.placement.home_for(line_addr, core, False)

    # ------------------------------------------------------------------
    # Temporal Locality Hints (the Section 2.2.4 alternative)
    # ------------------------------------------------------------------
    def _maybe_send_tla_hint(
        self, core: int, line_addr: int, is_ifetch: bool, now: float
    ) -> None:
        """Every Nth L1 hit refreshes the backing LLC entry's LRU state.

        This is the TLA mechanism the paper's modified-LRU replaces: it
        achieves the same goal (the LLC learns which lines have live L1
        copies) but pays a hint message per interval (network traffic the
        in-cache directory makes unnecessary)."""
        self._tla_hit_counts[core] += 1
        if self._tla_hit_counts[core] % self.config.tla_hint_interval:
            return
        replica_slice = self.replica_slice_for(core, line_addr)
        llc = self.slices[replica_slice]
        target_entry = llc.lookup(line_addr)
        target_slice = replica_slice
        if target_entry is None:
            target_slice = self._home_of_cached_line(core, line_addr, is_ifetch)
            target_entry = self.slices[target_slice].home(line_addr)
        if target_entry is None:
            return
        if target_slice != core:
            self.mesh.send(core, target_slice, self._control_flits, now)
        self.slices[target_slice].touch(target_entry)
        self.stats.energy_event(energy_events.LLC_TAG_WRITE)
        self.stats.bump("tla_hints_sent")

    # ------------------------------------------------------------------
    # Misc helpers
    # ------------------------------------------------------------------
    def _l1_energy(self, is_ifetch: bool, read: bool) -> None:
        if is_ifetch:
            self.stats.energy_event(energy_events.L1I_READ if read else energy_events.L1I_WRITE)
        else:
            self.stats.energy_event(energy_events.L1D_READ if read else energy_events.L1D_WRITE)

    def finalize(self) -> None:
        """Fold network/DRAM hardware counters into the energy counts."""
        self.stats.energy_counts[energy_events.ROUTER_FLIT] = self.mesh.router_flit_traversals
        self.stats.energy_counts[energy_events.LINK_FLIT] = self.mesh.link_flit_traversals
        self.stats.counters["mesh_messages"] = self.mesh.messages_sent
        self.stats.counters["mesh_flits"] = self.mesh.total_flits
