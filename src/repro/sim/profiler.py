"""Run-length profiler for the Figure 1 motivation study.

The paper defines **run-length** as the number of accesses to a cache
line at the LLC from one core before a conflicting access by another
core (where at least one of the two is a write) or before the line's
eviction.  Figure 1 plots, per benchmark, the distribution of LLC
accesses over (data class × run-length bucket) with buckets
[1–2], [3–9] and [≥10].

The profiler attaches to an S-NUCA run (no replication — all LLC traffic
reaches the home, exactly the vantage point the motivation study needs)
via the :class:`~repro.schemes.base.ProtocolObserver` hooks and streams
run bookkeeping per (line, core).
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.common.params import MachineConfig
from repro.common.types import LineClass
from repro.schemes.base import ProtocolObserver
from repro.schemes.snuca import SNucaScheme
from repro.sim.simulator import simulate
from repro.workloads.trace import TraceSet

#: Figure 1 run-length buckets, as (label, low, high-inclusive).
RUN_LENGTH_BUCKETS = (("[1-2]", 1, 2), ("[3-9]", 3, 9), ("[>=10]", 10, None))

#: Version stamp for stored profile payloads; bump when the profiler's
#: semantics change so stale cached profiles are never served.
PROFILE_VERSION = 1


def bucket_label(run_length: int) -> str:
    for label, low, high in RUN_LENGTH_BUCKETS:
        if run_length >= low and (high is None or run_length <= high):
            return label
    raise ValueError(f"run length {run_length} must be >= 1")


@dataclasses.dataclass
class RunLengthProfile:
    """Result of one profiling run: access mass per (class, bucket)."""

    benchmark: str
    #: (LineClass, bucket label) -> number of LLC accesses in such runs.
    mass: Counter

    def fractions(self) -> dict[tuple[LineClass, str], float]:
        total = sum(self.mass.values())
        if total == 0:
            return {}
        return {key: value / total for key, value in self.mass.items()}

    def class_fraction(self, line_class: LineClass) -> float:
        """Total access fraction belonging to one data class."""
        total = sum(self.mass.values())
        if total == 0:
            return 0.0
        class_mass = sum(
            value for (cls, _bucket), value in self.mass.items() if cls == line_class
        )
        return class_mass / total

    def high_reuse_fraction(self) -> float:
        """Fraction of LLC accesses in runs of length >= 3 (replication-worthy)."""
        total = sum(self.mass.values())
        if total == 0:
            return 0.0
        high = sum(
            value for (_cls, bucket), value in self.mass.items() if bucket != "[1-2]"
        )
        return high / total


def encode_profile(profile: RunLengthProfile) -> dict:
    """JSON-serializable payload for a profile (ResultStore caching).

    Counts are integers and the class/bucket axes are enumerable, so the
    round-trip is exact — a store-served Figure 1 is bit-identical to a
    freshly profiled one.
    """
    return {
        "profile_version": PROFILE_VERSION,
        "benchmark": profile.benchmark,
        "mass": [
            [line_class.name, bucket, count]
            for (line_class, bucket), count in sorted(
                profile.mass.items(),
                key=lambda item: (item[0][0].name, item[0][1]),
            )
        ],
    }


def decode_profile(payload) -> "RunLengthProfile | None":
    """Rebuild a profile from :func:`encode_profile` output.

    Returns ``None`` for version-skewed or malformed payloads — callers
    treat that as a cache miss and re-profile.
    """
    try:
        if payload.get("profile_version") != PROFILE_VERSION:
            return None
        mass: Counter = Counter()
        for class_name, bucket, count in payload["mass"]:
            mass[(LineClass[class_name], str(bucket))] = int(count)
        return RunLengthProfile(str(payload["benchmark"]), mass)
    except (AttributeError, KeyError, TypeError, ValueError):
        return None


class _RunLengthObserver(ProtocolObserver):
    """Tracks per-(line, core) LLC access runs."""

    def __init__(self, traces: TraceSet) -> None:
        self.traces = traces
        #: (line, core) -> current run length.
        self.open_runs: dict[int, dict[int, int]] = {}
        self.mass: Counter = Counter()

    # -- observer hooks -----------------------------------------------------
    def on_llc_home_access(self, core: int, line_addr: int, is_write: bool) -> None:
        runs = self.open_runs.setdefault(line_addr, {})
        if is_write:
            # A write conflicts with every other core's open run.
            for other_core, length in list(runs.items()):
                if other_core != core:
                    self._close(line_addr, other_core, length)
                    del runs[other_core]
        runs[core] = runs.get(core, 0) + 1

    def on_home_eviction(self, line_addr: int) -> None:
        runs = self.open_runs.pop(line_addr, None)
        if not runs:
            return
        for core, length in runs.items():
            self._close(line_addr, core, length)

    # -- bookkeeping ------------------------------------------------------------
    def _close(self, line_addr: int, core: int, length: int) -> None:
        if length < 1:
            return
        line_class = self.traces.classify(line_addr)
        self.mass[(line_class, bucket_label(length))] += length

    def finish(self) -> None:
        """Close every run still open at the end of the simulation."""
        for line_addr, runs in self.open_runs.items():
            for core, length in runs.items():
                self._close(line_addr, core, length)
        self.open_runs.clear()


def profile_run_lengths(
    config: MachineConfig, traces: TraceSet, kernel: str | None = None
) -> RunLengthProfile:
    """Run the Figure 1 profiler over one benchmark trace."""
    observer = _RunLengthObserver(traces)
    engine = SNucaScheme(config, observer)
    simulate(engine, traces, kernel=kernel)
    observer.finish()
    return RunLengthProfile(traces.name, observer.mass)
