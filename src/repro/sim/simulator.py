"""Trace-driven simulation entry point.

Cores are in-order and single-issue (Table 1): each core processes its
trace sequentially, spending the record's compute gap and then the full
memory latency of the access.  The simulator interleaves cores in global
time order (a heap keyed by each core's next-ready time) so the shared
resources' busy-until contention models — mesh links, DRAM controllers,
per-line home serialization — observe causally ordered traffic.

Barrier records implement the synchronization component of the
completion-time breakdown: a core reaching a barrier parks until every
*running* core has arrived, and its wait is charged to the
Synchronization bucket.  :class:`~repro.workloads.trace.TraceSet`
guarantees all cores carry the same number of barriers.

The event loop itself is pluggable (:mod:`repro.sim.kernel`): the
``reference`` kernel is the simple per-record baseline, the ``fast``
kernel is the hoisted/run-ahead hot path, and the ``batched`` kernel
services whole runs of same-core L1 hits per scheduler entry; all three
are bit-identical — an equivalence the :mod:`repro.testing` differential
harness enforces (continuously over fuzzed profiles in the nightly CI).
Select a kernel per call (``simulate(..., kernel="reference")``), per
process (``REPRO_SIM_KERNEL=reference``), or via the experiment CLI
(``python -m repro.experiments --kernel reference ...``).
"""

from __future__ import annotations

from repro.schemes.base import ProtocolEngine
from repro.sim.kernel import (  # noqa: F401  (re-exported for convenience)
    AUTO_KERNEL,
    DEFAULT_KERNEL,
    KERNELS,
    BatchedKernel,
    FastKernel,
    ReferenceKernel,
    SimulationKernel,
    choose_kernel,
    resolve_kernel,
)
from repro.sim.stats import SimStats
from repro.workloads.trace import TraceSet


def simulate(
    engine: ProtocolEngine,
    traces: TraceSet,
    kernel: str | SimulationKernel | None = None,
) -> SimStats:
    """Run ``traces`` through ``engine`` and return the collected stats.

    ``kernel`` selects the event-loop implementation by name
    (``"fast"``/``"batched"``/``"reference"``), instance, or class;
    ``"auto"`` probes the trace's run-length structure and picks fast vs
    batched (:func:`repro.sim.kernel.choose_kernel`); ``None`` uses the
    ``REPRO_SIM_KERNEL`` environment variable, defaulting to the fast
    kernel.
    """
    config = engine.config
    if traces.num_cores != config.num_cores:
        raise ValueError(
            f"trace has {traces.num_cores} cores but machine has {config.num_cores}"
        )
    if getattr(traces, "is_streaming", False):
        # Segmented sets cannot be materialized (resolve_kernel's auto
        # probe would decode them); the streaming loop validates window
        # coverage as chunks arrive and produces bit-identical stats.
        from repro.sim.streaming import run_streaming

        run_streaming(engine, traces, kernel)
    else:
        traces.validate_coverage()
        resolve_kernel(kernel, traces, engine).run(engine, traces)
    engine.finalize()
    stats = engine.stats
    stats.completion_time = max(stats.core_finish) if stats.core_finish else 0.0
    return stats
