"""Trace-driven simulation loop.

Cores are in-order and single-issue (Table 1): each core processes its
trace sequentially, spending the record's compute gap and then the full
memory latency of the access.  The simulator interleaves cores in global
time order (a heap keyed by each core's next-ready time) so the shared
resources' busy-until contention models — mesh links, DRAM controllers,
per-line home serialization — observe causally ordered traffic.

Barrier records implement the synchronization component of the
completion-time breakdown: a core reaching a barrier parks until every
*running* core has arrived, and its wait is charged to the
Synchronization bucket.  :class:`~repro.workloads.trace.TraceSet`
guarantees all cores carry the same number of barriers.
"""

from __future__ import annotations

import heapq

from repro.common.types import AccessType
from repro.schemes.base import ProtocolEngine
from repro.sim import stats as stat_names
from repro.sim.stats import SimStats
from repro.workloads.trace import TraceSet


def simulate(engine: ProtocolEngine, traces: TraceSet) -> SimStats:
    """Run ``traces`` through ``engine`` and return the collected stats."""
    config = engine.config
    if traces.num_cores != config.num_cores:
        raise ValueError(
            f"trace has {traces.num_cores} cores but machine has {config.num_cores}"
        )
    state = _SimulationState(engine, traces)
    state.run()
    engine.finalize()
    stats = engine.stats
    stats.completion_time = max(stats.core_finish) if stats.core_finish else 0.0
    return stats


class _SimulationState:
    """Mutable bookkeeping for one simulation run."""

    def __init__(self, engine: ProtocolEngine, traces: TraceSet) -> None:
        self.engine = engine
        self.traces = traces
        self.stats: SimStats = engine.stats
        self.num_cores = engine.config.num_cores
        self.positions = [0] * self.num_cores
        self.lengths = [len(trace) for trace in traces.cores]
        #: Cores parked at a barrier: core -> arrival time.
        self.waiting: dict[int, float] = {}
        self.finished: set[int] = set()
        self.ready: list[tuple[float, int]] = [
            (0.0, core) for core in range(self.num_cores)
        ]
        heapq.heapify(self.ready)

    def run(self) -> None:
        while self.ready:
            now, core = heapq.heappop(self.ready)
            self._step(core, now)

    def _step(self, core: int, now: float) -> None:
        index = self.positions[core]
        if index >= self.lengths[core]:
            self.finished.add(core)
            self.stats.core_finish[core] = now
            self._maybe_release_barrier()
            return
        trace = self.traces.cores[core]
        self.positions[core] = index + 1
        if trace.types[index] == AccessType.BARRIER:
            self.waiting[core] = now
            self._maybe_release_barrier()
            return
        gap = float(trace.gaps[index])
        if gap:
            self.stats.add_latency(stat_names.COMPUTE, gap)
        issue_time = now + gap
        atype = AccessType(trace.types[index])
        result = self.engine.access(core, atype, int(trace.lines[index]), issue_time)
        heapq.heappush(self.ready, (issue_time + result.latency, core))

    def _maybe_release_barrier(self) -> None:
        """Release parked cores once every running core has arrived."""
        if not self.waiting:
            return
        if len(self.waiting) + len(self.finished) < self.num_cores:
            return
        release_time = max(self.waiting.values())
        for core, arrival in self.waiting.items():
            wait = release_time - arrival
            if wait:
                self.stats.add_latency(stat_names.SYNCHRONIZATION, wait)
            heapq.heappush(self.ready, (release_time, core))
        self.waiting.clear()
