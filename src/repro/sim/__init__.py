"""Simulation engine: machine timing, statistics, profiler.

Only the statistics names are re-exported here; import
:mod:`repro.sim.simulator` and :mod:`repro.sim.profiler` directly (they
depend on the scheme engines, which in turn record into these stats —
re-exporting them here would create an import cycle).
"""

from repro.sim.stats import (
    COMPUTE,
    L1_HIT_TIME,
    L1_TO_LLC_HOME,
    L1_TO_LLC_REPLICA,
    LATENCY_BUCKETS,
    LLC_HOME_TO_OFFCHIP,
    LLC_HOME_TO_SHARERS,
    LLC_HOME_WAITING,
    SYNCHRONIZATION,
    SimStats,
)

__all__ = [
    "COMPUTE",
    "L1_HIT_TIME",
    "L1_TO_LLC_HOME",
    "L1_TO_LLC_REPLICA",
    "LATENCY_BUCKETS",
    "LLC_HOME_TO_OFFCHIP",
    "LLC_HOME_TO_SHARERS",
    "LLC_HOME_WAITING",
    "SYNCHRONIZATION",
    "SimStats",
]
