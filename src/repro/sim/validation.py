"""Closed-form latency predictions for contention-free accesses.

These are the analytic counterparts of the simulator's timing model:
for a single access on an otherwise idle machine, the latency is exactly
the sum of the Table 1 components, with zero queueing anywhere.  The
test-suite drives single accesses through the engine and asserts
equality, which pins the timing model against accidental regressions
(a misplaced latency charge shows up as an off-by-cycles failure here).
"""

from __future__ import annotations

from repro.common.params import MachineConfig
from repro.network.topology import MeshTopology


def l1_hit_latency(config: MachineConfig) -> float:
    """An L1 hit costs exactly the L1 access latency."""
    return float(config.l1_latency)


def message_latency(config: MachineConfig, hops: int, flits: int) -> float:
    """Unloaded mesh message latency: per-hop cost plus tail serialization."""
    if hops == 0:
        return 0.0
    return hops * config.hop_latency + (flits - 1)


def local_home_hit_latency(config: MachineConfig) -> float:
    """L1 miss that hits the home entry in the requester's own slice.

    No network, no sharer actions: L1 probe + LLC tag + LLC data.
    """
    return float(
        config.l1_latency + config.llc_tag_latency + config.llc_data_latency
    )


def remote_home_hit_latency(
    config: MachineConfig, requester: int, home: int, probe: bool = False
) -> float:
    """L1 miss serviced at a remote home with no sharer actions.

    ``probe`` adds the failed local-replica tag probe the locality-aware
    scheme pays before forwarding (Section 2.3.2).
    """
    topology = MeshTopology(config.num_cores)
    hops = topology.hops(requester, home)
    control = config.header_flits
    data = config.header_flits + config.cache_line_flits
    latency = (
        config.l1_latency
        + message_latency(config, hops, control)       # request
        + config.llc_tag_latency
        + config.llc_data_latency
        + message_latency(config, hops, data)          # response
    )
    if probe:
        latency += config.llc_tag_latency
    return float(latency)


def replica_hit_latency(config: MachineConfig) -> float:
    """L1 miss that hits a replica in the requester's own slice."""
    return float(
        config.l1_latency + config.llc_tag_latency + config.llc_data_latency
    )


def offchip_miss_latency(
    config: MachineConfig, requester: int, home: int, controller_tile: int,
    probe: bool = False,
) -> float:
    """Cold miss: remote home plus the DRAM round trip (no queueing)."""
    topology = MeshTopology(config.num_cores)
    request_hops = topology.hops(requester, home)
    dram_hops = topology.hops(home, controller_tile)
    control = config.header_flits
    data = config.header_flits + config.cache_line_flits
    latency = (
        config.l1_latency
        + message_latency(config, request_hops, control)
        + config.llc_tag_latency
        + message_latency(config, dram_hops, control)   # home -> controller
        + config.dram_latency_cycles
        + message_latency(config, dram_hops, data)      # controller -> home
        + config.llc_data_latency
        + message_latency(config, request_hops, data)   # response
    )
    if probe:
        latency += config.llc_tag_latency
    return float(latency)
