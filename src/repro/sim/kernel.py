"""Pluggable simulation kernels: the reference loop and the fast path.

:func:`repro.sim.simulator.simulate` drives a :class:`ProtocolEngine`
through a :class:`TraceSet` via a *kernel* — the event loop that pops the
next-ready core off a heap, charges its compute gap, issues the access
and reschedules it.  Two interchangeable kernels implement that loop:

* :class:`ReferenceKernel` — the original, deliberately simple loop.  It
  reads each record straight out of the numpy arrays and goes through
  the heap for every event.  This is the semantic baseline every other
  kernel must match bit-for-bit.

* :class:`FastKernel` — the optimized hot path.  It hoists all
  per-record conversion work out of the loop (one vectorized
  :class:`~repro.workloads.trace.DecodedTrace` pass per core), charges
  the Compute bucket once per core instead of once per record, uses the
  engine's specialized access closure
  (:meth:`~repro.schemes.base.ProtocolEngine.make_fast_access`) and
  runs a core *inline* for as long as it remains globally earliest,
  skipping heap push/pop pairs entirely.

* :class:`BatchedKernel` — the run-length hot path.  Where the fast
  kernel still pays per-record kernel overhead (a closure call plus a
  heap-front tuple comparison and several Counter updates per access),
  the batched kernel hands whole *runs* of same-core L1 hits — and,
  for replicating schemes, constant-latency local-LLC-replica hits
  (:meth:`~repro.schemes.base.ProtocolEngine._make_replica_service`) —
  to the engine's run-servicing closure
  (:meth:`~repro.schemes.base.ProtocolEngine.make_batched_access`):
  one call services every consecutive hit until the next true miss,
  upgrade, non-local victim disposal, barrier (:class:`DecodedTrace`
  ``run_stops``), or scheduling yield, and flushes the run's statistics
  once (Compute charged from the decoded ``gap_prefix`` numpy slice).
  Misses go through the same specialized fast-access path the fast
  kernel uses.  When the engine declines the specialization
  (overridden hooks, TLA hints), the batched kernel falls back to the
  fast loop wholesale.

* :class:`VectorKernel` — the array-at-a-time hot path.  Same run loop
  as the batched kernel, but runs go to the engine's *vector* closure
  (:meth:`~repro.schemes.base.ProtocolEngine.make_vector_access`),
  which proves and commits whole pure-L1-hit spans with numpy array
  operations (sorted-snapshot membership oracles, ``gap_prefix``
  completion times, exact vectorized LRU replay) and services replica
  and local-home hits per record in between.  Falls back to the
  batched kernel when the engine declines (fractional gaps, overridden
  hooks).

All kernels produce **identical** :class:`~repro.sim.stats.SimStats` —
not merely statistically equivalent: the optimized kernels process
events in exactly the order the reference kernel would, every
floating-point accumulation they batch is a sum of integer-valued cycle
counts (order-independent), and the per-event clock arithmetic keeps
the reference's exact operation grouping (float addition is not
associative).  The :mod:`repro.testing` differential harness enforces
this equivalence across schemes, workloads and seeds — and nightly over
randomized fuzzed profiles.

Kernels accept an optional ``perturb_seed``: when set, *scheduler
pushes* that are provably order-free — the time-zero seeding of the
ready heap and the simultaneous re-release of barrier-parked cores —
happen in a seeded-shuffled order (statistics accumulation keeps its
deterministic order: barrier waits may be fractional, and float sums
are order-sensitive).  The heap must normalize the push order away, so
any observable difference is a kernel bug — this is the hook behind the
``repro.testing.metamorphic`` equal-time-permutation check.
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING, Iterable

from repro.common.types import AccessType
from repro.sim import stats as stat_names

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports stats)
    from repro.schemes.base import ProtocolEngine
    from repro.workloads.trace import TraceSet


class SimulationKernel:
    """One strategy for driving an engine through a trace set.

    A kernel owns the event loop only; all machine semantics live in the
    engine.  Contract: process every record of every core in global
    ready-time order (ties broken by core id), charge compute gaps to
    the Compute bucket and barrier waits to the Synchronization bucket,
    and record each core's finish time in ``stats.core_finish``.
    """

    #: Registry key (also the CLI / config spelling).
    name = "abstract"

    def __init__(self, perturb_seed: int | None = None) -> None:
        self.perturb_seed = perturb_seed

    def run(self, engine: "ProtocolEngine", traces: "TraceSet") -> None:
        raise NotImplementedError

    # -- equal-time permutation hook ---------------------------------------
    def _rng(self) -> random.Random | None:
        if self.perturb_seed is None:
            return None
        return random.Random(self.perturb_seed)


class ReferenceKernel(SimulationKernel):
    """The original per-record loop — the semantic baseline."""

    name = "reference"

    def run(self, engine: "ProtocolEngine", traces: "TraceSet") -> None:
        state = _ReferenceState(engine, traces, self._rng())
        state.run()


class _ReferenceState:
    """Mutable bookkeeping for one reference-kernel run."""

    def __init__(
        self,
        engine: "ProtocolEngine",
        traces: "TraceSet",
        rng: random.Random | None = None,
    ) -> None:
        self.engine = engine
        self.traces = traces
        self.stats = engine.stats
        self.rng = rng
        self.num_cores = engine.config.num_cores
        self.positions = [0] * self.num_cores
        self.lengths = [len(trace) for trace in traces.cores]
        #: Cores parked at a barrier: core -> arrival time.
        self.waiting: dict[int, float] = {}
        self.finished: set[int] = set()
        seed_order = list(range(self.num_cores))
        if rng is not None:
            rng.shuffle(seed_order)
        self.ready: list[tuple[float, int]] = [(0.0, core) for core in seed_order]
        heapq.heapify(self.ready)

    def run(self) -> None:
        while self.ready:
            now, core = heapq.heappop(self.ready)
            self._step(core, now)

    def _step(self, core: int, now: float) -> None:
        index = self.positions[core]
        if index >= self.lengths[core]:
            self.finished.add(core)
            self.stats.core_finish[core] = now
            self._maybe_release_barrier()
            return
        trace = self.traces.cores[core]
        self.positions[core] = index + 1
        if trace.types[index] == AccessType.BARRIER:
            self.waiting[core] = now
            self._maybe_release_barrier()
            return
        gap = float(trace.gaps[index])
        if gap:
            self.stats.add_latency(stat_names.COMPUTE, gap)
        issue_time = now + gap
        atype = AccessType(trace.types[index])
        result = self.engine.access(core, atype, int(trace.lines[index]), issue_time)
        heapq.heappush(self.ready, (issue_time + result.latency, core))

    def _maybe_release_barrier(self) -> None:
        """Release parked cores once every running core has arrived."""
        if not self.waiting:
            return
        if len(self.waiting) + len(self.finished) < self.num_cores:
            return
        release_time = max(self.waiting.values())
        # Synchronization is charged in deterministic (arrival) order even
        # under perturbation: waits may be fractional, and float sums are
        # order-sensitive — only the heap *pushes* are provably order-free.
        for core, arrival in self.waiting.items():
            wait = release_time - arrival
            if wait:
                self.stats.add_latency(stat_names.SYNCHRONIZATION, wait)
        released = list(self.waiting)
        if self.rng is not None:
            self.rng.shuffle(released)
        for core in released:
            heapq.heappush(self.ready, (release_time, core))
        self.waiting.clear()


class FastKernel(SimulationKernel):
    """Hoisted, run-ahead event loop — bit-identical to the reference.

    Optimizations over :class:`ReferenceKernel` (each preserves event
    order and exact arithmetic; see the module docstring):

    1. per-core :class:`DecodedTrace` views kill numpy scalar extraction
       and ``AccessType(...)`` construction in the loop;
    2. the Compute bucket is charged once per core from the decoded
       trace's precomputed non-barrier gap sum;
    3. the engine's :meth:`make_fast_access` closure (when available)
       replaces the generic ``access()`` entry point, with attribute
       lookups and result-object construction hoisted out;
    4. a popped core keeps executing inline while its next event time is
       earlier than the heap front, eliminating push/pop pairs (a large
       win whenever one core runs ahead of or behind the pack).
    """

    name = "fast"

    def run(self, engine: "ProtocolEngine", traces: "TraceSet") -> None:
        stats = engine.stats
        num_cores = engine.config.num_cores
        decoded = traces.decoded()
        atypes = [d.atypes for d in decoded]
        lines = [d.lines for d in decoded]
        gaps = [d.gaps for d in decoded]
        lengths = [d.length for d in decoded]

        # Batched Compute charging is exact only for integer-valued gaps
        # (order-independent float sum); fractional gaps fall back to
        # per-record charging in reference accumulation order.
        batch_compute = all(d.gaps_integral for d in decoded)
        if batch_compute:
            total_compute = sum(d.compute_cycles for d in decoded)
            if total_compute:
                stats.add_latency(stat_names.COMPUTE, total_compute)

        fast_access = None
        maker = getattr(engine, "make_fast_access", None)
        if maker is not None:
            fast_access = maker()
        if fast_access is None:
            engine_access = engine.access

            def fast_access(core, atype, line_addr, now, _access=engine_access):
                return _access(core, atype, line_addr, now).latency

        add_latency = stats.add_latency
        core_finish = stats.core_finish
        heappush, heappop = heapq.heappush, heapq.heappop
        BARRIER = AccessType.BARRIER
        COMPUTE = stat_names.COMPUTE
        SYNCHRONIZATION = stat_names.SYNCHRONIZATION

        rng = self._rng()
        positions = [0] * num_cores
        waiting: dict[int, float] = {}
        finished = 0
        seed_order = list(range(num_cores))
        if rng is not None:
            rng.shuffle(seed_order)
        ready: list[tuple[float, int]] = [(0.0, core) for core in seed_order]
        heapq.heapify(ready)

        def release_barrier() -> None:
            release_time = max(waiting.values())
            # Charge waits in deterministic (arrival) order — see the
            # reference kernel: only heap pushes are provably order-free.
            for wcore, arrival in waiting.items():
                wait = release_time - arrival
                if wait:
                    add_latency(SYNCHRONIZATION, wait)
            released = list(waiting)
            if rng is not None:
                rng.shuffle(released)
            for wcore in released:
                heappush(ready, (release_time, wcore))
            waiting.clear()

        while ready:
            now, core = heappop(ready)
            core_atypes = atypes[core]
            core_lines = lines[core]
            core_gaps = gaps[core]
            length = lengths[core]
            index = positions[core]
            # Run this core inline while it stays globally earliest.
            while True:
                if index >= length:
                    finished += 1
                    core_finish[core] = now
                    if waiting and len(waiting) + finished >= num_cores:
                        release_barrier()
                    break
                atype = core_atypes[index]
                index += 1
                if atype is BARRIER:
                    positions[core] = index
                    waiting[core] = now
                    if len(waiting) + finished >= num_cores:
                        release_barrier()
                    break
                gap = core_gaps[index - 1]
                if gap and not batch_compute:
                    add_latency(COMPUTE, gap)
                issue_time = now + gap
                now = issue_time + fast_access(
                    core, atype, core_lines[index - 1], issue_time
                )
                if ready and ready[0] < (now, core):
                    positions[core] = index
                    heappush(ready, (now, core))
                    break


class BatchedKernel(FastKernel):
    """Run-length batched event loop — bit-identical to the reference.

    The locality phenomenon the paper exploits — long same-core runs of
    accesses that hit close to the core — is also the simulator's own
    hot path: in hit-heavy regimes the fast kernel spends most of its
    time on per-record loop overhead for records that cannot affect the
    schedule (an L1 hit costs exactly ``l1_latency`` and touches no
    shared resource).  This kernel amortizes that overhead over whole
    runs:

    1. when a core is popped (globally earliest), the upcoming run's
       hard boundary is read from the decoded trace's ``run_stops``
       (next barrier / end of trace) — a batch never crosses a barrier;
    2. the scheduling budget is frozen once per run: the heap front is
       invariant while the core executes inline, so its (time, core)
       tie-break collapses to one float ``limit`` plus a strictness bit
       instead of a tuple comparison per record;
    3. the engine's :meth:`make_batched_access` closure services every
       consecutive L1 hit — and, for replicating schemes, every
       constant-latency local-replica hit, the paper's target regime —
       inside those bounds in one tight loop with a single statistics
       flush per run (Compute charged from the numpy ``gap_prefix``
       slice when gaps are integral).  Replica-run boundaries are
       dynamic, detected by the closure itself: a record whose service
       would mutate replica or directory state non-locally (true miss,
       write upgrade, a fill evicting an L1 victim with no local
       replica to merge into) ends the run before any side effect;
    4. the record that ends the run — a miss — goes through the same
       specialized fast-access path the fast kernel uses, followed by
       the exact heap check the fast kernel would perform.

    Per-record clock arithmetic keeps the reference grouping
    (``(now + gap) + latency``), so results are bit-identical even with
    fractional timestamps; when the engine declines the specialization
    (overridden hooks, TLA hints, non-stock L1s), the whole run()
    falls back to :class:`FastKernel`.
    """

    name = "batched"

    #: Minimum scheduling budget, in multiples of the L1 hit latency,
    #: before a run is handed to the engine's batched closure.  Below it
    #: the per-run overhead (closure call + statistics flush) exceeds the
    #: per-record savings, so records are single-stepped exactly like the
    #: fast kernel.  Purely a performance heuristic: the closure enforces
    #: the budget per record regardless, so any value is bit-identical.
    BATCH_MIN_L1_LATENCIES = 8.0

    def _make_run_service(self, engine: "ProtocolEngine", charge_gaps: bool):
        """The engine closure this kernel hands whole runs to.

        Subclass hook (the vector kernel swaps in its array-at-a-time
        closure); the run loop is otherwise identical.
        """
        maker = getattr(engine, "make_batched_access", None)
        return maker(charge_gaps=charge_gaps) if maker is not None else None

    def _fallback_run(self, engine: "ProtocolEngine", traces: "TraceSet") -> None:
        """Where to go when the engine declines the run-service closure."""
        FastKernel.run(self, engine, traces)

    def run(self, engine: "ProtocolEngine", traces: "TraceSet") -> None:
        stats = engine.stats
        num_cores = engine.config.num_cores
        decoded = traces.decoded()

        charge_gaps = not all(d.gaps_integral for d in decoded)
        run_hits = self._make_run_service(engine, charge_gaps)
        if run_hits is None:
            self._fallback_run(engine, traces)
            return
        fast_access = None
        fast_maker = getattr(engine, "make_fast_access", None)
        if fast_maker is not None:
            fast_access = fast_maker()
        if fast_access is None:
            engine_access = engine.access

            def fast_access(core, atype, line_addr, now, _access=engine_access):
                return _access(core, atype, line_addr, now).latency

        lengths = [d.length for d in decoded]
        gaps = [d.gaps for d in decoded]
        atypes = [d.atypes for d in decoded]
        lines = [d.lines for d in decoded]
        run_stops = [d.run_stops for d in decoded]

        add_latency = stats.add_latency
        latency_buckets = stats.latency
        core_finish = stats.core_finish
        heappush, heappop = heapq.heappush, heapq.heappop
        BARRIER = AccessType.BARRIER
        COMPUTE = stat_names.COMPUTE
        SYNCHRONIZATION = stat_names.SYNCHRONIZATION
        INFINITY = float("inf")
        batch_margin = self.BATCH_MIN_L1_LATENCIES * engine.config.l1_latency

        rng = self._rng()
        positions = [0] * num_cores
        waiting: dict[int, float] = {}
        finished = 0
        seed_order = list(range(num_cores))
        if rng is not None:
            rng.shuffle(seed_order)
        ready: list[tuple[float, int]] = [(0.0, core) for core in seed_order]
        heapq.heapify(ready)

        def release_barrier() -> None:
            release_time = max(waiting.values())
            # Charge waits in deterministic (arrival) order — see the
            # reference kernel: only heap pushes are provably order-free.
            for wcore, arrival in waiting.items():
                wait = release_time - arrival
                if wait:
                    add_latency(SYNCHRONIZATION, wait)
            released = list(waiting)
            if rng is not None:
                rng.shuffle(released)
            for wcore in released:
                heappush(ready, (release_time, wcore))
            waiting.clear()

        while ready:
            now, core = heappop(ready)
            # The heap is untouched while this core runs inline, so the
            # scheduling budget (front time + tie-break) is per-pop.
            if ready:
                limit, front_core = ready[0]
                strict = front_core > core  # tie → this core keeps running
            else:
                limit = INFINITY
                strict = True
            # Runs shorter than the batch margin (a core in lockstep with
            # the heap front) are single-stepped; the closure only engages
            # once this core has fallen far enough behind the pack that a
            # long hit run can amortize the flush.
            batch_below = limit - batch_margin
            core_decoded = decoded[core]
            core_stops = run_stops[core]
            core_atypes = atypes[core]
            core_lines = lines[core]
            core_gaps = gaps[core]
            length = lengths[core]
            index = positions[core]
            while True:
                if index >= length:
                    finished += 1
                    core_finish[core] = now
                    if waiting and len(waiting) + finished >= num_cores:
                        release_barrier()
                    break
                if now <= batch_below:
                    stop = core_stops[index]
                    if stop > index:
                        index, now, yielded = run_hits(
                            core, core_decoded, index, stop, now, limit, strict
                        )
                        if yielded:
                            positions[core] = index
                            heappush(ready, (now, core))
                            break
                        if index >= length:
                            continue  # finished inline — handled at loop top
                        # Fall through: the record at ``index`` missed the
                        # L1 (or is the run-bounding barrier) and is
                        # single-stepped below.
                # Single-step one record — the fast kernel's iteration:
                # per-record Compute charge (exact: integral sums, or the
                # reference's own order), specialized access, then the
                # exact heap check.
                atype = core_atypes[index]
                index += 1
                if atype is BARRIER:
                    # Park the core (no heap check — the fast kernel
                    # breaks here too; the release re-arms us).
                    positions[core] = index
                    waiting[core] = now
                    if len(waiting) + finished >= num_cores:
                        release_barrier()
                    break
                gap = core_gaps[index - 1]
                if gap:
                    latency_buckets[COMPUTE] += gap
                issue_time = now + gap
                now = issue_time + fast_access(
                    core, atype, core_lines[index - 1], issue_time
                )
                if ready and ready[0] < (now, core):
                    positions[core] = index
                    heappush(ready, (now, core))
                    break


class VectorKernel(BatchedKernel):
    """Array-at-a-time event loop — bit-identical to the reference.

    Same run loop as :class:`BatchedKernel` (frozen per-pop scheduling
    budget, ``run_stops`` barrier bounds, single-step miss fallback), but
    runs are handed to the engine's *vector* closure
    (:meth:`~repro.schemes.base.ProtocolEngine.make_vector_access`),
    which executes whole pure-L1-hit spans as numpy array operations —
    ``searchsorted`` membership/writability oracles over a sorted L1
    snapshot, ``gap_prefix`` completion times truncated at the
    scheduling limit with one binary search, and an exact vectorized
    LRU replay — instead of a per-record Python loop.  Replica hits and
    local-home read hits are serviced per record inside the same
    closure, so replica-heavy phases still batch end to end.

    The columnar representation only pays off on long spans: per span
    there is fixed numpy dispatch overhead, so in lockstep regimes
    (every run cut short by the scheduler) the batched — or even the
    fast — kernel wins.  :func:`choose_kernel` encodes that boundary.
    When the engine declines the vector closure (fractional gaps, no
    batching support), the whole run falls back to the batched kernel.
    """

    name = "vector"

    def _make_run_service(self, engine: "ProtocolEngine", charge_gaps: bool):
        maker = getattr(engine, "make_vector_access", None)
        return maker(charge_gaps=charge_gaps) if maker is not None else None

    def _fallback_run(self, engine: "ProtocolEngine", traces: "TraceSet") -> None:
        # A fresh instance, not super().run(): the inherited run() would
        # re-dispatch through this class's _make_run_service and recurse.
        BatchedKernel(perturb_seed=self.perturb_seed).run(engine, traces)


#: Registered kernels by name (extension point for future accelerated cores).
KERNELS: dict[str, type[SimulationKernel]] = {
    ReferenceKernel.name: ReferenceKernel,
    FastKernel.name: FastKernel,
    BatchedKernel.name: BatchedKernel,
    VectorKernel.name: VectorKernel,
}

#: Kernel used when the caller does not choose one.  The fast kernel is
#: differentially verified against the reference, so it is the default.
DEFAULT_KERNEL = "fast"

#: Pseudo-kernel name: probe the trace's run-length structure and pick
#: ``fast`` or ``batched`` per simulation (see :func:`choose_kernel`).
#: Resolved by :func:`resolve_kernel` when it is given the traces —
#: :func:`repro.sim.simulator.simulate` passes them.
AUTO_KERNEL = "auto"

#: ``auto`` thresholds.  The batched kernel only wins when same-core
#: runs are long enough to amortize its per-run closure call and
#: statistics flush, which requires (a) barrier segments substantially
#: longer than the ~8-L1-latency batching margin and (b) enough per-core
#: load imbalance that a core actually stays globally earliest for a
#: while (in lockstep traces the scheduler cuts every run short and the
#: fast kernel's single-stepping is cheaper).  Both are purely
#: throughput heuristics: every kernel is bit-identical, so a wrong
#: pick costs speed, never correctness.
AUTO_MIN_SEGMENT_LENGTH = 64.0
AUTO_MIN_IMBALANCE = 1.10

#: Relaxed segment threshold when the engine batches local-replica hits
#: (``ProtocolEngine.supports_replica_batching``, i.e. VR / ASR / the
#: locality-aware schemes on a stock machine).  Replica hits used to end
#: every run, and each one batched saves a whole specialized miss-path
#: dispatch instead of a single L1 probe — so much shorter runs already
#: amortize the per-run flush, and replica-heavy workloads (the regime
#: the paper optimizes) should reach the batched kernel sooner.
AUTO_MIN_SEGMENT_LENGTH_REPLICA = 32.0

#: Segment threshold above which a batched pick upgrades to the vector
#: kernel.  Vector spans carry fixed numpy dispatch overhead per span
#: (snapshot, searchsorted oracle, LRU replay), repaid only when
#: uninterrupted same-core spans can grow to hundreds of records —
#: i.e. when barrier segments are far longer than the batched kernel's
#: own amortization point.  Below it the per-record batched closure is
#: cheaper.  Throughput heuristic only: both kernels are bit-identical.
AUTO_MIN_SEGMENT_LENGTH_VECTOR = 256.0


def _batched_or_vector(
    decoded: "list", engine: "ProtocolEngine | None", mean_segment: float
) -> str:
    """Tie-break a batched pick: upgrade to vector when spans can pay.

    Requires (a) segments long enough for array-at-a-time spans to
    amortize their per-span numpy overhead, (b) integral gaps (fractional
    gaps make the vector closure decline and fall back to batched
    wholesale — picking it would only add a wasted probe), and (c) an
    engine that actually vectorizes spans (``supports_vector_spans``).
    """
    if mean_segment < AUTO_MIN_SEGMENT_LENGTH_VECTOR:
        return BatchedKernel.name
    if not all(d.gaps_integral for d in decoded):
        return BatchedKernel.name
    # getattr: engine stubs (tests) need not implement the probe.
    supports = getattr(engine, "supports_vector_spans", None)
    if supports is not None and supports():
        return VectorKernel.name
    return BatchedKernel.name


def choose_kernel(traces: "TraceSet", engine: "ProtocolEngine | None" = None) -> str:
    """Pick ``fast``/``batched``/``vector`` from the trace's structure.

    Probes the same barrier structure the batched kernel's ``run_stops``
    boundaries encode (via the vectorized ``DecodedTrace.barrier_count``
    — the probe must stay cheap even when it then picks ``fast``): the
    mean records per barrier segment measures how long an uninterrupted
    same-core run *could* get, and the spread of per-core work (records
    plus compute cycles, a cycle-count proxy) measures whether a
    straggler core will ever be far enough behind the pack for batching
    to engage.  Cores with *empty* traces finish at time zero and never
    enter the scheduler, so they are excluded from both probes (they
    would deflate the mean segment length and distort the imbalance
    ratio on partially-idle workloads).  A single *active* core skips
    the imbalance test: it owns the scheduler outright, the batched
    kernel's best case.

    ``engine`` (optional — :func:`repro.sim.simulator.simulate` passes
    it) adds a replica-friendliness signal: when the engine batches
    local-replica hits, the segment threshold relaxes to
    :data:`AUTO_MIN_SEGMENT_LENGTH_REPLICA` so VR/locality runs pick
    ``batched`` sooner.
    """
    decoded = [d for d in traces.decoded() if d.length]
    total_records = sum(d.length for d in decoded)
    if total_records == 0:
        return DEFAULT_KERNEL
    segments = sum(d.barrier_count + 1 for d in decoded)
    mean_segment = total_records / segments
    min_segment = AUTO_MIN_SEGMENT_LENGTH
    # getattr: engine stubs (tests) need not implement the probe.
    supports = getattr(engine, "supports_replica_batching", None)
    if supports is not None and supports():
        min_segment = AUTO_MIN_SEGMENT_LENGTH_REPLICA
    if mean_segment < min_segment:
        return FastKernel.name
    if len(decoded) == 1:
        # A single active core owns the scheduler outright once the idle
        # cores drain at time zero — the longest possible runs, with no
        # imbalance to measure.
        return _batched_or_vector(decoded, engine, mean_segment)
    weights = [d.length + d.compute_cycles for d in decoded]
    mean_weight = sum(weights) / len(weights)
    imbalance = max(weights) / mean_weight if mean_weight else 1.0
    if imbalance >= AUTO_MIN_IMBALANCE:
        return _batched_or_vector(decoded, engine, mean_segment)
    return FastKernel.name


def kernel_names() -> Iterable[str]:
    """The registered kernel names, in registration order."""
    return tuple(KERNELS)


def resolve_kernel(
    kernel: "str | SimulationKernel | type[SimulationKernel] | None",
    traces: "TraceSet | None" = None,
    engine: "ProtocolEngine | None" = None,
) -> SimulationKernel:
    """Normalize a kernel selector (name, class, instance or None).

    ``None`` falls back to the ``REPRO_SIM_KERNEL`` environment variable,
    then to :data:`DEFAULT_KERNEL`.  ``"auto"`` requires ``traces`` (the
    probe's input): :func:`repro.sim.simulator.simulate` passes them,
    along with the ``engine`` for the replica-friendliness signal.
    """
    if kernel is None:
        import os

        kernel = os.environ.get("REPRO_SIM_KERNEL") or DEFAULT_KERNEL
    if kernel == AUTO_KERNEL:
        if traces is None:
            raise ValueError(
                "kernel 'auto' needs the trace to probe; use "
                "simulate(..., kernel='auto') or choose_kernel(traces)"
            )
        kernel = choose_kernel(traces, engine)
    if isinstance(kernel, SimulationKernel):
        return kernel
    if isinstance(kernel, type) and issubclass(kernel, SimulationKernel):
        return kernel()
    try:
        return KERNELS[kernel]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown simulation kernel {kernel!r}; available: {sorted(KERNELS)}"
        ) from None
