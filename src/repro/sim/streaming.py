"""Streaming event loop: simulate a segmented trace in bounded memory.

:func:`run_streaming` drives a :class:`~repro.schemes.base.ProtocolEngine`
through a :class:`~repro.workloads.streaming.StreamingTraceSet` and
produces :class:`~repro.sim.stats.SimStats` **bit-identical** to running
the materialized trace through any of the registered kernels
(:mod:`repro.sim.kernel`).  The correctness argument:

*Starvation-driven refill preserves global event order.*  The loop is
the same ready-heap schedule every kernel implements — pop the globally
earliest ``(time, core)``, run it inline while it stays earliest — with
one addition: each core executes out of a bounded *window* of its trace
(a :class:`~repro.workloads.trace.DecodedTrace` over one chunk), and
when the running core exhausts its window it *refills* from the segment
source before taking another step.  Only the popped core — the globally
earliest — can starve, and no other core may legally execute while an
earlier-keyed core still has records, so pulling the starved core's
next chunk (and only then proceeding) replays exactly the event order
the materialized loop produces.  All cross-window carry state — per-core
clocks in the heap, window-local positions, pending-barrier arrivals,
finished cores — lives in an explicit :class:`StreamHandoff`.

*Run flushes split exactly at window edges.*  The batched/vector run
closures (:meth:`~repro.schemes.base.ProtocolEngine.make_batched_access`)
already split runs at scheduling yields; a window edge just adds one
more split point.  Every flushed quantity is either an integer counter,
an integer-valued latency product (``hits * l1_latency`` — the closure
guards integer latencies), or a Compute sum that is only batched when
gaps are integral — all order- and grouping-independent — while the
per-record clock keeps the reference float grouping
``(now + gap) + latency``.  Fractional gaps flip the closures to
per-record Compute charging in reference order (``charge_gaps``), which
the streaming set's conservative ``gaps_integral`` flag triggers.

Kernel selection mirrors the materialized path: ``reference``/``fast``
single-step every record through the engine's fast-access closure;
``batched``/``vector`` hand window-bounded runs to the engine's run
closures with the same frozen per-pop scheduling budget, falling back
exactly like their materialized counterparts when the engine declines.
``auto`` picks from the stream's declared totals
(:func:`choose_streaming_kernel`) since the record structure cannot be
probed without consuming it.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import random
from typing import TYPE_CHECKING

import numpy as np

from repro.common.types import AccessType
from repro.sim import stats as stat_names
from repro.sim.kernel import (
    AUTO_KERNEL,
    AUTO_MIN_IMBALANCE,
    AUTO_MIN_SEGMENT_LENGTH,
    AUTO_MIN_SEGMENT_LENGTH_REPLICA,
    AUTO_MIN_SEGMENT_LENGTH_VECTOR,
    DEFAULT_KERNEL,
    KERNELS,
    BatchedKernel,
    SimulationKernel,
)
from repro.workloads.streaming import window_decoded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schemes.base import ProtocolEngine
    from repro.workloads.streaming import SegmentSource, StreamingTraceSet
    from repro.workloads.trace import DecodedTrace


@dataclasses.dataclass
class StreamHandoff:
    """Cross-window carry state of one streaming run.

    This is the explicit run-boundary handoff the segmented execution
    threads between chunks: everything the next window needs to resume
    exactly where the previous one stopped.

    * ``ready`` — the scheduler heap of ``(clock, core)``; a core's
      entry survives any number of refills of *other* cores.
    * ``positions`` — each core's next record, window-local.
    * ``windows`` — each core's current bounded decoded window
      (``None`` before the first pull and after exhaustion).
    * ``waiting`` — cores parked at a barrier, mapped to arrival time
      (a barrier can land on a window edge; the arrival carries over).
    * ``finished`` — cores whose stream is exhausted and consumed.
    * ``exhausted`` — cores whose source returned end-of-stream.
    """

    ready: "list[tuple[float, int]]"
    positions: "list[int]"
    windows: "list[DecodedTrace | None]"
    waiting: "dict[int, float]"
    finished: "set[int]"
    exhausted: "list[bool]"

    @classmethod
    def fresh(cls, num_cores: int, rng: "random.Random | None" = None) -> "StreamHandoff":
        seed_order = list(range(num_cores))
        if rng is not None:
            rng.shuffle(seed_order)
        ready = [(0.0, core) for core in seed_order]
        heapq.heapify(ready)
        return cls(
            ready=ready,
            positions=[0] * num_cores,
            windows=[None] * num_cores,
            waiting={},
            finished=set(),
            exhausted=[False] * num_cores,
        )


def choose_streaming_kernel(
    traces: "StreamingTraceSet", engine: "ProtocolEngine | None" = None
) -> str:
    """``auto`` for streams: pick from declared totals, not the records.

    Mirrors :func:`repro.sim.kernel.choose_kernel`'s thresholds using
    the stream's metadata (total records and per-core barrier count).
    Per-core imbalance cannot be probed without consuming the stream,
    so the imbalance gate is skipped — a wrong pick costs only speed,
    and long-segment streams are exactly where batching pays.
    """
    records = traces.total_records
    barriers = traces.total_barriers
    if not records or barriers is None:
        return DEFAULT_KERNEL
    segments = traces.num_cores * (barriers + 1)
    mean_segment = records / segments if segments else 0.0
    min_segment = AUTO_MIN_SEGMENT_LENGTH
    supports = getattr(engine, "supports_replica_batching", None)
    if supports is not None and supports():
        min_segment = AUTO_MIN_SEGMENT_LENGTH_REPLICA
    if mean_segment < min_segment:
        return DEFAULT_KERNEL
    if mean_segment >= AUTO_MIN_SEGMENT_LENGTH_VECTOR and traces.gaps_integral:
        vector = getattr(engine, "supports_vector_spans", None)
        if vector is not None and vector():
            return "vector"
    return "batched"


def _resolve_streaming_kernel(
    kernel, traces: "StreamingTraceSet", engine: "ProtocolEngine"
) -> "tuple[str, random.Random | None]":
    """Kernel selector → (registered name, optional perturbation RNG)."""
    rng = None
    if isinstance(kernel, SimulationKernel):
        rng = kernel._rng()
        kernel = kernel.name
    elif isinstance(kernel, type) and issubclass(kernel, SimulationKernel):
        kernel = kernel.name
    if kernel is None:
        kernel = os.environ.get("REPRO_SIM_KERNEL") or DEFAULT_KERNEL
    if kernel == AUTO_KERNEL:
        kernel = choose_streaming_kernel(traces, engine)
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown simulation kernel {kernel!r}; available: {sorted(KERNELS)}"
        )
    return kernel, rng


def _make_fast_access(engine: "ProtocolEngine"):
    maker = getattr(engine, "make_fast_access", None)
    fast_access = maker() if maker is not None else None
    if fast_access is None:
        engine_access = engine.access

        def fast_access(core, atype, line_addr, now, _access=engine_access):
            return _access(core, atype, line_addr, now).latency

    return fast_access


def _make_run_service(engine: "ProtocolEngine", kernel_name: str, charge_gaps: bool):
    """The run closure for batched/vector modes, with the materialized
    kernels' exact fallback ladder (vector → batched → per-record)."""
    if kernel_name == "vector":
        maker = getattr(engine, "make_vector_access", None)
        service = maker(charge_gaps=charge_gaps) if maker is not None else None
        if service is not None:
            return service
    maker = getattr(engine, "make_batched_access", None)
    return maker(charge_gaps=charge_gaps) if maker is not None else None


class _WindowValidator:
    """Per-window coverage check (the streamed validate_coverage)."""

    def __init__(self, traces: "StreamingTraceSet"):
        bases = sorted(
            (region.base, region.end) for region, _cls in traces.regions
        )
        self._starts = np.array([base for base, _end in bases], dtype=np.int64)
        self._ends = np.array([end for _base, end in bases], dtype=np.int64)
        self._name = traces.name

    def check(self, core: int, types: np.ndarray, lines: np.ndarray) -> None:
        data = lines[types != int(AccessType.BARRIER)]
        if data.size == 0:
            return
        if self._starts.size == 0:
            bad = int(data[0])
        else:
            index = np.searchsorted(self._starts, data, side="right") - 1
            covered = (index >= 0) & (data < self._ends[np.maximum(index, 0)])
            if covered.all():
                return
            bad = int(data[int(np.argmin(covered))])
        raise ValueError(
            f"trace {self._name!r}: core {core} accesses line {bad:#x}, "
            f"which no region of the streaming region map covers"
        )


def run_streaming(
    engine: "ProtocolEngine",
    traces: "StreamingTraceSet",
    kernel=None,
) -> str:
    """Drive ``engine`` through a streaming trace set; returns the
    resolved kernel name (stats accumulate on ``engine.stats``)."""
    stats = engine.stats
    num_cores = engine.config.num_cores
    kernel_name, rng = _resolve_streaming_kernel(kernel, traces, engine)

    fast_access = _make_fast_access(engine)
    run_service = None
    if kernel_name in ("batched", "vector"):
        charge_gaps = not traces.gaps_integral
        run_service = _make_run_service(engine, kernel_name, charge_gaps)
    batch_margin = (
        BatchedKernel.BATCH_MIN_L1_LATENCIES * engine.config.l1_latency
        if run_service is not None
        else 0.0
    )

    add_latency = stats.add_latency
    latency_buckets = stats.latency
    core_finish = stats.core_finish
    heappush, heappop = heapq.heappush, heapq.heappop
    BARRIER = AccessType.BARRIER
    COMPUTE = stat_names.COMPUTE
    SYNCHRONIZATION = stat_names.SYNCHRONIZATION
    INFINITY = float("inf")

    validator = _WindowValidator(traces)
    source = traces.open_source()
    handoff = StreamHandoff.fresh(num_cores, rng)
    ready = handoff.ready
    positions = handoff.positions
    windows = handoff.windows
    waiting = handoff.waiting
    finished = handoff.finished
    exhausted = handoff.exhausted

    def release_barrier() -> None:
        release_time = max(waiting.values())
        # Charge waits in deterministic (arrival) order — see the
        # reference kernel: only heap pushes are provably order-free.
        for wcore, arrival in waiting.items():
            wait = release_time - arrival
            if wait:
                add_latency(SYNCHRONIZATION, wait)
        released = list(waiting)
        if rng is not None:
            rng.shuffle(released)
        for wcore in released:
            heappush(ready, (release_time, wcore))
        waiting.clear()

    def refill(core: int) -> "DecodedTrace | None":
        """Pull the starved core's next window (the suspend point)."""
        chunk = source.pull(core)
        if chunk is None:
            exhausted[core] = True
            windows[core] = None
            return None
        types, lines, gaps = chunk
        validator.check(core, types, lines)
        window = window_decoded(types, lines, gaps)
        windows[core] = window
        positions[core] = 0
        return window

    try:
        while ready:
            now, core = heappop(ready)
            # The heap is untouched while this core runs inline (refills
            # touch only this core), so the scheduling budget is per-pop
            # — exactly the materialized kernels' frozen (limit, strict).
            if ready:
                limit, front_core = ready[0]
                strict = front_core > core
            else:
                limit = INFINITY
                strict = True
            batch_below = limit - batch_margin
            suspended = False
            while not suspended:
                window = windows[core]
                if window is None or positions[core] >= window.length:
                    if not exhausted[core]:
                        window = refill(core)
                    else:
                        window = None
                    if window is None:
                        finished.add(core)
                        core_finish[core] = now
                        if waiting and len(waiting) + len(finished) >= num_cores:
                            release_barrier()
                        break
                core_atypes = window.atypes
                core_lines = window.lines
                core_gaps = window.gaps
                length = window.length
                window_stops = window.run_stops if run_service is not None else None
                index = positions[core]
                n_finished = len(finished)
                while True:
                    if index >= length:
                        positions[core] = index
                        break  # window consumed → refill or finish above
                    if run_service is not None and now <= batch_below:
                        stop = window_stops[index]
                        if stop > index:
                            index, now, yielded = run_service(
                                core, window, index, stop, now, limit, strict
                            )
                            if yielded:
                                positions[core] = index
                                heappush(ready, (now, core))
                                suspended = True
                                break
                            if index >= length:
                                continue  # window edge mid-run → refill
                            # Fall through: the record at ``index`` needs
                            # the full miss path and is single-stepped.
                    atype = core_atypes[index]
                    index += 1
                    if atype is BARRIER:
                        positions[core] = index
                        waiting[core] = now
                        if len(waiting) + n_finished >= num_cores:
                            release_barrier()
                        suspended = True
                        break
                    gap = core_gaps[index - 1]
                    if gap:
                        latency_buckets[COMPUTE] += gap
                    issue_time = now + gap
                    now = issue_time + fast_access(
                        core, atype, core_lines[index - 1], issue_time
                    )
                    if ready and ready[0] < (now, core):
                        positions[core] = index
                        heappush(ready, (now, core))
                        suspended = True
                        break
    finally:
        source.close()
    return kernel_name
