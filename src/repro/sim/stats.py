"""Simulation statistics: event counts, latency breakdown, energy counts.

The latency buckets mirror Section 3.4's completion-time decomposition
exactly (Figure 7's stacked bars), and the miss-status counters mirror
Figure 8's L1-miss breakdown.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Mapping

from repro.common.types import MissStatus
from repro.energy.model import EnergyModel

# -- latency bucket names (Figure 7 legend) -----------------------------------
COMPUTE = "Compute"
L1_HIT_TIME = "L1-Hit"
L1_TO_LLC_REPLICA = "L1-To-LLC-Replica"
L1_TO_LLC_HOME = "L1-To-LLC-Home"
LLC_HOME_WAITING = "LLC-Home-Waiting"
LLC_HOME_TO_SHARERS = "LLC-Home-To-Sharers"
LLC_HOME_TO_OFFCHIP = "LLC-Home-To-OffChip"
SYNCHRONIZATION = "Synchronization"

LATENCY_BUCKETS = (
    COMPUTE,
    L1_HIT_TIME,
    L1_TO_LLC_REPLICA,
    L1_TO_LLC_HOME,
    LLC_HOME_WAITING,
    LLC_HOME_TO_SHARERS,
    LLC_HOME_TO_OFFCHIP,
    SYNCHRONIZATION,
)


@dataclasses.dataclass
class SimStats:
    """Everything measured during one simulation run."""

    num_cores: int
    #: Protocol/microarchitectural event counts (cache hits, invalidations…).
    counters: Counter = dataclasses.field(default_factory=Counter)
    #: Energy event counts keyed by :mod:`repro.energy.model` names.
    energy_counts: Counter = dataclasses.field(default_factory=Counter)
    #: Aggregate cycles in each Section 3.4 latency component.
    latency: Counter = dataclasses.field(default_factory=Counter)
    #: L1 miss disposition counts (Figure 8).
    miss_status: Counter = dataclasses.field(default_factory=Counter)
    #: Per-core finish time (cycles); completion time is their max.
    core_finish: list = dataclasses.field(default_factory=list)
    completion_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.core_finish:
            self.core_finish = [0.0] * self.num_cores

    # -- recording helpers ---------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def energy_event(self, name: str, amount: int = 1) -> None:
        self.energy_counts[name] += amount

    def add_latency(self, bucket: str, cycles: float) -> None:
        self.latency[bucket] += cycles

    def record_miss(self, status: MissStatus) -> None:
        self.miss_status[status] += 1

    # -- derived views ----------------------------------------------------------
    def l1_misses(self) -> int:
        """Accesses that missed the L1 (Figure 8 denominator)."""
        return (
            self.miss_status[MissStatus.LLC_REPLICA_HIT]
            + self.miss_status[MissStatus.LLC_HOME_HIT]
            + self.miss_status[MissStatus.OFF_CHIP_MISS]
        )

    def miss_breakdown(self) -> dict[str, float]:
        """Fractions of L1 misses by service location (Figure 8)."""
        total = self.l1_misses()
        if total == 0:
            return {"LLC-Replica-Hits": 0.0, "LLC-Home-Hits": 0.0, "OffChip-Misses": 0.0}
        return {
            "LLC-Replica-Hits": self.miss_status[MissStatus.LLC_REPLICA_HIT] / total,
            "LLC-Home-Hits": self.miss_status[MissStatus.LLC_HOME_HIT] / total,
            "OffChip-Misses": self.miss_status[MissStatus.OFF_CHIP_MISS] / total,
        }

    def energy_breakdown(self, model: EnergyModel | None = None) -> dict[str, float]:
        """Component energies in pJ (Figure 6)."""
        return (model or EnergyModel()).breakdown(self.energy_counts)

    def total_energy(self, model: EnergyModel | None = None) -> float:
        return sum(self.energy_breakdown(model).values())

    def latency_breakdown(self) -> dict[str, float]:
        """Aggregate cycles per Section 3.4 component (Figure 7)."""
        return {bucket: self.latency[bucket] for bucket in LATENCY_BUCKETS}

    def energy_delay_product(self, model: EnergyModel | None = None) -> float:
        """EDP — the metric ASR's replication-level search minimizes."""
        return self.total_energy(model) * self.completion_time

    def offchip_miss_rate(self) -> float:
        """Off-chip misses per L1 miss."""
        total = self.l1_misses()
        if total == 0:
            return 0.0
        return self.miss_status[MissStatus.OFF_CHIP_MISS] / total

    def summary(self) -> dict[str, float]:
        """Compact scalar summary for tables and tests."""
        return {
            "completion_time": self.completion_time,
            "energy_pj": self.total_energy(),
            "l1_misses": float(self.l1_misses()),
            "replica_hit_fraction": self.miss_breakdown()["LLC-Replica-Hits"],
            "offchip_miss_rate": self.offchip_miss_rate(),
        }

    def to_dict(self, model: EnergyModel | None = None) -> dict:
        """JSON-serializable dump of everything measured (for archiving
        experiment results alongside persisted traces)."""
        return {
            "num_cores": self.num_cores,
            "completion_time": self.completion_time,
            "core_finish": list(self.core_finish),
            "counters": dict(self.counters),
            "energy_counts": dict(self.energy_counts),
            "energy_breakdown": self.energy_breakdown(model),
            "latency_breakdown": self.latency_breakdown(),
            "miss_breakdown": self.miss_breakdown(),
            "miss_status": {status.name: count
                            for status, count in self.miss_status.items()},
            "summary": self.summary(),
        }


def merge_counters(base: Mapping[str, int], extra: Mapping[str, int]) -> Counter:
    """Pure merge of two count maps (used by aggregation utilities)."""
    merged = Counter()
    merged.update(base)
    merged.update(extra)
    return merged
