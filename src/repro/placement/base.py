"""Data-placement interface: mapping lines to home LLC slices.

A placement policy answers one question — *which LLC slice is the home of
this line for this requester?* — and may observe accesses to learn
(R-NUCA's page classification).  When an observation changes a line's
home (R-NUCA private→shared transition), the protocol engine migrates
directory state lazily on the next access.
"""

from __future__ import annotations

import abc


class Placement(abc.ABC):
    """Maps line addresses to home slices."""

    @abc.abstractmethod
    def home_for(self, line_addr: int, requester: int, is_ifetch: bool) -> int:
        """The home LLC slice for ``line_addr`` as seen by ``requester``."""

    def observe_access(self, line_addr: int, requester: int, is_ifetch: bool) -> None:
        """Learning hook, called once per L1 miss before home resolution."""

    def peek_home(self, line_addr: int, requester: int, is_ifetch: bool) -> int:
        """What :meth:`home_for` would return *after* observing this access,
        without mutating any learning state.

        The vector kernel's inline home-hit fast path must know the
        resolved home before it commits any side effect (a resolution that
        triggers a migration is not schedule-free), so it needs the
        post-observation answer as a pure function.  The default is exact
        for stateless policies (``observe_access`` is a no-op); learning
        policies must override it alongside ``observe_access``.
        """
        return self.home_for(line_addr, requester, is_ifetch)

    @property
    def homes_depend_on_requester(self) -> bool:
        """Whether different requesters can see different homes.

        True only for R-NUCA instruction clustering, where each cluster
        keeps its own copy (read-only, so no cross-home coherence needed).
        """
        return False


class StaticNuca(Placement):
    """S-NUCA: address-interleave every line across all LLC slices."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores

    def home_for(self, line_addr: int, requester: int, is_ifetch: bool) -> int:
        return line_addr % self.num_cores
