"""Reactive-NUCA placement (Hardavellas et al., ISCA 2009; Section 2.1/3.3).

R-NUCA classifies **pages** at runtime using the first-touch heuristic:

* a page first touched by core ``c`` is *private* and its lines are placed
  in ``c``'s local LLC slice;
* when a second core touches the page it becomes *shared* and its lines
  are address-interleaved across all slices (no replication);
* instruction pages are placed with **rotational interleaving** at
  cluster level (one copy per 4-core cluster), which is R-NUCA's only form
  of replication.

The locality-aware protocol reuses R-NUCA's private/shared placement but
*disables* instruction clustering — it replicates instructions through the
general locality-aware mechanism instead (Section 2.1).

Page reclassification changes a line's home; the protocol engine detects
the change via its ``active_home`` bookkeeping and migrates lazily.
"""

from __future__ import annotations

import enum

from repro.network.topology import cluster_members, cluster_of
from repro.placement.base import Placement


class PageClass(enum.IntEnum):
    PRIVATE = 0
    SHARED = 1


class ReactiveNuca(Placement):
    """First-touch page classification with optional instruction clustering."""

    #: R-NUCA replicates instructions per cluster of this many cores.
    INSTRUCTION_CLUSTER = 4

    def __init__(
        self,
        num_cores: int,
        lines_per_page: int,
        instruction_clustering: bool = True,
    ) -> None:
        self.num_cores = num_cores
        self.lines_per_page = lines_per_page
        self.instruction_clustering = instruction_clustering
        side = int(num_cores ** 0.5)
        self._side = side
        #: page -> (classification, first-touch owner core)
        self._pages: dict[int, tuple[PageClass, int]] = {}
        self.private_pages = 0
        self.shared_transitions = 0

    # -- classification ---------------------------------------------------------
    def page_of(self, line_addr: int) -> int:
        return line_addr // self.lines_per_page

    def classification(self, line_addr: int) -> tuple[PageClass, int] | None:
        """Current (class, owner) of the page, or None if untouched."""
        return self._pages.get(self.page_of(line_addr))

    def observe_access(self, line_addr: int, requester: int, is_ifetch: bool) -> None:
        if is_ifetch and self.instruction_clustering:
            return  # instruction placement is static
        page = self.page_of(line_addr)
        entry = self._pages.get(page)
        if entry is None:
            self._pages[page] = (PageClass.PRIVATE, requester)
            self.private_pages += 1
            return
        page_class, owner = entry
        if page_class == PageClass.PRIVATE and owner != requester:
            self._pages[page] = (PageClass.SHARED, owner)
            self.private_pages -= 1
            self.shared_transitions += 1

    def peek_home(self, line_addr: int, requester: int, is_ifetch: bool) -> int:
        """Post-observation home, computed without mutating the page table.

        Mirrors :meth:`observe_access` followed by :meth:`home_for`: an
        untouched page would become private to ``requester`` (home =
        requester); a private page touched by another core would turn
        shared (address-interleaved home); otherwise classification is
        already stable and ``home_for`` applies as-is.
        """
        if is_ifetch and self.instruction_clustering:
            return self._instruction_home(line_addr, requester)
        entry = self._pages.get(self.page_of(line_addr))
        if entry is None:
            return requester  # would be classified private to the requester
        page_class, owner = entry
        if page_class == PageClass.PRIVATE:
            if owner == requester:
                return owner
            # Second core touching a private page: becomes shared.
        return line_addr % self.num_cores

    # -- placement ----------------------------------------------------------------
    def home_for(self, line_addr: int, requester: int, is_ifetch: bool) -> int:
        if is_ifetch and self.instruction_clustering:
            return self._instruction_home(line_addr, requester)
        entry = self._pages.get(self.page_of(line_addr))
        if entry is not None:
            page_class, owner = entry
            if page_class == PageClass.PRIVATE:
                return owner
        return line_addr % self.num_cores

    def _instruction_home(self, line_addr: int, requester: int) -> int:
        """Rotational interleaving: one copy per cluster, rotated slot."""
        cluster = cluster_of(requester, self.INSTRUCTION_CLUSTER, self._side)
        members = cluster_members(cluster, self.INSTRUCTION_CLUSTER, self._side)
        slot = (line_addr + cluster) % len(members)
        return members[slot]

    @property
    def homes_depend_on_requester(self) -> bool:
        return self.instruction_clustering
