"""Data placement: S-NUCA interleaving and Reactive-NUCA page classification."""

from repro.placement.base import Placement, StaticNuca
from repro.placement.rnuca import PageClass, ReactiveNuca

__all__ = ["PageClass", "Placement", "ReactiveNuca", "StaticNuca"]
