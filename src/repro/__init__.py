"""Locality-aware data replication in the last-level cache (HPCA 2014).

A full-system reproduction of Kurian, Devadas and Khan's locality-aware
selective LLC replication protocol, including the tiled-multicore
simulation substrate (L1/LLC caches, ACKwise directory coherence, 2-D
mesh, DRAM, energy models), the four baseline LLC management schemes it
is evaluated against, the 21-benchmark synthetic workload catalog, and
the harnesses that regenerate every figure and table in the paper.

Quick start::

    from repro import MachineConfig, make_scheme, build_trace, get_profile
    from repro.sim.simulator import simulate

    config = MachineConfig.small()
    traces = build_trace(get_profile("BARNES"), config, seed=1)
    stats = simulate(make_scheme("RT-3", config), traces)
    print(stats.summary())
"""

from repro.common.params import CacheGeometry, MachineConfig
from repro.common.types import AccessType, LineClass, MESIState, MissStatus
from repro.schemes.factory import FIGURE_SCHEMES, make_scheme
from repro.sim.stats import SimStats
from repro.workloads.benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    BenchmarkProfile,
    build_trace,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkProfile",
    "CacheGeometry",
    "FIGURE_SCHEMES",
    "LineClass",
    "MESIState",
    "MachineConfig",
    "MissStatus",
    "SimStats",
    "build_trace",
    "get_profile",
    "make_scheme",
    "__version__",
]
