"""Coherence substrate: sharer tracking and MESI transition helpers."""

from repro.coherence.mesi import (
    merged_state,
    needs_downgrade,
    needs_writeback,
    read_grant_state,
    write_grant_state,
)
from repro.coherence.sharers import (
    AckwiseSharers,
    FullMapSharers,
    make_sharer_tracker,
)

__all__ = [
    "AckwiseSharers",
    "FullMapSharers",
    "make_sharer_tracker",
    "merged_state",
    "needs_downgrade",
    "needs_writeback",
    "read_grant_state",
    "write_grant_state",
]
