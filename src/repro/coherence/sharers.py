"""Sharer-tracking structures for the in-cache directory.

Two organizations are provided:

* :class:`FullMapSharers` — one presence bit per core (the classic
  full-map directory the paper uses as a storage yardstick in Section 2.4).
* :class:`AckwiseSharers` — the ACKwise_p limited directory the baseline
  system uses (Section 2.1): up to ``p`` precise hardware pointers; when a
  ``p+1``-th sharer arrives, the entry falls back to *broadcast mode*,
  keeping only an exact sharer **count** so invalidation acknowledgements
  can be tallied without knowing identities.

The simulator always knows ground truth (the ``members`` set), but the
protocol layer must only rely on what the hardware would know: when
:attr:`precise` is ``False``, invalidations are broadcast to every core
and the directory waits for ``count`` acknowledgements.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class FullMapSharers:
    """Full-map bit-vector sharer tracking (precise at any sharer count)."""

    __slots__ = ("_members",)

    def __init__(self) -> None:
        self._members: set[int] = set()

    @property
    def count(self) -> int:
        return len(self._members)

    @property
    def precise(self) -> bool:
        return True

    def members(self) -> frozenset[int]:
        return frozenset(self._members)

    def add(self, core: int) -> None:
        self._members.add(core)

    def remove(self, core: int) -> None:
        self._members.discard(core)

    def clear(self) -> None:
        self._members.clear()

    def __contains__(self, core: int) -> bool:
        return core in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(self._members)

    @staticmethod
    def storage_bits(num_cores: int) -> int:
        """Directory storage per LLC entry, in bits."""
        return num_cores


class AckwiseSharers:
    """ACKwise_p limited directory entry.

    ``pointers`` mirrors the hardware pointer file.  Once overflowed, the
    entry stays in broadcast mode until every sharer is gone — hardware
    cannot reconstruct pointer state for the sharers it stopped tracking.
    """

    __slots__ = ("_pointers", "_members", "_overflowed", "num_pointers")

    def __init__(self, num_pointers: int) -> None:
        if num_pointers < 1:
            raise ValueError("ACKwise needs at least one pointer")
        self.num_pointers = num_pointers
        self._pointers: set[int] = set()
        self._members: set[int] = set()
        self._overflowed = False

    # -- hardware-visible state -------------------------------------------------
    @property
    def count(self) -> int:
        """Exact sharer count (ACKwise always tracks the count)."""
        return len(self._members)

    @property
    def precise(self) -> bool:
        """Whether the hardware knows every sharer's identity."""
        return not self._overflowed

    def pointers(self) -> frozenset[int]:
        """The cores the hardware pointer file identifies."""
        return frozenset(self._pointers)

    # -- ground truth (simulation bookkeeping) ----------------------------------
    def members(self) -> frozenset[int]:
        return frozenset(self._members)

    # -- mutation -----------------------------------------------------------------
    def add(self, core: int) -> None:
        if core in self._members:
            return
        self._members.add(core)
        if self._overflowed:
            return
        if len(self._pointers) < self.num_pointers:
            self._pointers.add(core)
        else:
            self._overflowed = True
            self._pointers.clear()

    def remove(self, core: int) -> None:
        self._members.discard(core)
        self._pointers.discard(core)
        if self._overflowed and not self._members:
            self._overflowed = False

    def clear(self) -> None:
        self._members.clear()
        self._pointers.clear()
        self._overflowed = False

    def __contains__(self, core: int) -> bool:
        return core in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(self._members)

    def invalidation_targets(self, num_cores: int) -> Iterable[int]:
        """Cores the hardware must send invalidations to.

        Precise mode unicasts to the tracked sharers; broadcast mode sends
        to every core in the machine.
        """
        if self.precise:
            return self.members()
        return range(num_cores)

    @staticmethod
    def storage_bits(num_cores: int, num_pointers: int) -> int:
        """Directory storage per LLC entry, in bits (Section 2.4.1)."""
        pointer_bits = max(1, (num_cores - 1).bit_length())
        return num_pointers * pointer_bits


def make_sharer_tracker(num_cores: int, ackwise_pointers: int | None):
    """Factory: ACKwise_p when ``ackwise_pointers`` is set, else full map."""
    if ackwise_pointers is None:
        return FullMapSharers()
    return AckwiseSharers(ackwise_pointers)
