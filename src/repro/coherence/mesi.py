"""MESI grant/transition helpers for the home directory.

The directory logic itself (who to invalidate, where data comes from)
lives in the protocol engine; these pure functions centralize the MESI
*state* decisions so they can be unit-tested in isolation and shared by
every LLC management scheme.
"""

from __future__ import annotations

from repro.common.types import MESIState


def read_grant_state(sharers_after_grant: int) -> MESIState:
    """State granted to a reader.

    A sole sharer receives EXCLUSIVE (silent-upgrade optimization);
    otherwise SHARED.  ``sharers_after_grant`` counts the requester.
    """
    if sharers_after_grant < 1:
        raise ValueError("grant must include the requester")
    if sharers_after_grant == 1:
        return MESIState.EXCLUSIVE
    return MESIState.SHARED


def write_grant_state() -> MESIState:
    """Writers always receive MODIFIED."""
    return MESIState.MODIFIED


def merged_state(local: MESIState, granted: MESIState) -> MESIState:
    """Combine an existing copy's state with a new grant (max permission)."""
    return max(local, granted)


def needs_downgrade(state: MESIState) -> bool:
    """Whether a remote copy in ``state`` must be downgraded for a read."""
    return state.writable


def needs_writeback(state: MESIState, dirty: bool) -> bool:
    """Whether evicting/invalidating a copy in ``state`` moves dirty data."""
    return dirty or state == MESIState.MODIFIED
