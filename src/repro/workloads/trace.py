"""Trace representation for the trace-driven simulator.

A trace is one access stream per core.  Each record is
``(type, line address, compute gap)`` where the gap is the number of
non-memory cycles the in-order core spends before issuing the access.
``AccessType.BARRIER`` records synchronize all cores (every core must
carry the same number of barriers).

The :class:`TraceSet` also carries the region → data-class map so the
Figure 1 profiler can classify lines without help from the simulator.
"""

from __future__ import annotations

import bisect
import dataclasses

import numpy as np

from repro.common.addr import Region
from repro.common.types import AccessType, LineClass

#: ``AccessType`` members keyed by value, for O(1) decode without the
#: (surprisingly expensive) ``AccessType(value)`` enum constructor.
_ACCESS_TYPE_BY_VALUE = {int(member): member for member in AccessType}


class DecodedTrace:
    """Plain-Python view of one core's records for the simulation hot loop.

    The simulator touches every record exactly once, so per-record numpy
    scalar extraction (``trace.types[i]``), ``AccessType(...)`` enum
    construction and ``float()``/``int()`` coercions dominate a naive
    loop.  Decoding hoists all of that into one vectorized pass:

    * ``atypes`` — :class:`AccessType` members (table lookup, no enum call);
    * ``lines`` — native ints;
    * ``gaps`` — native floats;
    * ``compute_cycles`` — the summed non-barrier compute gap, so the
      Compute latency bucket can be charged once per core instead of once
      per record.  ``gaps_integral`` records whether every gap is
      integer-valued: only then is the batched float sum order-independent
      (exact), so kernels must fall back to per-record charging when it is
      False to stay bit-identical to the reference accumulation order.

    The boxed views (``atypes``/``lines``/``gaps``) are built lazily on
    first attribute access and cached: constructing a ``DecodedTrace``
    costs only the cheap vectorized summaries (length, compute cycles,
    integrality).  Callers that never enter a boxed hot loop — the
    reference kernel, the ``choose_kernel`` probe, streaming windows for
    idle cores — therefore never pay the ~30x boxed-list memory blowup,
    and ``CoreTrace.release_decoded`` frees it deterministically.

    Two run-length views support the batched kernel, which services whole
    runs of same-core L1 hits without re-entering the scheduler.  Both
    are computed lazily on first access (cached) — only the batched
    kernel reads them, and the reference/fast kernels should not pay for
    their construction:

    * ``run_stops`` — for each index, the index of the next barrier record
      at or after it (or the trace length).  A batched run starting at
      ``i`` may never execute past ``run_stops[i]``: barriers are global
      synchronization events the event loop must arbitrate.
    * ``gap_prefix`` — ``float64`` prefix sums of the raw gaps
      (``gap_prefix[j] - gap_prefix[i]`` is the compute charge of records
      ``[i, j)``), so a run's Compute contribution is one vectorized
      numpy-slice difference instead of per-record accumulation.  Exact —
      and therefore usable by a bit-identical kernel — only when
      ``gaps_integral`` (integer partial sums are order-independent).
    """

    __slots__ = (
        "length", "compute_cycles", "gaps_integral",
        "_types_array", "_gaps_array", "_lines_array",
        "_atypes", "_lines", "_gaps", "_run_stops", "_gap_prefix",
    )

    def __init__(self, trace: "CoreTrace") -> None:
        self.length = len(trace.types)
        non_barrier = trace.types != AccessType.BARRIER
        self.compute_cycles = float(
            trace.gaps[non_barrier].sum(dtype=np.float64)
        )
        self.gaps_integral = trace.gaps.dtype.kind in "iub" or bool(
            np.all(trace.gaps == np.floor(trace.gaps))
        )
        # Backing arrays retained for the lazy boxed/run-length views;
        # frozen while this decoded view is cached (see CoreTrace.decoded).
        self._types_array = trace.types
        self._gaps_array = trace.gaps
        self._lines_array = trace.lines
        self._atypes: list | None = None
        self._lines: list[int] | None = None
        self._gaps: list[float] | None = None
        self._run_stops: list[int] | None = None
        self._gap_prefix: np.ndarray | None = None

    @property
    def atypes(self) -> list:
        """Boxed :class:`AccessType` members (built and cached on first use)."""
        atypes = self._atypes
        if atypes is None:
            table = _ACCESS_TYPE_BY_VALUE
            atypes = [table[value] for value in self._types_array.tolist()]
            self._atypes = atypes
        return atypes

    @property
    def lines(self) -> list[int]:
        """Boxed native-int line addresses (built and cached on first use)."""
        lines = self._lines
        if lines is None:
            lines = self._lines_array.tolist()
            self._lines = lines
        return lines

    @property
    def gaps(self) -> list[float]:
        """Boxed native-float gaps (built and cached on first use)."""
        gaps = self._gaps
        if gaps is None:
            gaps = self._gaps_array.astype(np.float64).tolist()
            self._gaps = gaps
        return gaps

    @property
    def barrier_count(self) -> int:
        """Number of barrier records (vectorized; no run_stops needed)."""
        return int(np.count_nonzero(self._types_array == AccessType.BARRIER))

    @property
    def run_stops(self) -> list[int]:
        stops = self._run_stops
        if stops is None:
            barrier_at = np.flatnonzero(self._types_array == AccessType.BARRIER)
            boundaries = np.append(barrier_at, self.length)
            stops = boundaries[
                np.searchsorted(barrier_at, np.arange(self.length), side="left")
            ].tolist()
            self._run_stops = stops
        return stops

    @property
    def types_array(self) -> np.ndarray:
        """Raw ``uint8`` access-type codes (columnar view for the vector
        kernel's span oracles; frozen while the decoded view is cached)."""
        return self._types_array

    @property
    def lines_array(self) -> np.ndarray:
        """Raw ``int64`` line addresses (columnar view for the vector
        kernel's span oracles; frozen while the decoded view is cached)."""
        return self._lines_array

    @property
    def gaps_array(self) -> np.ndarray:
        """Raw per-record gaps (columnar view for the vector kernel's
        exact clock replay; frozen while the decoded view is cached).
        May carry an integer dtype — widening to float64 is exact."""
        return self._gaps_array

    @property
    def gap_prefix(self) -> np.ndarray:
        prefix = self._gap_prefix
        if prefix is None:
            prefix = np.concatenate(
                ([0.0], np.cumsum(self._gaps_array, dtype=np.float64))
            )
            self._gap_prefix = prefix
        return prefix


@dataclasses.dataclass
class CoreTrace:
    """One core's access stream (parallel arrays)."""

    types: np.ndarray   # uint8 AccessType values
    lines: np.ndarray   # int64 line addresses
    gaps: np.ndarray    # uint16 compute cycles preceding each access

    def __post_init__(self) -> None:
        if not (len(self.types) == len(self.lines) == len(self.gaps)):
            raise ValueError("trace arrays must have equal length")
        self._decoded: DecodedTrace | None = None

    def __len__(self) -> int:
        return len(self.types)

    def decoded(self) -> DecodedTrace:
        """Cached :class:`DecodedTrace` view.

        Caching freezes the backing arrays (mutation would silently
        desynchronize the cached view from the array data): in-place
        writes raise until :meth:`release_decoded` thaws them.
        """
        if self._decoded is None:
            self._decoded = DecodedTrace(self)
            for array in (self.types, self.lines, self.gaps):
                array.setflags(write=False)
        return self._decoded

    def release_decoded(self) -> None:
        """Drop the cached decoded view (it rebuilds on demand).

        The view holds boxed-Python copies of the arrays — worth freeing
        once a batch of simulations over this trace is finished.  The
        backing arrays become writable again.
        """
        if self._decoded is not None:
            self._decoded = None
            for array in (self.types, self.lines, self.gaps):
                array.setflags(write=True)

    def barrier_count(self) -> int:
        return int(np.count_nonzero(self.types == AccessType.BARRIER))


@dataclasses.dataclass
class TraceSet:
    """Per-core traces plus the data-class layout of the address space."""

    #: Class marker the simulator dispatches on: a materialized set is
    #: simulated in one piece, while a streaming set
    #: (:class:`repro.workloads.streaming.StreamingTraceSet`, which
    #: duck-types this surface) is fed to the kernels in bounded-memory
    #: segments.
    is_streaming = False

    name: str
    cores: list[CoreTrace]
    #: (region, class) pairs with non-overlapping regions.
    regions: list[tuple[Region, LineClass]]
    #: Import provenance for sets ingested from external captures
    #: (:mod:`repro.workloads.imports`): source format/file/content hash
    #: and importer options.  ``None`` for synthetic traces; persisted
    #: by the version-2 ``.npz`` archive format.
    provenance: "dict | None" = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        self._bases = sorted(
            (region.base, region.end, line_class) for region, line_class in self.regions
        )
        self._starts = [base for base, _end, _cls in self._bases]
        self._coverage_checked = False
        barrier_counts = {trace.barrier_count() for trace in self.cores}
        if len(barrier_counts) > 1:
            raise ValueError(f"cores disagree on barrier count: {barrier_counts}")

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def decoded(self) -> list[DecodedTrace]:
        """Per-core :class:`DecodedTrace` views (cached on the cores).

        Cheap to call: the views' expensive boxed lists are built lazily
        per core on first hot-loop attribute access, not here — probing
        ``length``/``compute_cycles``/``barrier_count`` across all cores
        (the ``choose_kernel`` path) allocates nothing.
        """
        return [trace.decoded() for trace in self.cores]

    def segments(self, chunk_records: "int | None" = None):
        """Iterate the set as bounded-memory :class:`TraceSegment` chunks.

        Delegates to :func:`repro.workloads.streaming.iter_segments`; see
        there for the run-boundary handoff contract.
        """
        from repro.workloads.streaming import iter_segments

        return iter_segments(self, chunk_records)

    def release_decoded(self) -> None:
        """Drop every core's cached decoded view."""
        for trace in self.cores:
            trace.release_decoded()

    def validate_coverage(self) -> None:
        """Raise ``ValueError`` if any access targets an unmapped line.

        Every non-barrier record must fall inside one of the declared
        regions; a trace that accesses an unmapped line would otherwise
        silently desynchronize the region-based classifiers (Figure 1
        profiling, R-NUCA page classification) from the simulated traffic.
        The check is vectorized and runs once per :class:`TraceSet`.
        """
        if self._coverage_checked:
            return
        starts = np.array(self._starts, dtype=np.int64)
        ends = np.array([end for _base, end, _cls in self._bases], dtype=np.int64)
        barrier = int(AccessType.BARRIER)
        for core_id, trace in enumerate(self.cores):
            lines = trace.lines[trace.types != barrier]
            if lines.size == 0:
                continue
            if starts.size == 0:
                bad_line = int(lines[0])
            else:
                index = np.searchsorted(starts, lines, side="right") - 1
                covered = (index >= 0) & (lines < ends[np.maximum(index, 0)])
                if covered.all():
                    continue
                bad_line = int(lines[int(np.argmin(covered))])
            raise ValueError(
                f"trace {self.name!r}: core {core_id} accesses line "
                f"{bad_line:#x}, which no region of the TraceSet region map "
                f"covers — every accessed line must fall inside a declared "
                f"(Region, LineClass) entry"
            )
        self._coverage_checked = True

    def classify(self, line_addr: int) -> LineClass:
        """Data class of a line (Figure 1 categories)."""
        index = bisect.bisect_right(self._starts, line_addr) - 1
        if index >= 0:
            base, end, line_class = self._bases[index]
            if base <= line_addr < end:
                return line_class
        raise KeyError(f"line {line_addr:#x} not in any region")

    def total_accesses(self) -> int:
        barrier = int(AccessType.BARRIER)
        return sum(
            int(np.count_nonzero(trace.types != barrier)) for trace in self.cores
        )

    def footprint_lines(self) -> int:
        """Total distinct lines allocated across all regions."""
        return sum(region.size for region, _cls in self.regions)
