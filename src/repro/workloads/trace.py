"""Trace representation for the trace-driven simulator.

A trace is one access stream per core.  Each record is
``(type, line address, compute gap)`` where the gap is the number of
non-memory cycles the in-order core spends before issuing the access.
``AccessType.BARRIER`` records synchronize all cores (every core must
carry the same number of barriers).

The :class:`TraceSet` also carries the region → data-class map so the
Figure 1 profiler can classify lines without help from the simulator.
"""

from __future__ import annotations

import bisect
import dataclasses

import numpy as np

from repro.common.addr import Region
from repro.common.types import AccessType, LineClass


@dataclasses.dataclass
class CoreTrace:
    """One core's access stream (parallel arrays)."""

    types: np.ndarray   # uint8 AccessType values
    lines: np.ndarray   # int64 line addresses
    gaps: np.ndarray    # uint16 compute cycles preceding each access

    def __post_init__(self) -> None:
        if not (len(self.types) == len(self.lines) == len(self.gaps)):
            raise ValueError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.types)

    def barrier_count(self) -> int:
        return int(np.count_nonzero(self.types == AccessType.BARRIER))


@dataclasses.dataclass
class TraceSet:
    """Per-core traces plus the data-class layout of the address space."""

    name: str
    cores: list[CoreTrace]
    #: (region, class) pairs with non-overlapping regions.
    regions: list[tuple[Region, LineClass]]

    def __post_init__(self) -> None:
        self._bases = sorted(
            (region.base, region.end, line_class) for region, line_class in self.regions
        )
        self._starts = [base for base, _end, _cls in self._bases]
        barrier_counts = {trace.barrier_count() for trace in self.cores}
        if len(barrier_counts) > 1:
            raise ValueError(f"cores disagree on barrier count: {barrier_counts}")

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def classify(self, line_addr: int) -> LineClass:
        """Data class of a line (Figure 1 categories)."""
        index = bisect.bisect_right(self._starts, line_addr) - 1
        if index >= 0:
            base, end, line_class = self._bases[index]
            if base <= line_addr < end:
                return line_class
        raise KeyError(f"line {line_addr:#x} not in any region")

    def total_accesses(self) -> int:
        barrier = int(AccessType.BARRIER)
        return sum(
            int(np.count_nonzero(trace.types != barrier)) for trace in self.cores
        )

    def footprint_lines(self) -> int:
        """Total distinct lines allocated across all regions."""
        return sum(region.size for region, _cls in self.regions)
