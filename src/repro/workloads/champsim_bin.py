"""Binary ChampSim trace reader/writer (``.trace.xz`` fixed records).

Real ChampSim distributes captures as xz-compressed streams of fixed
64-byte ``input_instr`` records::

    uint64 ip;                 // instruction pointer
    uint8  is_branch;
    uint8  branch_taken;
    uint8  destination_registers[2];
    uint8  source_registers[4];
    uint64 destination_memory[2];   // byte addresses written (0 = unused)
    uint64 source_memory[4];        // byte addresses read   (0 = unused)

This module decodes that stream into the simulator's per-core record
arrays without ever materializing the capture: the file is read (and
lzma/gzip-decompressed) in bounded blocks, each block is expanded to
memory accesses with vectorized numpy ops, and the resulting per-core
segments either accumulate into a :class:`~repro.workloads.trace.CoreTrace`
list (the materializing :func:`read_champsim_bin` used by ``trace
import``) or flow straight into the streaming pipeline
(:mod:`repro.workloads.streaming`) one segment at a time.

Decode semantics per instruction: every non-zero ``source_memory`` slot
becomes a READ and every non-zero ``destination_memory`` slot a WRITE,
in slot order with reads before writes (the order ChampSim's own cache
model issues them).  Instructions are distributed over cores at
*instruction* granularity (all of an instruction's accesses stay on one
core); an instruction with no memory operands still consumes its
round-robin slot, so a given instruction index always lands on the same
core regardless of its neighbours' operand counts.  Compute gaps are
zero — the format carries no timing.
"""

from __future__ import annotations

import gzip
import lzma
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.common.types import AccessType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.imports import ImportOptions
    from repro.workloads.trace import CoreTrace, TraceSet

#: ChampSim's ``input_instr`` layout (little-endian, packed, 64 bytes).
RECORD_DTYPE = np.dtype([
    ("ip", "<u8"),
    ("is_branch", "u1"),
    ("branch_taken", "u1"),
    ("dst_regs", "u1", (2,)),
    ("src_regs", "u1", (4,)),
    ("dst_mem", "<u8", (2,)),
    ("src_mem", "<u8", (4,)),
])

RECORD_BYTES = RECORD_DTYPE.itemsize
assert RECORD_BYTES == 64, "input_instr must pack to 64 bytes"

NUM_SRC_MEM = 4
NUM_DST_MEM = 2

#: Instructions decoded per streamed block (4 MiB of raw records).
BLOCK_INSTRUCTIONS = 65536


class ChampSimBinError(ValueError):
    """A malformed binary ChampSim capture."""

    def __init__(self, source: "str | Path", message: str):
        super().__init__(f"{source}: {message}")
        self.source = str(source)


def open_binary(path: "str | Path", mode: str = "rb"):
    """Open a binary capture with transparent ``.xz``/``.gz`` handling.

    Writes use the fastest compression presets: the records are mostly
    zero padding (ratio stays good at any level) and multi-GB synthetic
    fixtures must not take minutes to emit.
    """
    path = Path(path)
    writing = "w" in mode or "a" in mode or "x" in mode
    if path.suffix == ".xz":
        return lzma.open(path, mode, preset=0) if writing else lzma.open(path, mode)
    if path.suffix == ".gz":
        return gzip.open(path, mode, compresslevel=1) if writing else gzip.open(path, mode)
    return open(path, mode)


def iter_instruction_blocks(
    path: "str | Path",
    block_instructions: int = BLOCK_INSTRUCTIONS,
    max_instructions: "int | None" = None,
) -> Iterator[np.ndarray]:
    """Yield bounded structured-array blocks of decoded instructions.

    The stream is read (and decompressed) ``block_instructions`` records
    at a time; a trailing partial record raises
    :class:`ChampSimBinError` (a truncated capture must not silently
    drop its tail).  ``max_instructions`` caps the total decoded — the
    ``--max-inst`` budget knob — and suppresses the truncation check
    past the cap (the budget may land mid-file).
    """
    if block_instructions < 1:
        raise ValueError(f"block_instructions must be >= 1, got {block_instructions}")
    remaining = max_instructions
    carry = b""
    try:
        with open_binary(path) as handle:
            while True:
                want = block_instructions if remaining is None else min(
                    block_instructions, remaining
                )
                if want == 0:
                    return  # instruction budget exhausted mid-stream
                data = handle.read(want * RECORD_BYTES - len(carry))
                if not data:
                    break
                buffer = carry + data
                count, tail = divmod(len(buffer), RECORD_BYTES)
                carry = buffer[len(buffer) - tail:] if tail else b""
                if count:
                    block = np.frombuffer(
                        buffer[: count * RECORD_BYTES], dtype=RECORD_DTYPE
                    )
                    if remaining is not None:
                        remaining -= len(block)
                    yield block
    except (lzma.LZMAError, gzip.BadGzipFile, EOFError) as error:
        raise ChampSimBinError(path, f"corrupt compressed stream ({error})") from None
    if carry:
        raise ChampSimBinError(
            path,
            f"truncated capture: {len(carry)} trailing bytes do not form a "
            f"whole {RECORD_BYTES}-byte record",
        )


def expand_block(
    block: np.ndarray, line_shift: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand one instruction block into per-access arrays.

    Returns ``(types, lines, ops_per_instruction)`` where ``types`` /
    ``lines`` list every memory access of the block in instruction order
    (reads before writes within an instruction, slot order within each
    kind) and ``ops_per_instruction`` gives each instruction's access
    count — the repeat vector a splitter needs to keep all of an
    instruction's accesses on one core.
    """
    # Row-major boolean indexing walks each instruction's slots in
    # column order, so concatenating sources before destinations yields
    # exactly the documented per-instruction access order.
    addresses = np.concatenate((block["src_mem"], block["dst_mem"]), axis=1)
    mask = addresses != 0
    op_types = np.empty((len(block), NUM_SRC_MEM + NUM_DST_MEM), dtype=np.uint8)
    op_types[:, :NUM_SRC_MEM] = int(AccessType.READ)
    op_types[:, NUM_SRC_MEM:] = int(AccessType.WRITE)
    lines = (addresses[mask] >> np.uint64(line_shift)).astype(np.int64)
    return op_types[mask], lines, mask.sum(axis=1)


def iter_access_segments(
    path: "str | Path",
    num_cores: int,
    line_shift: int,
    block_instructions: int = BLOCK_INSTRUCTIONS,
    max_instructions: "int | None" = None,
) -> Iterator[list[tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Stream a capture as per-core ``(types, lines, gaps)`` segments.

    Each yielded segment covers one decoded instruction block,
    round-robin split at instruction granularity (instruction ``i`` of
    the whole capture lands on core ``i % num_cores``), with zero gaps.
    This is the bounded-memory feed behind both the materializing
    importer and the streaming simulate path.
    """
    base = 0
    for block in iter_instruction_blocks(path, block_instructions, max_instructions):
        types, lines, counts = expand_block(block, line_shift)
        instr_cores = (base + np.arange(len(block), dtype=np.int64)) % num_cores
        base += len(block)
        op_cores = np.repeat(instr_cores, counts)
        segment = []
        for core in range(num_cores):
            core_mask = op_cores == core
            core_lines = lines[core_mask]
            segment.append((
                types[core_mask],
                core_lines,
                np.zeros(len(core_lines), dtype=np.uint16),
            ))
        yield segment


def read_champsim_bin(path: "str | Path", options: "ImportOptions") -> "list[CoreTrace]":
    """Materialize a binary capture into per-core traces (``trace import``)."""
    from repro.workloads.imports import TraceImportError
    from repro.workloads.trace import CoreTrace

    num_cores = options.num_cores or 1
    parts: list[list[tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(num_cores)]
    for segment in iter_access_segments(
        path, num_cores, options.line_shift,
        max_instructions=options.max_records,
    ):
        for core, (types, lines, _gaps) in enumerate(segment):
            if len(types):
                parts[core].append((types, lines))
    cores = []
    for core_parts in parts:
        if core_parts:
            types = np.concatenate([part[0] for part in core_parts])
            lines = np.concatenate([part[1] for part in core_parts])
        else:
            types = np.empty(0, dtype=np.uint8)
            lines = np.empty(0, dtype=np.int64)
        cores.append(CoreTrace(
            types=types, lines=lines, gaps=np.zeros(len(types), dtype=np.uint16)
        ))
    if not any(len(trace) for trace in cores):
        raise TraceImportError(path, None, "capture contains no memory accesses")
    return cores


def write_champsim_bin(
    traces: "TraceSet", path: "str | Path", line_bytes: int = 64
) -> Path:
    """Write a trace set as a binary ChampSim capture (lossy: no timing).

    One instruction per record, cores interleaved round-robin (so
    re-importing with the same core count reconstructs the per-core
    streams exactly): reads carry their byte address in
    ``source_memory[0]``, writes in ``destination_memory[0]``.  Like the
    text exporter, barriers, compute gaps and instruction fetches are
    not representable.  A ``.xz``/``.gz`` suffix compresses the output.
    """
    from repro.workloads.imports import _require_exportable

    _require_exportable(traces, "champsim-bin", allow_ifetch=False)
    path = Path(path)
    shift = line_bytes.bit_length() - 1
    length = len(traces.cores[0]) if traces.cores else 0
    num_cores = traces.num_cores
    with open_binary(path, "wb") as handle:
        # Interleave in bounded record blocks so multi-GB exports stream.
        rows_per_block = max(1, BLOCK_INSTRUCTIONS // max(num_cores, 1))
        for start in range(0, length, rows_per_block):
            end = min(start + rows_per_block, length)
            rows = end - start
            records = np.zeros(rows * num_cores, dtype=RECORD_DTYPE)
            sequence = np.arange(start * num_cores, end * num_cores, dtype=np.uint64)
            records["ip"] = 0x400000 + 4 * sequence
            for core, trace in enumerate(traces.cores):
                types = np.asarray(trace.types[start:end])
                addrs = (
                    np.asarray(trace.lines[start:end]).astype(np.uint64)
                    << np.uint64(shift)
                )
                dest = records[core::num_cores]
                writes = types == int(AccessType.WRITE)
                src = dest["src_mem"]
                dst = dest["dst_mem"]
                src[:, 0] = np.where(writes, 0, addrs)
                dst[:, 0] = np.where(writes, addrs, 0)
                dest["src_mem"] = src
                dest["dst_mem"] = dst
            handle.write(records.tobytes())
    return path


def synthesize_champsim_bin(
    path: "str | Path",
    instructions: int,
    seed: int = 1,
    footprint_lines: int = 1 << 16,
    line_bytes: int = 64,
    write_fraction: float = 0.2,
    hot_lines: int = 0,
    hot_fraction: float = 0.0,
) -> Path:
    """Generate a synthetic binary capture of ``instructions`` records.

    Purpose-built for the streaming benchmarks and the CI
    ``streaming-smoke`` fixture: multi-million-instruction captures are
    written in vectorized blocks (bounded memory, fast even through
    lzma), one memory access per instruction, addresses drawn from a
    bounded ``footprint_lines`` working set so region inference stays
    small no matter the trace length.

    ``hot_lines``/``hot_fraction`` mix in cache locality: that fraction
    of accesses is drawn from the first ``hot_lines`` lines of the
    footprint, giving real caches an L1-resident hot set — without it a
    uniform draw over a large footprint makes every access a miss, which
    benchmarks the miss path rather than the streaming machinery.
    """
    rng = np.random.default_rng(seed)
    path = Path(path)
    shift = line_bytes.bit_length() - 1
    written = 0
    with open_binary(path, "wb") as handle:
        while written < instructions:
            rows = min(BLOCK_INSTRUCTIONS * 4, instructions - written)
            records = np.zeros(rows, dtype=RECORD_DTYPE)
            records["ip"] = 0x400000 + 4 * np.arange(
                written, written + rows, dtype=np.uint64
            )
            # Line 0 is reserved as the "unused slot" sentinel, so draw
            # from [1, footprint_lines].
            lines = rng.integers(1, footprint_lines + 1, size=rows, dtype=np.uint64)
            if hot_lines and hot_fraction:
                hot = rng.random(rows) < hot_fraction
                lines[hot] = rng.integers(
                    1, hot_lines + 1, size=int(hot.sum()), dtype=np.uint64
                )
            addrs = lines << np.uint64(shift)
            writes = rng.random(rows) < write_fraction
            src = records["src_mem"]
            dst = records["dst_mem"]
            src[:, 0] = np.where(writes, 0, addrs)
            dst[:, 0] = np.where(writes, addrs, 0)
            records["src_mem"] = src
            records["dst_mem"] = dst
            handle.write(records.tobytes())
            written += rows
    return path
