"""Trace persistence: save/load trace sets as ``.npz`` archives.

Generating a trace is fast, but persisted traces make experiments
byte-reproducible across library versions and let users bring their own
traces (e.g. converted from a real ChampSim/pin/DynamoRIO capture via
:mod:`repro.workloads.imports`) into the simulator: any
:class:`~repro.workloads.trace.TraceSet` can be rebuilt from three
arrays per core plus the region/class table.

Format history:

* **version 1** — per-core ``types``/``lines``/``gaps`` arrays plus the
  JSON metadata blob (name, core count, region table).
* **version 2** — adds an optional ``provenance`` mapping to the
  metadata (source capture format, file name, content hash, importer
  options), carried on ``TraceSet.provenance``.  Version 1 archives
  still load (their provenance is ``None``).

:func:`load_trace_set` refuses archives written by a *newer* library
version outright: a future layout could otherwise misparse silently
into plausible-looking garbage.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.common.addr import Region
from repro.common.types import LineClass
from repro.workloads.trace import CoreTrace, TraceSet

#: Format marker stored in the archive for forward compatibility.
FORMAT_VERSION = 2

#: Oldest archive version :func:`load_trace_set` can still read.
MIN_SUPPORTED_VERSION = 1


def save_trace_set(traces: TraceSet, path: str | Path) -> Path:
    """Serialize a trace set to a single ``.npz`` file."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    for index, trace in enumerate(traces.cores):
        arrays[f"types_{index}"] = trace.types
        arrays[f"lines_{index}"] = trace.lines
        arrays[f"gaps_{index}"] = trace.gaps
    metadata = {
        "version": FORMAT_VERSION,
        "name": traces.name,
        "num_cores": traces.num_cores,
        "regions": [
            {"base": region.base, "size": region.size, "class": int(line_class)}
            for region, line_class in traces.regions
        ],
        "provenance": traces.provenance,
    }
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace_set(path: str | Path) -> TraceSet:
    """Load a trace set previously written by :func:`save_trace_set`.

    Raises ``ValueError`` when the archive's format version is newer
    than this library understands (the file is from a newer release —
    upgrade to read it) or older than :data:`MIN_SUPPORTED_VERSION`.
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        version = metadata.get("version")
        if not isinstance(version, int):
            raise ValueError(
                f"{path}: trace archive carries no integer format version "
                f"(got {version!r}); not a repro trace archive?"
            )
        if version > FORMAT_VERSION:
            raise ValueError(
                f"{path}: trace archive format version {version} is newer "
                f"than the latest this library understands "
                f"({FORMAT_VERSION}); upgrade repro to load it"
            )
        if version < MIN_SUPPORTED_VERSION:
            raise ValueError(
                f"{path}: trace archive format version {version} predates "
                f"the oldest supported version ({MIN_SUPPORTED_VERSION})"
            )
        cores = [
            CoreTrace(
                types=archive[f"types_{index}"],
                lines=archive[f"lines_{index}"],
                gaps=archive[f"gaps_{index}"],
            )
            for index in range(metadata["num_cores"])
        ]
    regions = [
        (Region(entry["base"], entry["size"]), LineClass(entry["class"]))
        for entry in metadata["regions"]
    ]
    return TraceSet(
        metadata["name"], cores, regions,
        provenance=metadata.get("provenance"),
    )
