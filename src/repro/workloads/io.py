"""Trace persistence: save/load trace sets as ``.npz`` archives.

Generating a trace is fast, but persisted traces make experiments
byte-reproducible across library versions and let users bring their own
traces (e.g. converted from a real pin/DynamoRIO capture) into the
simulator: any ``TraceSet`` can be rebuilt from three arrays per core
plus the region/class table.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.common.addr import Region
from repro.common.types import LineClass
from repro.workloads.trace import CoreTrace, TraceSet

#: Format marker stored in the archive for forward compatibility.
FORMAT_VERSION = 1


def save_trace_set(traces: TraceSet, path: str | Path) -> Path:
    """Serialize a trace set to a single ``.npz`` file."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    for index, trace in enumerate(traces.cores):
        arrays[f"types_{index}"] = trace.types
        arrays[f"lines_{index}"] = trace.lines
        arrays[f"gaps_{index}"] = trace.gaps
    metadata = {
        "version": FORMAT_VERSION,
        "name": traces.name,
        "num_cores": traces.num_cores,
        "regions": [
            {"base": region.base, "size": region.size, "class": int(line_class)}
            for region, line_class in traces.regions
        ],
    }
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace_set(path: str | Path) -> TraceSet:
    """Load a trace set previously written by :func:`save_trace_set`."""
    with np.load(Path(path)) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        version = metadata.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version!r}; "
                f"expected {FORMAT_VERSION}"
            )
        cores = [
            CoreTrace(
                types=archive[f"types_{index}"],
                lines=archive[f"lines_{index}"],
                gaps=archive[f"gaps_{index}"],
            )
            for index in range(metadata["num_cores"])
        ]
    regions = [
        (Region(entry["base"], entry["size"]), LineClass(entry["class"]))
        for entry in metadata["regions"]
    ]
    return TraceSet(metadata["name"], cores, regions)
