"""Workloads: trace format, synthetic generators, benchmark catalog."""

from repro.workloads.benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    BenchmarkProfile,
    build_trace,
    get_profile,
)
from repro.workloads.imports import (
    ImportOptions,
    TraceImportError,
    detect_format,
    export_csv,
    import_trace,
    infer_regions,
    trace_content_hash,
)
from repro.workloads.champsim_bin import (
    read_champsim_bin,
    synthesize_champsim_bin,
    write_champsim_bin,
)
from repro.workloads.io import load_trace_set, save_trace_set
from repro.workloads.streaming import (
    StreamingTraceSet,
    iter_segments,
    stream_chunk_records,
    stream_threshold_bytes,
)
from repro.workloads.generators import (
    ComponentStream,
    compute_gaps,
    interleave_components,
    loop_component,
    migratory_component,
    producer_consumer_component,
    stream_component,
    zipf_component,
)
from repro.workloads.trace import CoreTrace, TraceSet

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkProfile",
    "ComponentStream",
    "CoreTrace",
    "ImportOptions",
    "StreamingTraceSet",
    "TraceImportError",
    "TraceSet",
    "build_trace",
    "iter_segments",
    "read_champsim_bin",
    "stream_chunk_records",
    "stream_threshold_bytes",
    "synthesize_champsim_bin",
    "write_champsim_bin",
    "compute_gaps",
    "detect_format",
    "export_csv",
    "get_profile",
    "import_trace",
    "infer_regions",
    "interleave_components",
    "load_trace_set",
    "trace_content_hash",
    "loop_component",
    "migratory_component",
    "save_trace_set",
    "producer_consumer_component",
    "stream_component",
    "zipf_component",
]
