"""Workloads: trace format, synthetic generators, benchmark catalog."""

from repro.workloads.benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    BenchmarkProfile,
    build_trace,
    get_profile,
)
from repro.workloads.io import load_trace_set, save_trace_set
from repro.workloads.generators import (
    ComponentStream,
    compute_gaps,
    interleave_components,
    loop_component,
    migratory_component,
    producer_consumer_component,
    stream_component,
    zipf_component,
)
from repro.workloads.trace import CoreTrace, TraceSet

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkProfile",
    "ComponentStream",
    "CoreTrace",
    "TraceSet",
    "build_trace",
    "compute_gaps",
    "get_profile",
    "interleave_components",
    "load_trace_set",
    "loop_component",
    "migratory_component",
    "save_trace_set",
    "producer_consumer_component",
    "stream_component",
    "zipf_component",
]
