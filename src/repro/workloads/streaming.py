"""Streaming giga-trace pipeline: bounded-memory trace segmentation.

Materialized simulation holds a whole :class:`~repro.workloads.trace.TraceSet`
— and, for the optimized kernels, its boxed
:class:`~repro.workloads.trace.DecodedTrace` views — in memory at once.
Real ChampSim captures are multi-GB, so this module feeds the simulator
in bounded **segments** instead:

* :class:`SegmentSource` — the per-core pull interface the streaming
  event loop (:mod:`repro.sim.streaming`) drains: ``pull(core)`` returns
  the core's next bounded ``(types, lines, gaps)`` arrays, or ``None``
  when that core's stream is exhausted.  Two implementations:

  - :class:`ArraySegmentSource` slices an in-memory :class:`TraceSet`
    (the ``.npz`` path: the compact arrays fit, the boxed views would
    not — streaming bounds the boxed window to one chunk per core);
  - :class:`CaptureSegmentSource` decodes an external capture file
    block-by-block (the direct-capture path: nothing but the current
    decode block and small per-core staging buffers ever exists).

* :class:`SegmentProducer` — the decode/simulate overlap: a background
  thread pulls decoded segments from a source iterator into a bounded
  queue (``REPRO_STREAM_QUEUE`` deep) so chunk ``N+1`` is decompressed
  and decoded while the kernel simulates chunk ``N``.

* :class:`StreamingTraceSet` — the :class:`TraceSet`-shaped façade
  (``is_streaming = True``) that :func:`repro.sim.simulator.simulate`
  dispatches to the streaming executor.  It is *re-openable*: each
  simulation run calls :meth:`open_source` for a fresh source, so one
  streaming set can drive a whole experiment grid.

* :func:`iter_segments` — the inspection/test-facing segment iterator
  behind :meth:`TraceSet.segments`, yielding lock-step
  :class:`TraceSegment` windows of decoded chunks plus the explicit
  per-core handoff offsets.

Chunk size comes from ``REPRO_STREAM_CHUNK`` (records per core per
chunk, default :data:`DEFAULT_CHUNK_RECORDS`); the queue depth from
``REPRO_STREAM_QUEUE``.  Memory stays proportional to
``num_cores x chunk``, independent of trace length — see the README's
"Streaming giga-traces" section for the measured envelope.
"""

from __future__ import annotations

import bisect
import dataclasses
import os
import queue
import threading
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.common.addr import Region
from repro.common.types import AccessType, LineClass
from repro.workloads.trace import CoreTrace, DecodedTrace, TraceSet

#: Default records per core per chunk.  At ~17 bytes/record of array
#: data plus the boxed window the kernels touch (~600 bytes/record
#: worst case), a 64-core machine stays well under a GB.
DEFAULT_CHUNK_RECORDS = 65536

#: Environment knobs (documented in the README).
STREAM_CHUNK_ENV = "REPRO_STREAM_CHUNK"
STREAM_QUEUE_ENV = "REPRO_STREAM_QUEUE"
STREAM_THRESHOLD_ENV = "REPRO_STREAM_THRESHOLD"

#: Archive size (bytes) above which ``imported:`` benchmarks stream by
#: default (``REPRO_STREAM_THRESHOLD`` overrides; ``0`` streams always,
#: a negative value never streams).
DEFAULT_STREAM_THRESHOLD = 64 * 1024 * 1024

#: Default bounded-queue depth for the decode/simulate overlap.
DEFAULT_QUEUE_DEPTH = 2


def stream_chunk_records(chunk_records: "int | None" = None) -> int:
    """Resolve the chunk size: explicit value, else env, else default."""
    if chunk_records is None:
        raw = os.environ.get(STREAM_CHUNK_ENV)
        chunk_records = int(raw) if raw else DEFAULT_CHUNK_RECORDS
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    return chunk_records


def stream_queue_depth() -> int:
    raw = os.environ.get(STREAM_QUEUE_ENV)
    depth = int(raw) if raw else DEFAULT_QUEUE_DEPTH
    if depth < 1:
        raise ValueError(f"{STREAM_QUEUE_ENV} must be >= 1, got {depth}")
    return depth


def stream_threshold_bytes() -> int:
    raw = os.environ.get(STREAM_THRESHOLD_ENV)
    return int(raw) if raw else DEFAULT_STREAM_THRESHOLD


# ---------------------------------------------------------------------------
# Segment sources
# ---------------------------------------------------------------------------

#: One core's chunk: parallel (types uint8, lines int64, gaps) arrays.
CoreChunk = "tuple[np.ndarray, np.ndarray, np.ndarray]"


class SegmentSource:
    """Per-core bounded record feed for one simulation run.

    ``pull(core)`` hands the streaming event loop the next window of
    records for ``core`` — up to ``chunk_records`` of them — or ``None``
    when the core's stream is exhausted.  Pulls happen only for the
    *starved* (globally earliest) core, so a source needs no global
    barrier alignment; it only promises per-core record order.
    """

    num_cores: int
    chunk_records: int

    def pull(self, core: int):  # -> CoreChunk | None
        raise NotImplementedError

    def close(self) -> None:
        """Release any decode thread / file handle (idempotent)."""


class ArraySegmentSource(SegmentSource):
    """Slice an in-memory :class:`TraceSet` into per-core windows.

    The backing arrays stay as-is (compact numpy, no boxing); each pull
    is a zero-copy slice, so the only per-window cost is the boxed
    :class:`DecodedTrace` view the executor builds — bounded by the
    chunk size instead of the trace length.
    """

    def __init__(self, traces: TraceSet, chunk_records: "int | None" = None):
        self.traces = traces
        self.num_cores = traces.num_cores
        self.chunk_records = stream_chunk_records(chunk_records)
        self._offsets = [0] * self.num_cores

    def pull(self, core: int):
        trace = self.traces.cores[core]
        start = self._offsets[core]
        if start >= len(trace):
            return None
        end = min(start + self.chunk_records, len(trace))
        self._offsets[core] = end
        return (
            trace.types[start:end],
            trace.lines[start:end],
            trace.gaps[start:end],
        )


class CaptureSegmentSource(SegmentSource):
    """Drain an iterator of decoded per-core segments, with staging.

    The feed (e.g. :func:`repro.workloads.champsim_bin.iter_access_segments`,
    optionally wrapped in a :class:`SegmentProducer` for background
    decode) yields *lock-step* segments: one list of per-core chunks per
    decoded file block.  The event loop pulls per core on demand, so
    chunks for not-yet-starved cores wait in per-core staging queues.

    Staging is bounded by consumption skew, not trace length: each
    pulled block adds at most one chunk per core, and a core's staging
    drains the moment it starves.  Pathologically time-imbalanced
    captures (one core's records orders of magnitude cheaper than
    another's) can grow the slow cores' staging — the README documents
    the envelope; balanced round-robin captures stay at O(queue depth)
    blocks.
    """

    def __init__(
        self,
        segments: "Iterable[list[CoreChunk]]",
        num_cores: int,
        chunk_records: "int | None" = None,
    ):
        self.num_cores = num_cores
        self.chunk_records = stream_chunk_records(chunk_records)
        self._segments = iter(segments)
        self._staged: list[list] = [[] for _ in range(num_cores)]
        self._exhausted = False

    def _advance(self) -> bool:
        """Stage one more decoded segment; False at end of stream."""
        if self._exhausted:
            return False
        try:
            segment = next(self._segments)
        except StopIteration:
            self._exhausted = True
            return False
        if len(segment) != self.num_cores:
            raise ValueError(
                f"segment feed yielded {len(segment)} core chunks for a "
                f"{self.num_cores}-core stream"
            )
        for core, chunk in enumerate(segment):
            if len(chunk[0]):
                self._staged[core].append(chunk)
        return True

    def pull(self, core: int):
        staged = self._staged[core]
        while not staged:
            if not self._advance():
                return None
        if len(staged) == 1:
            types, lines, gaps = staged.pop()
        else:
            # Consumption skew batched several blocks for this core;
            # hand them over as one window (fewer suspends later).
            types = np.concatenate([chunk[0] for chunk in staged])
            lines = np.concatenate([chunk[1] for chunk in staged])
            gaps = np.concatenate([chunk[2] for chunk in staged])
            staged.clear()
        return types, lines, gaps

    def close(self) -> None:
        closer = getattr(self._segments, "close", None)
        if closer is not None:
            closer()


# ---------------------------------------------------------------------------
# Decode/simulate overlap: the producer thread
# ---------------------------------------------------------------------------

_DONE = object()


class SegmentProducer:
    """Background-thread prefetch of a segment iterator (bounded queue).

    Wraps any iterator of decoded segments: a daemon thread advances it
    — file read, decompression, numpy decode — and parks the results in
    a ``queue.Queue`` of depth ``depth``, so the consumer (the
    simulation loop) overlaps chunk ``N``'s simulate with chunk
    ``N+1``'s decode.  Iterating the producer yields the segments in
    order; producer-side exceptions re-raise at the consumption point.
    ``close()`` cancels the thread promptly (the producer checks a stop
    flag each block) and joins it.
    """

    def __init__(self, segments: Iterable, depth: "int | None" = None):
        self._queue: queue.Queue = queue.Queue(
            maxsize=depth if depth is not None else stream_queue_depth()
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._produce, args=(iter(segments),),
            name="repro-stream-decode", daemon=True,
        )
        self._thread.start()

    def _produce(self, segments: Iterator) -> None:
        try:
            for segment in segments:
                while not self._stop.is_set():
                    try:
                        self._queue.put(segment, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if self._stop.is_set():
                    return
            self._put_forever(_DONE)
        except BaseException as error:  # propagate to the consumer
            self._put_forever(error)

    def _put_forever(self, item) -> None:
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def __iter__(self) -> Iterator:
        while True:
            item = self._queue.get()
            if item is _DONE:
                return
            if isinstance(item, BaseException):
                raise item
            yield item

    def close(self) -> None:
        self._stop.set()
        # Drain so a producer blocked on put() observes the stop flag.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The TraceSet-shaped streaming façade
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class StreamingTraceSet:
    """A re-openable streaming trace with the :class:`TraceSet` surface
    the simulator needs (``is_streaming = True`` routes
    :func:`repro.sim.simulator.simulate` to the streaming executor).

    ``source_factory`` opens a fresh :class:`SegmentSource` per
    simulation run, so the set can drive many runs (an experiment grid)
    like a materialized set can.  ``regions`` must cover every accessed
    line — the builders guarantee it (the npz wrapper inherits the
    archive's map; the capture builder pre-scans), so per-run coverage
    validation is by construction.

    ``gaps_integral`` must be ``True`` only when *every* record's gap is
    provably integer-valued: the streaming executor batches Compute
    charges on its strength, which is exact only for integer sums.
    When in doubt leave it ``False`` — per-record charging in reference
    order is always bit-identical, just slower.
    """

    name: str
    num_cores: int
    regions: "list[tuple[Region, LineClass]]"
    source_factory: "Callable[[], SegmentSource]"
    provenance: "dict | None" = None
    gaps_integral: bool = False
    #: Total records/barriers when known (CLI reporting, kernel hints).
    total_records: "int | None" = None
    total_barriers: "int | None" = None

    is_streaming = True

    def __post_init__(self) -> None:
        self._bases = sorted(
            (region.base, region.end, line_class)
            for region, line_class in self.regions
        )
        self._starts = [base for base, _end, _cls in self._bases]

    def open_source(self) -> SegmentSource:
        """A fresh segment source positioned at the start of the trace."""
        return self.source_factory()

    # -- TraceSet surface ---------------------------------------------------
    def validate_coverage(self) -> None:
        """Coverage holds by construction (see the class docstring);
        the streaming executor additionally validates each window."""

    def classify(self, line_addr: int) -> LineClass:
        index = bisect.bisect_right(self._starts, line_addr) - 1
        if index >= 0:
            base, end, line_class = self._bases[index]
            if base <= line_addr < end:
                return line_class
        raise KeyError(f"line {line_addr:#x} not in any region")

    def release_decoded(self) -> None:
        """Nothing cached to release — windows die with their run."""

    def total_accesses(self) -> "int | None":
        return self.total_records

    def footprint_lines(self) -> int:
        return sum(region.size for region, _cls in self.regions)

    # -- builders -----------------------------------------------------------
    @classmethod
    def from_trace_set(
        cls,
        traces: TraceSet,
        chunk_records: "int | None" = None,
    ) -> "StreamingTraceSet":
        """Stream an in-memory set (bounds the *boxed* working set)."""
        gaps_integral = all(
            trace.gaps.dtype.kind in "iub"
            or bool(np.all(trace.gaps == np.floor(trace.gaps)))
            for trace in traces.cores
        )
        return cls(
            name=traces.name,
            num_cores=traces.num_cores,
            regions=traces.regions,
            source_factory=lambda: ArraySegmentSource(traces, chunk_records),
            provenance=traces.provenance,
            gaps_integral=gaps_integral,
            total_records=traces.total_accesses(),
            total_barriers=traces.cores[0].barrier_count() if traces.cores else 0,
        )

    @classmethod
    def from_champsim_bin(
        cls,
        path: "str | Path",
        num_cores: int = 1,
        line_bytes: int = 64,
        chunk_records: "int | None" = None,
        max_instructions: "int | None" = None,
        name: "str | None" = None,
        overlap: bool = True,
    ) -> "StreamingTraceSet":
        """Stream a binary ChampSim capture file directly (no ``.npz``).

        Pass 1 scans the capture once (bounded blocks) to infer the
        region map and record counts; each simulation run then re-opens
        and re-decodes it, with the decode running on a
        :class:`SegmentProducer` thread when ``overlap`` is on.  Peak
        memory is independent of capture length (footprint-bounded
        region inference aside).
        """
        from repro.workloads.champsim_bin import iter_access_segments
        from repro.workloads.imports import infer_regions

        path = Path(path)
        line_shift = line_bytes.bit_length() - 1
        chunk = stream_chunk_records(chunk_records)
        # Decode blocks sized so each core receives ~chunk records.
        block_instructions = max(1024, chunk * num_cores)

        scanner = _RegionScan(num_cores)
        total = 0
        for segment in iter_access_segments(
            path, num_cores, line_shift, block_instructions, max_instructions
        ):
            for core, (types, lines, _gaps) in enumerate(segment):
                scanner.observe(core, types, lines)
                total += len(types)
        regions = scanner.regions()
        if total == 0:
            from repro.workloads.imports import TraceImportError

            raise TraceImportError(path, None, "capture contains no memory accesses")

        def factory() -> SegmentSource:
            segments: Iterable = iter_access_segments(
                path, num_cores, line_shift, block_instructions, max_instructions
            )
            if overlap:
                segments = SegmentProducer(segments)
            return CaptureSegmentSource(segments, num_cores, chunk)

        from repro.workloads.imports import trace_content_hash

        return cls(
            name=name or path.name.split(".")[0],
            num_cores=num_cores,
            regions=regions,
            source_factory=factory,
            provenance={
                "format": "champsim-bin",
                "source": path.name,
                "source_sha256": trace_content_hash(path),
                "num_cores": num_cores,
                "split": "round-robin",
                "line_bytes": line_bytes,
                "records": total,
                "barriers": 0,
                "streamed": True,
            },
            gaps_integral=True,  # the decoder emits zero gaps
            total_records=total,
            total_barriers=0,
        )


class _RegionScan:
    """Incremental :func:`~repro.workloads.imports.infer_regions` input.

    Accumulates each core's unique data/written/fetched line sets across
    streamed segments (memory bounded by the *footprint*, not the trace
    length), then reconstructs the region map with the same
    classification rules the materializing importer uses.
    """

    def __init__(self, num_cores: int):
        self._data = [np.empty(0, dtype=np.int64) for _ in range(num_cores)]
        self._written = [np.empty(0, dtype=np.int64) for _ in range(num_cores)]
        self._fetched = [np.empty(0, dtype=np.int64) for _ in range(num_cores)]

    def observe(self, core: int, types: np.ndarray, lines: np.ndarray) -> None:
        data_mask = (types == AccessType.READ) | (types == AccessType.WRITE)
        if data_mask.any():
            self._data[core] = np.union1d(self._data[core], lines[data_mask])
        write_mask = types == AccessType.WRITE
        if write_mask.any():
            self._written[core] = np.union1d(self._written[core], lines[write_mask])
        fetch_mask = types == AccessType.IFETCH
        if fetch_mask.any():
            self._fetched[core] = np.union1d(self._fetched[core], lines[fetch_mask])

    def regions(self) -> "list[tuple[Region, LineClass]]":
        from repro.workloads.imports import infer_regions

        cores = []
        for data, written, fetched in zip(self._data, self._written, self._fetched):
            # Rebuild a minimal per-core trace carrying exactly the
            # (unique line, kind) facts infer_regions consumes: one READ
            # per data line, one WRITE per written line, one IFETCH per
            # fetched line.
            types = np.concatenate((
                np.full(len(data), int(AccessType.READ), dtype=np.uint8),
                np.full(len(written), int(AccessType.WRITE), dtype=np.uint8),
                np.full(len(fetched), int(AccessType.IFETCH), dtype=np.uint8),
            ))
            lines = np.concatenate((data, written, fetched))
            cores.append(CoreTrace(
                types=types, lines=lines,
                gaps=np.zeros(len(lines), dtype=np.uint16),
            ))
        return infer_regions(cores)


# ---------------------------------------------------------------------------
# Lock-step segment iteration (TraceSet.segments)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class TraceSegment:
    """One lock-step window of a segmented trace.

    ``decoded`` holds a bounded :class:`DecodedTrace` per core (cores
    already exhausted get an empty one); ``start`` / ``stop`` give each
    core's global record offsets — the explicit handoff state a consumer
    needs to stitch windows (the streaming executor carries richer state
    — clocks, pending barriers — in
    :class:`repro.sim.streaming.StreamHandoff`).
    """

    index: int
    decoded: "list[DecodedTrace]"
    start: "tuple[int, ...]"
    stop: "tuple[int, ...]"
    last: bool


def window_decoded(types: np.ndarray, lines: np.ndarray, gaps: np.ndarray) -> DecodedTrace:
    """A bounded-window :class:`DecodedTrace` over chunk arrays."""
    return DecodedTrace(CoreTrace(types=types, lines=lines, gaps=gaps))


def iter_segments(
    traces: TraceSet, chunk_records: "int | None" = None
) -> Iterator[TraceSegment]:
    """Yield a :class:`TraceSet` as bounded lock-step segments.

    Every core advances by up to ``chunk_records`` per segment; the
    yielded windows cover every record exactly once and carry the
    per-core global offsets, so ``concat(segments) == trace`` per core.
    This is the inspection-facing counterpart of the executor's
    per-core starvation-driven pulls (which need no lock-step).
    """
    chunk = stream_chunk_records(chunk_records)
    lengths = [len(trace) for trace in traces.cores]
    offsets = [0] * traces.num_cores
    index = 0
    while any(offset < length for offset, length in zip(offsets, lengths)):
        start = tuple(offsets)
        decoded = []
        for core, trace in enumerate(traces.cores):
            begin = offsets[core]
            end = min(begin + chunk, lengths[core])
            offsets[core] = end
            decoded.append(window_decoded(
                trace.types[begin:end],
                trace.lines[begin:end],
                trace.gaps[begin:end],
            ))
        yield TraceSegment(
            index=index,
            decoded=decoded,
            start=start,
            stop=tuple(offsets),
            last=all(offset >= length for offset, length in zip(offsets, lengths)),
        )
        index += 1
