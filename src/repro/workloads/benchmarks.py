"""The 21-benchmark catalog (Table 2 equivalent) and the trace builder.

Each profile is a synthetic stand-in for one paper benchmark, with its
mix of instruction / private / shared-read-only / shared-read-write /
migratory accesses, working-set sizes and access patterns chosen to
match the paper's qualitative description of that benchmark (Figure 1
run-length mix and the Section 4.1 narrative).  The paper's actual
problem sizes are recorded in ``paper_input`` for the Table 2 listing.

Working sets are expressed *relative to the machine's cache geometry*
(multiples of an L1-D, an L1-I or the machine's total LLC capacity), so
the same profile exercises the same pressure regime on the scaled-down
test machine and on the full Table 1 configuration:

* a loop working set a few times the L1 size produces the high LLC reuse
  that rewards replication (BARNES, STREAMCLUSTER);
* a streaming working set beyond the total LLC capacity produces the
  off-chip-bound behaviour where replication can only hurt (OCEAN,
  FLUIDANIMATE, CONCOMP);
* unaligned private allocation reproduces BLACKSCHOLES' page-level false
  sharing, which defeats R-NUCA's page-granularity classification.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from repro.common.addr import Region, RegionAllocator
from repro.common.params import MachineConfig
from repro.common.types import AccessType, LineClass
from repro.workloads.generators import (
    ComponentStream,
    compute_gaps,
    interleave_components,
    loop_component,
    migratory_component,
    stream_component,
    zipf_component,
)
from repro.workloads.trace import CoreTrace, TraceSet

_PATTERNS = ("loop", "zipf", "stream")


@dataclasses.dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic model of one paper benchmark."""

    name: str
    description: str
    #: Problem size the paper used (Table 2), for reporting only.
    paper_input: str = ""

    # -- access mix (fractions sum to ~1.0) ---------------------------------
    f_ifetch: float = 0.03
    f_private: float = 0.50
    f_shared_ro: float = 0.20
    f_shared_rw: float = 0.27
    f_migratory: float = 0.00

    # -- access patterns ------------------------------------------------------
    private_pattern: str = "loop"
    shared_ro_pattern: str = "loop"
    shared_rw_pattern: str = "loop"

    # -- working sets ------------------------------------------------------------
    #: Instruction region in multiples of one L1-I capacity.
    instr_ws_x_l1i: float = 0.5
    #: Per-core private region in multiples of one L1-D capacity.
    private_ws_x_l1d: float = 1.5
    #: Shared read-only region in multiples of one L1-D capacity.
    shared_ro_ws_x_l1d: float = 4.0
    #: Shared read-write region in multiples of one L1-D capacity.
    shared_rw_ws_x_l1d: float = 4.0
    #: Overrides (fraction of the machine's total LLC capacity) for
    #: capacity-pressure benchmarks; None keeps the L1-relative size.
    shared_ro_ws_x_llc: float | None = None
    shared_rw_ws_x_llc: float | None = None
    #: Migratory window per core in multiples of one L1-D capacity.
    migratory_window_x_l1d: float = 1.5

    # -- behaviour knobs ---------------------------------------------------------
    #: Consecutive touches per private line (L1-level temporal locality).
    private_burst: int = 3
    #: Partitioned shared data (grid/partition workloads like RADIX and
    #: OCEAN): each core works on its own contiguous chunk of the shared
    #: region with a small spill into its neighbour's chunk.  Most pages
    #: then have a single toucher — which is why R-NUCA's page-granularity
    #: classification is near-optimal on these benchmarks (Section 4.1).
    shared_rw_partitioned: bool = False
    write_frac_rw: float = 0.10
    zipf_skew: float = 2.5
    false_sharing: bool = False
    mean_gap: float = 2.0
    accesses_per_core: int = 3000
    barriers: int = 4

    def __post_init__(self) -> None:
        for pattern in (self.private_pattern, self.shared_ro_pattern, self.shared_rw_pattern):
            if pattern not in _PATTERNS:
                raise ValueError(f"unknown pattern {pattern!r}")
        total = (
            self.f_ifetch + self.f_private + self.f_shared_ro
            + self.f_shared_rw + self.f_migratory
        )
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"{self.name}: mix fractions sum to {total:.3f}, expected 1.0")

    # -- region sizing ---------------------------------------------------------
    def instr_lines(self, config: MachineConfig) -> int:
        return max(4, round(self.instr_ws_x_l1i * config.l1i.lines))

    def private_lines(self, config: MachineConfig) -> int:
        return max(4, round(self.private_ws_x_l1d * config.l1d.lines))

    def shared_ro_lines(self, config: MachineConfig) -> int:
        return self._shared_lines(config, self.shared_ro_ws_x_llc, self.shared_ro_ws_x_l1d)

    def shared_rw_lines(self, config: MachineConfig) -> int:
        return self._shared_lines(config, self.shared_rw_ws_x_llc, self.shared_rw_ws_x_l1d)

    def migratory_window(self, config: MachineConfig) -> int:
        return max(4, round(self.migratory_window_x_l1d * config.l1d.lines))

    @staticmethod
    def _shared_lines(config: MachineConfig, x_llc: float | None, x_l1d: float) -> int:
        if x_llc is not None:
            total_llc = config.llc_slice.lines * config.num_cores
            return max(8, round(x_llc * total_llc))
        return max(8, round(x_l1d * config.l1d.lines))


def _pattern_component(
    pattern: str,
    region: Region,
    count: int,
    rng: np.random.Generator,
    write_frac: float,
    skew: float,
    phase: int,
    burst: int = 1,
) -> ComponentStream:
    if pattern == "loop":
        return loop_component(region, count, rng, write_frac=write_frac,
                              phase=phase, burst=burst)
    if pattern == "zipf":
        return zipf_component(region, count, rng, skew=skew,
                              write_frac=write_frac, burst=burst)
    return stream_component(region, count, rng, write_frac=write_frac,
                            phase=phase, burst=burst)


def build_trace(
    profile: BenchmarkProfile,
    config: MachineConfig,
    scale: float = 1.0,
    seed: int = 0,
) -> TraceSet:
    """Generate the per-core access streams for one benchmark run."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    allocator = RegionAllocator(config.lines_per_page)
    regions: list[tuple[Region, LineClass]] = []

    instr_region = allocator.allocate(profile.instr_lines(config))
    regions.append((instr_region, LineClass.INSTRUCTION))

    private_regions: list[Region] = []
    for _core in range(config.num_cores):
        if profile.false_sharing:
            region = allocator.allocate_unaligned(profile.private_lines(config))
        else:
            region = allocator.allocate(profile.private_lines(config))
        private_regions.append(region)
        regions.append((region, LineClass.PRIVATE))

    shared_ro_region = allocator.allocate(profile.shared_ro_lines(config))
    regions.append((shared_ro_region, LineClass.SHARED_RO))
    shared_rw_region = allocator.allocate(profile.shared_rw_lines(config))
    regions.append((shared_rw_region, LineClass.SHARED_RW))

    migratory_region: Region | None = None
    if profile.f_migratory > 0:
        window = profile.migratory_window(config)
        migratory_region = allocator.allocate(window * config.num_cores)
        regions.append((migratory_region, LineClass.SHARED_RW))

    count = max(16, round(profile.accesses_per_core * scale))
    profile_tag = zlib.crc32(profile.name.encode())
    cores: list[CoreTrace] = []
    for core in range(config.num_cores):
        rng = np.random.default_rng((seed, core, profile_tag))
        components: list[ComponentStream] = []
        fractions: list[float] = []

        if profile.f_ifetch > 0:
            components.append(loop_component(
                instr_region, count, rng, ifetch=True,
                phase=(core * 7) % max(1, instr_region.size),
            ))
            fractions.append(profile.f_ifetch)
        if profile.f_private > 0:
            # Private data is L1-resident in real code: touch each line in
            # short bursts so the L1 absorbs most of the component.
            components.append(_pattern_component(
                profile.private_pattern, private_regions[core], count, rng,
                write_frac=0.3, skew=profile.zipf_skew, phase=0,
                burst=profile.private_burst,
            ))
            fractions.append(profile.f_private)
        if profile.f_shared_ro > 0:
            phase = (core * shared_ro_region.size) // max(1, config.num_cores)
            components.append(_pattern_component(
                profile.shared_ro_pattern, shared_ro_region, count, rng,
                write_frac=0.0, skew=profile.zipf_skew, phase=phase,
            ))
            fractions.append(profile.f_shared_ro)
        if profile.f_shared_rw > 0:
            if profile.shared_rw_partitioned:
                component_region = _core_partition(
                    shared_rw_region, core, config.num_cores
                )
                phase = 0
            else:
                component_region = shared_rw_region
                phase = (core * shared_rw_region.size) // max(1, config.num_cores)
            components.append(_pattern_component(
                profile.shared_rw_pattern, component_region, count, rng,
                write_frac=profile.write_frac_rw, skew=profile.zipf_skew, phase=phase,
            ))
            fractions.append(profile.f_shared_rw)
        if profile.f_migratory > 0:
            assert migratory_region is not None
            components.append(migratory_component(
                migratory_region, count, rng, core, config.num_cores,
                window_lines=profile.migratory_window(config),
            ))
            fractions.append(profile.f_migratory)

        types, lines = interleave_components(components, fractions, count, rng)
        gaps = compute_gaps(count, rng, profile.mean_gap)
        types, lines, gaps = _insert_barriers(types, lines, gaps, profile.barriers)
        cores.append(CoreTrace(types, lines, gaps))

    return TraceSet(profile.name, cores, regions)


def _core_partition(region: Region, core: int, num_cores: int) -> Region:
    """One core's chunk of a partitioned shared region, with ~12% spill
    into the next core's chunk (boundary exchange -> true sharing)."""
    chunk = max(1, region.size // num_cores)
    overlap = max(1, chunk // 8)
    base = region.base + core * chunk
    size = min(chunk + overlap, region.end - base)
    return Region(base, max(1, size))


def _insert_barriers(
    types: np.ndarray, lines: np.ndarray, gaps: np.ndarray, barriers: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Insert ``barriers`` barrier records at equal intervals."""
    if barriers <= 0:
        return types, lines, gaps
    count = len(types)
    positions = [((index + 1) * count) // (barriers + 1) for index in range(barriers)]
    types = np.insert(types, positions, np.uint8(AccessType.BARRIER))
    lines = np.insert(lines, positions, np.int64(0))
    gaps = np.insert(gaps, positions, np.uint16(0))
    return types, lines, gaps


# ---------------------------------------------------------------------------
# The catalog: SPLASH-2, PARSEC, MiBench and UHPC profiles (Table 2)
# ---------------------------------------------------------------------------

def _p(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


BENCHMARKS: dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (
        # -- SPLASH-2 -----------------------------------------------------------
        _p(
            name="RADIX", shared_rw_partitioned=True, paper_input="4M integers, radix 1024",
            description="Radix sort: streaming private keys plus low-reuse "
                        "shared histogram; replication is useless.",
            f_ifetch=0.02, f_private=0.58, f_shared_ro=0.05, f_shared_rw=0.35,
            private_pattern="stream", shared_rw_pattern="stream",
            private_ws_x_l1d=3.0, shared_rw_ws_x_llc=0.6, shared_ro_ws_x_l1d=1.0,
            write_frac_rw=0.30,
        ),
        _p(
            name="FFT", shared_rw_partitioned=True, paper_input="4M complex data points",
            description="FFT transpose: streaming private data and a large "
                        "low-reuse shared matrix.",
            f_ifetch=0.02, f_private=0.55, f_shared_ro=0.08, f_shared_rw=0.35,
            private_pattern="stream", shared_rw_pattern="stream",
            private_ws_x_l1d=2.5, shared_rw_ws_x_llc=0.5, shared_ro_ws_x_l1d=1.5,
            write_frac_rw=0.25,
        ),
        _p(
            name="LU-C", paper_input="1024x1024 matrix (contiguous)",
            description="Blocked LU with contiguous blocks: private-heavy "
                        "loops with good reuse; R-NUCA already near-optimal.",
            f_ifetch=0.02, f_private=0.70, f_shared_ro=0.18, f_shared_rw=0.10,
            private_ws_x_l1d=2.0, shared_ro_ws_x_l1d=3.0, shared_rw_ws_x_l1d=2.0,
            write_frac_rw=0.10,
        ),
        _p(
            name="LU-NC", paper_input="1024x1024 matrix (non-contiguous)",
            description="Non-contiguous LU: migratory shared blocks with "
                        "rotating exclusive ownership; needs E/M replicas.",
            f_ifetch=0.02, f_private=0.38, f_shared_ro=0.10, f_shared_rw=0.0,
            f_migratory=0.50, private_ws_x_l1d=1.5, shared_ro_ws_x_l1d=2.0,
            migratory_window_x_l1d=1.5,
        ),
        _p(
            name="CHOLESKY", paper_input="tk29.O",
            description="Sparse factorization: mixed private/shared panels "
                        "with moderate reuse.",
            f_ifetch=0.05, f_private=0.45, f_shared_ro=0.30, f_shared_rw=0.20,
            shared_ro_pattern="zipf", private_ws_x_l1d=2.0,
            shared_ro_ws_x_l1d=5.0, shared_rw_ws_x_l1d=3.0, write_frac_rw=0.10,
        ),
        _p(
            name="BARNES", paper_input="64K particles",
            description="N-body octree: >90% of LLC accesses hit shared "
                        "read-write particle data with run-length >= 10 — the "
                        "flagship case for replicating read-write data.",
            f_ifetch=0.02, f_private=0.13, f_shared_ro=0.05, f_shared_rw=0.80,
            private_ws_x_l1d=1.0, shared_ro_ws_x_l1d=2.0, shared_rw_ws_x_l1d=6.0,
            write_frac_rw=0.02, accesses_per_core=7000,
        ),
        _p(
            name="OCEAN-C", shared_rw_partitioned=True, paper_input="2050x2050 ocean",
            description="Grid solver, contiguous partitions: streaming over a "
                        "working set beyond the LLC; off-chip bound.",
            f_ifetch=0.02, f_private=0.60, f_shared_ro=0.03, f_shared_rw=0.35,
            private_pattern="stream", shared_rw_pattern="stream",
            private_ws_x_l1d=4.0, shared_rw_ws_x_llc=1.5, shared_ro_ws_x_l1d=1.0,
            write_frac_rw=0.30,
        ),
        _p(
            name="OCEAN-NC", shared_rw_partitioned=True, paper_input="1026x1026 ocean",
            description="Grid solver, non-contiguous partitions: like OCEAN-C "
                        "with more shared boundary traffic.",
            f_ifetch=0.02, f_private=0.50, f_shared_ro=0.03, f_shared_rw=0.45,
            private_pattern="stream", shared_rw_pattern="stream",
            private_ws_x_l1d=3.0, shared_rw_ws_x_llc=1.0, shared_ro_ws_x_l1d=1.0,
            write_frac_rw=0.30,
        ),
        _p(
            name="WATER-NSQ", paper_input="512 molecules",
            description="Molecular dynamics: shared molecule array read by "
                        "all cores each step with sparse updates.",
            f_ifetch=0.03, f_private=0.30, f_shared_ro=0.25, f_shared_rw=0.42,
            private_ws_x_l1d=1.0, shared_ro_ws_x_l1d=3.0, shared_rw_ws_x_l1d=6.0,
            write_frac_rw=0.06, accesses_per_core=5500,
        ),
        _p(
            name="RAYTRACE", paper_input="car",
            description="Ray tracer: large read-only scene with skewed reuse "
                        "plus a visible instruction working set.",
            f_ifetch=0.18, f_private=0.15, f_shared_ro=0.60, f_shared_rw=0.07,
            shared_ro_pattern="zipf", instr_ws_x_l1i=2.0,
            private_ws_x_l1d=1.0, shared_ro_ws_x_l1d=8.0, shared_rw_ws_x_l1d=1.0,
            write_frac_rw=0.15, zipf_skew=3.0, accesses_per_core=4500,
        ),
        _p(
            name="VOLREND", paper_input="head",
            description="Volume renderer: shared read-only voxel data and "
                        "moderate instruction pressure.",
            f_ifetch=0.12, f_private=0.20, f_shared_ro=0.55, f_shared_rw=0.13,
            shared_ro_pattern="zipf", instr_ws_x_l1i=1.5,
            private_ws_x_l1d=1.0, shared_ro_ws_x_l1d=6.0, shared_rw_ws_x_l1d=1.5,
            write_frac_rw=0.10, accesses_per_core=4500,
        ),
        # -- PARSEC ----------------------------------------------------------------
        _p(
            name="BLACKSCHOLES", paper_input="65,536 options",
            description="Option pricing: thread-private option slices that "
                        "falsely share pages, defeating R-NUCA's page-level "
                        "classification; line-level replication recovers it.",
            f_ifetch=0.03, f_private=0.85, f_shared_ro=0.10, f_shared_rw=0.02,
            false_sharing=True, private_ws_x_l1d=1.5,
            shared_ro_ws_x_l1d=2.0, shared_rw_ws_x_l1d=1.0, write_frac_rw=0.05,
        ),
        _p(
            name="SWAPTIONS", paper_input="64 swaptions, 20,000 sims.",
            description="Monte-Carlo pricing: private simulation state with "
                        "high reuse and a small shared term structure.",
            f_ifetch=0.04, f_private=0.76, f_shared_ro=0.18, f_shared_rw=0.02,
            private_ws_x_l1d=1.5, shared_ro_ws_x_l1d=2.0, shared_rw_ws_x_l1d=1.0,
            write_frac_rw=0.05,
        ),
        _p(
            name="FLUIDANIMATE", shared_rw_partitioned=True, paper_input="5 frames, 300,000 particles",
            description="Particle fluid: streaming over a grid beyond LLC "
                        "capacity; blind replication (RT-1) raises the "
                        "off-chip rate while RT-3 filters it out.",
            f_ifetch=0.02, f_private=0.55, f_shared_ro=0.03, f_shared_rw=0.40,
            private_pattern="loop", shared_rw_pattern="stream",
            private_ws_x_l1d=1.5, shared_rw_ws_x_llc=1.5, shared_ro_ws_x_l1d=1.0,
            write_frac_rw=0.20,
        ),
        _p(
            name="STREAMCLUSTER", paper_input="8192 points per block, 1 block",
            description="Online clustering: every core re-reads the shared "
                        "cluster centers — intense shared read-only reuse, the "
                        "classifier-sensitivity stress case (Figure 9).",
            f_ifetch=0.03, f_private=0.35, f_shared_ro=0.55, f_shared_rw=0.07,
            private_pattern="stream", private_ws_x_l1d=3.0,
            shared_ro_ws_x_l1d=5.0, shared_rw_ws_x_l1d=1.0,
            write_frac_rw=0.40, accesses_per_core=5500,
        ),
        _p(
            name="DEDUP", paper_input="31 MB data",
            description="Pipelined deduplication: almost exclusively private "
                        "data with clean page alignment; R-NUCA is optimal.",
            f_ifetch=0.04, f_private=0.90, f_shared_ro=0.04, f_shared_rw=0.02,
            private_ws_x_l1d=2.0, shared_ro_ws_x_l1d=1.0, shared_rw_ws_x_l1d=1.0,
            write_frac_rw=0.10,
        ),
        _p(
            name="FERRET", paper_input="256 queries, 34,973 images",
            description="Content-based search pipeline: shared read-only "
                        "feature database with skewed reuse plus instructions.",
            f_ifetch=0.10, f_private=0.35, f_shared_ro=0.45, f_shared_rw=0.10,
            shared_ro_pattern="zipf", instr_ws_x_l1i=1.5,
            private_ws_x_l1d=1.5, shared_ro_ws_x_l1d=6.0, shared_rw_ws_x_l1d=1.5,
            write_frac_rw=0.10, accesses_per_core=4500,
        ),
        _p(
            name="BODYTRACK", paper_input="4 frames, 4000 particles",
            description="Vision pipeline: significant L1-I pressure (one of "
                        "the three benchmarks with high I-MPKI) and shared "
                        "read-only frame data.",
            f_ifetch=0.20, f_private=0.25, f_shared_ro=0.45, f_shared_rw=0.10,
            instr_ws_x_l1i=3.0, private_ws_x_l1d=1.0,
            shared_ro_ws_x_l1d=4.0, shared_rw_ws_x_l1d=1.5, write_frac_rw=0.08,
            accesses_per_core=4500,
        ),
        _p(
            name="FACESIM", paper_input="1 frame, 372,126 tetrahedrons",
            description="Face simulation: high I-MPKI plus read-mostly shared "
                        "mesh data with long run-lengths.",
            f_ifetch=0.17, f_private=0.25, f_shared_ro=0.18, f_shared_rw=0.40,
            instr_ws_x_l1i=3.0, private_ws_x_l1d=1.0,
            shared_ro_ws_x_l1d=3.0, shared_rw_ws_x_l1d=6.0,
            write_frac_rw=0.02, accesses_per_core=5500,
        ),
        # -- MiBench / UHPC -----------------------------------------------------------
        _p(
            name="PATRICIA", paper_input="5000 IP address queries",
            description="Trie lookups: shared read-only trie nodes with very "
                        "skewed reuse (root levels are hot).",
            f_ifetch=0.08, f_private=0.17, f_shared_ro=0.70, f_shared_rw=0.05,
            shared_ro_pattern="zipf", zipf_skew=3.0,
            private_ws_x_l1d=1.0, shared_ro_ws_x_l1d=8.0, shared_rw_ws_x_l1d=1.0,
            write_frac_rw=0.10, accesses_per_core=4500,
        ),
        _p(
            name="CONCOMP", shared_rw_partitioned=True, paper_input="Graph with 2^18 nodes",
            description="Connected components: irregular streaming over a "
                        "graph beyond LLC capacity; heavy off-chip traffic.",
            f_ifetch=0.02, f_private=0.28, f_shared_ro=0.10, f_shared_rw=0.60,
            private_pattern="stream", shared_rw_pattern="stream",
            private_ws_x_l1d=2.0, shared_rw_ws_x_llc=2.0, shared_ro_ws_x_l1d=2.0,
            write_frac_rw=0.25,
        ),
    )
}

#: Figure ordering used by the paper's plots.
BENCHMARK_ORDER = (
    "RADIX", "FFT", "LU-C", "LU-NC", "CHOLESKY", "BARNES", "OCEAN-C",
    "OCEAN-NC", "WATER-NSQ", "RAYTRACE", "VOLREND", "BLACKSCHOLES",
    "SWAPTIONS", "FLUIDANIMATE", "STREAMCLUSTER", "DEDUP", "FERRET",
    "BODYTRACK", "FACESIM", "PATRICIA", "CONCOMP",
)


def get_profile(name: str) -> BenchmarkProfile:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {sorted(BENCHMARKS)}"
        ) from None
