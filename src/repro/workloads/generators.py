"""Synthetic access-pattern generators.

Each generator produces a per-core stream of ``(type, line)`` pairs for
one *component* of a benchmark (instructions, private data, shared
read-only, shared read-write, migratory).  The benchmark builder
interleaves components according to the profile's mix fractions.

The patterns are the ones the paper's Section 4.1 narrative attributes
to its benchmarks:

* ``loop`` — cyclic sweeps over a working set.  When the working set
  exceeds the L1 the same lines miss again every sweep, producing the
  high LLC run-lengths that make replication profitable (BARNES).
* ``zipf`` — skewed popularity; hot lines live in the L1, the warm
  middle produces moderate LLC reuse (CHOLESKY, RAYTRACE).
* ``stream`` — a single sequential pass; every line sees one or two LLC
  accesses, replication is useless (OCEAN, FLUIDANIMATE, RADIX).
* ``migratory`` — read-modify-write bursts with ownership rotating among
  cores (LU-NC); replication needs E/M replicas to help here.
"""

from __future__ import annotations

import numpy as np

from repro.common.addr import Region
from repro.common.types import AccessType


class ComponentStream:
    """Pull-based address source for one benchmark component."""

    def __init__(self, addresses: np.ndarray, types: np.ndarray) -> None:
        if len(addresses) != len(types):
            raise ValueError("addresses and types must align")
        self.addresses = addresses
        self.types = types
        self._cursor = 0

    def take(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """The next ``count`` records (wraps around if exhausted)."""
        n = len(self.addresses)
        if n == 0:
            raise ValueError("empty component stream")
        start = self._cursor
        self._cursor = (self._cursor + count) % n
        indices = (start + np.arange(count)) % n
        return self.addresses[indices], self.types[indices]


def loop_component(
    region: Region, count: int, rng: np.random.Generator, write_frac: float = 0.0,
    ifetch: bool = False, phase: int = 0, burst: int = 1,
) -> ComponentStream:
    """Cyclic sweep over the region, starting at a per-core phase offset.

    ``burst > 1`` touches each line that many times in a row — the
    short-range temporal locality real code exhibits, which the L1
    absorbs (only the first access of a burst reaches the LLC).
    """
    if burst < 1:
        raise ValueError("burst must be >= 1")
    offsets = (phase + np.arange(count) // burst) % region.size
    addresses = region.base + offsets
    types = _access_types(count, rng, write_frac, ifetch)
    return ComponentStream(addresses, types)


def zipf_component(
    region: Region, count: int, rng: np.random.Generator, skew: float = 2.0,
    write_frac: float = 0.0, ifetch: bool = False, burst: int = 1,
) -> ComponentStream:
    """Skewed popularity: index = size * u^skew concentrates on low lines."""
    if skew <= 0:
        raise ValueError("skew must be positive")
    if burst < 1:
        raise ValueError("burst must be >= 1")
    draws = (count + burst - 1) // burst
    uniform = rng.random(draws)
    drawn = np.minimum((region.size * uniform ** skew).astype(np.int64), region.size - 1)
    offsets = np.repeat(drawn, burst)[:count]
    addresses = region.base + offsets
    types = _access_types(count, rng, write_frac, ifetch)
    return ComponentStream(addresses, types)


def stream_component(
    region: Region, count: int, rng: np.random.Generator, write_frac: float = 0.0,
    phase: int = 0, burst: int = 1,
) -> ComponentStream:
    """Sequential single-pass streaming (wraps only when count > size)."""
    if burst < 1:
        raise ValueError("burst must be >= 1")
    offsets = (phase + np.arange(count) // burst) % region.size
    addresses = region.base + offsets
    types = _access_types(count, rng, write_frac, ifetch=False)
    return ComponentStream(addresses, types)


def migratory_component(
    region: Region, count: int, rng: np.random.Generator, core: int, num_cores: int,
    window_lines: int, epoch_sweeps: int = 5,
) -> ComponentStream:
    """Migratory shared data: exclusive R/W ownership that rotates.

    Each core owns a ``window_lines``-line window of the region for one
    *epoch*, sweeping it ``epoch_sweeps`` times with alternating
    read/write pairs; windows then rotate to the next core.  A window
    larger than the L1 makes every sweep miss the L1, so the owner's home
    reuse accumulates between hand-offs — the access pattern the paper
    calls migratory (LU-NC) and the reason replicas must support the E/M
    states (Section 2.3.1).
    """
    if window_lines < 1:
        raise ValueError("window_lines must be >= 1")
    if region.size < window_lines * num_cores:
        raise ValueError("region too small for disjoint per-core windows")
    index = np.arange(count, dtype=np.int64)
    epoch_len = window_lines * epoch_sweeps * 2  # R+W per line per sweep
    epoch = index // epoch_len
    line_in_window = (index % epoch_len) // 2 % window_lines
    window_base = ((core + epoch) * window_lines) % region.size
    addresses = region.base + (window_base + line_in_window) % region.size
    types = np.where(
        index % 2 == 0, AccessType.READ, AccessType.WRITE
    ).astype(np.uint8)
    return ComponentStream(addresses, types)


def producer_consumer_component(
    region: Region, count: int, rng: np.random.Generator, core: int, num_cores: int,
) -> ComponentStream:
    """Alternating writer/readers over a small mailbox region.

    Even phases: core 0 writes the mailbox lines; odd phases: everyone
    reads them.  Approximated statistically per core: core 0 writes with
    high probability, others read.
    """
    offsets = rng.integers(0, region.size, count)
    addresses = region.base + offsets
    if core == 0:
        types = np.where(
            rng.random(count) < 0.7, AccessType.WRITE, AccessType.READ
        ).astype(np.uint8)
    else:
        types = np.full(count, AccessType.READ, dtype=np.uint8)
    return ComponentStream(addresses, types)


def _access_types(
    count: int, rng: np.random.Generator, write_frac: float, ifetch: bool
) -> np.ndarray:
    if ifetch:
        if write_frac:
            raise ValueError("instruction fetches cannot write")
        return np.full(count, AccessType.IFETCH, dtype=np.uint8)
    if write_frac <= 0.0:
        return np.full(count, AccessType.READ, dtype=np.uint8)
    draws = rng.random(count)
    return np.where(draws < write_frac, AccessType.WRITE, AccessType.READ).astype(np.uint8)


def interleave_components(
    components: list[ComponentStream],
    fractions: list[float],
    count: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Mix component streams into one per-core stream by mix fractions."""
    if len(components) != len(fractions):
        raise ValueError("one fraction per component required")
    total = sum(fractions)
    if total <= 0:
        raise ValueError("fractions must sum to a positive value")
    probabilities = np.asarray(fractions, dtype=np.float64) / total
    choices = rng.choice(len(components), size=count, p=probabilities)
    lines = np.empty(count, dtype=np.int64)
    types = np.empty(count, dtype=np.uint8)
    for index, component in enumerate(components):
        mask = choices == index
        picked = int(np.count_nonzero(mask))
        if picked == 0:
            continue
        addresses, access_types = component.take(picked)
        lines[mask] = addresses
        types[mask] = access_types
    return types, lines


def compute_gaps(count: int, rng: np.random.Generator, mean_gap: float) -> np.ndarray:
    """Non-memory cycles before each access (geometric around the mean)."""
    if mean_gap <= 0:
        return np.zeros(count, dtype=np.uint16)
    gaps = rng.geometric(1.0 / (1.0 + mean_gap), size=count) - 1
    return np.minimum(gaps, 64).astype(np.uint16)
