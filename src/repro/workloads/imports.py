"""Real-trace ingestion: external capture formats → :class:`TraceSet`.

Every workload in :mod:`repro.workloads.benchmarks` is synthetic, while
the paper's locality schemes are motivated by the run-length / reuse
behaviour of *real* applications (Section 4.1).  This module imports
captures from real tracing tools into the simulator's native
representation so they flow through the profiler, every simulation
kernel and the experiment grids unmodified.

Four external formats are understood, each parsed **streaming** (the
source file is read in bounded chunks and accumulated into compact
per-core buffers — an import never materializes the capture in
memory).  Text captures may be gzip- (``.gz``) or xz- (``.xz``)
compressed; the binary ChampSim format (``champsim-bin``, typically
``name.trace.xz``) is decoded by :mod:`repro.workloads.champsim_bin`.
The text formats:

``champsim``
    ChampSim-style text records, one access per line::

        <pc> <address> <is_write>

    ``pc`` and ``address`` are byte addresses (decimal or ``0x`` hex);
    ``is_write`` is ``0`` (read) or ``1`` (write).  A single-stream
    format: records are distributed over cores by the splitter
    (``round-robin`` or contiguous ``blocks``).

``din``
    Dinero / Intel-PIN / DynamoRIO "din"-style text, one access per
    line::

        <type> <address> [ignored...]

    ``type`` is ``0`` (read), ``1`` (write) or ``2`` (instruction
    fetch); ``address`` is a *hexadecimal* byte address, with or
    without a ``0x`` prefix (real Dinero captures write bare,
    zero-padded hex).  Also single-stream.

``csv``
    The documented CSV interchange format (optionally gzipped), the
    lossless round-trip carrier for :class:`TraceSet` cores — see
    :func:`export_csv`.  Columns::

        core,tick,type,line

    ``core`` is the issuing core id; ``tick`` is that core's
    non-decreasing integer issue timestamp (compute gaps are
    reconstructed as per-core tick deltas); ``type`` is one of
    ``R``/``W``/``I``/``B`` (read, write, ifetch, barrier); ``line`` is
    a **line** address (the simulator's native unit — byte-address
    formats shift by ``line_bytes``).  A header row and ``#`` comment
    lines are permitted.

After parsing, :func:`infer_regions` reconstructs the region →
:class:`LineClass` map the synthetic generators would have declared, so
``TraceSet.validate_coverage`` and the Figure 1 profiler work
unmodified: lines ever instruction-fetched are ``INSTRUCTION``; data
lines touched by exactly one core are ``PRIVATE``; data lines touched
by several cores are ``SHARED_RW`` when any core wrote them and
``SHARED_RO`` otherwise.  (Caveat: the inference sees only the capture
— a logically shared line that one core happened to touch classifies as
private, and a line that is both fetched and loaded classifies as
instruction.)

Imported sets carry a ``provenance`` payload (source format, file name,
content hash, importer options, record counts) persisted by the version
2 ``.npz`` archive format (:mod:`repro.workloads.io`), and
:func:`trace_content_hash` gives the experiment layer a stable content
address for ``imported:<path>`` benchmarks.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import lzma
import os
from array import array
from pathlib import Path
from typing import Callable, Iterable, Iterator, TextIO

import numpy as np

from repro.common.addr import Region
from repro.common.types import AccessType, LineClass
from repro.workloads.trace import CoreTrace, TraceSet

#: Recognized external text formats (plus ``"auto"`` for detection).
FORMATS = ("champsim", "din", "csv")

#: Recognized external binary formats (decoded by
#: :mod:`repro.workloads.champsim_bin`; importable and streamable).
BINARY_FORMATS = ("champsim-bin",)

#: Every importable format, the CLI's ``--format`` vocabulary.
ALL_FORMATS = FORMATS + BINARY_FORMATS

#: File suffixes (inner extensions, compression stripped) that identify
#: a binary ChampSim capture: real captures ship as
#: ``name.champsimtrace.xz`` / ``name.trace.xz``.
_BINARY_SUFFIXES = ("champsimtrace", "trace")

#: Single-stream → per-core splitting strategies.
SPLITS = ("round-robin", "blocks")

#: Benchmark-name prefix marking an imported ``.npz`` trace in the
#: experiment layer (``--benchmarks imported:<path>``).
IMPORTED_PREFIX = "imported:"

#: Lines of text parsed per streaming chunk.
CHUNK_LINES = 8192

#: Largest core id the CSV importer will *infer* a machine width from
#: (an explicit ``num_cores`` has no cap): a capture with a garbage id
#: like ``4000000000`` must fail with a located error, not allocate
#: four billion core buffers.
MAX_INFERRED_CORES = 4096

_CSV_TYPES = {
    "R": AccessType.READ,
    "W": AccessType.WRITE,
    "I": AccessType.IFETCH,
    "B": AccessType.BARRIER,
}
_CSV_LETTERS = {value: key for key, value in _CSV_TYPES.items()}

_DIN_TYPES = {
    0: AccessType.READ,
    1: AccessType.WRITE,
    2: AccessType.IFETCH,
}


class TraceImportError(ValueError):
    """A malformed external capture, with file/line context."""

    def __init__(self, source: "str | Path", lineno: int | None, message: str):
        where = str(source) if lineno is None else f"{source}:{lineno}"
        super().__init__(f"{where}: {message}")
        self.source = str(source)
        self.lineno = lineno


@dataclasses.dataclass(frozen=True)
class ImportOptions:
    """Importer knobs shared by every format.

    ``num_cores`` is the machine width the trace targets; for the
    single-stream formats the records are distributed over that many
    cores by ``split``, while the CSV format carries explicit core ids
    (``num_cores=None`` infers the width as ``max core id + 1``).
    ``line_bytes`` converts the byte addresses of champsim/din captures
    to line addresses (CSV already carries line addresses).
    """

    num_cores: "int | None" = None
    split: str = "round-robin"
    line_bytes: int = 64
    name: "str | None" = None
    #: Record budget (the CLI's ``--max-inst``): stop parsing after this
    #: many records — text-format lines, or *instructions* for the
    #: binary ChampSim format (an instruction may expand to several
    #: accesses).  ``None`` imports the whole capture.
    max_records: "int | None" = None

    def __post_init__(self) -> None:
        if self.num_cores is not None and self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.max_records is not None and self.max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {self.max_records}")
        if self.split not in SPLITS:
            raise ValueError(
                f"unknown split {self.split!r}; expected one of {SPLITS}"
            )
        bytes_ = self.line_bytes
        if bytes_ < 1 or bytes_ & (bytes_ - 1):
            raise ValueError(
                f"line_bytes must be a positive power of two, got {bytes_}"
            )

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1


# ---------------------------------------------------------------------------
# Streaming plumbing
# ---------------------------------------------------------------------------

def _open_text(path: Path) -> TextIO:
    """Open a capture for streaming text reads (transparent gzip/xz)."""
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    if path.suffix == ".xz":
        return lzma.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def _open_text_write(path: Path) -> TextIO:
    """Writing twin of :func:`_open_text` (``.gz`` gzips, ``.xz`` lzmas)."""
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    if path.suffix == ".xz":
        return lzma.open(path, "wt", encoding="utf-8")
    return path.open("w", encoding="utf-8")


def _iter_lines(
    handle: TextIO, max_records: "int | None" = None
) -> Iterator[tuple[int, str]]:
    """(lineno, stripped payload) for every non-blank, non-comment line,
    pulled in bounded chunks so huge captures never sit in memory.
    ``max_records`` stops the scan after that many data lines (the
    ``--max-inst`` budget; headers and comments do not count)."""
    lineno = 0
    yielded = 0
    while True:
        chunk = handle.readlines(CHUNK_LINES * 64)
        if not chunk:
            return
        for raw in chunk:
            lineno += 1
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield lineno, line
            yielded += 1
            if max_records is not None and yielded >= max_records:
                return


def _parse_int(token: str, source: Path, lineno: int, field: str) -> int:
    try:
        return int(token, 0)  # base 0: decimal or 0x-prefixed hex
    except ValueError:
        raise TraceImportError(
            source, lineno, f"{field} {token!r} is not an integer"
        ) from None


def _parse_hex(token: str, source: Path, lineno: int, field: str) -> int:
    """Hexadecimal with or without ``0x`` — real Dinero/PIN din captures
    write bare (often zero-padded) hex addresses like ``ffff03b0``."""
    try:
        return int(token, 16)
    except ValueError:
        raise TraceImportError(
            source, lineno, f"{field} {token!r} is not a hexadecimal address"
        ) from None


class _CoreBuffers:
    """Growing per-core (types, lines, gaps) buffers → CoreTrace arrays.

    ``array`` buffers keep the streaming accumulation compact (one byte
    per type, eight per line, eight per gap) and convert to numpy in one
    pass at the end.
    """

    def __init__(self, num_cores: int) -> None:
        self.types = [array("B") for _ in range(num_cores)]
        self.lines = [array("q") for _ in range(num_cores)]
        self.gaps = [array("q") for _ in range(num_cores)]

    def ensure(self, core: int) -> None:
        """Grow to cover ``core`` (for formats that discover core ids
        while streaming)."""
        while len(self.types) <= core:
            self.types.append(array("B"))
            self.lines.append(array("q"))
            self.gaps.append(array("q"))

    def append(self, core: int, atype: AccessType, line: int, gap: int) -> None:
        self.types[core].append(int(atype))
        self.lines[core].append(line)
        self.gaps[core].append(gap)

    def records(self) -> int:
        return sum(len(types) for types in self.types)

    def cores(self, source: Path) -> list[CoreTrace]:
        traces = []
        for types, lines, gaps in zip(self.types, self.lines, self.gaps):
            gap_array = np.frombuffer(gaps, dtype=np.int64) if gaps else (
                np.empty(0, dtype=np.int64)
            )
            # Match the synthetic generators' compact gap dtype when the
            # values fit, so a CSV round-trip reproduces them exactly.
            if gap_array.size == 0 or gap_array.max(initial=0) <= np.iinfo(np.uint16).max:
                gap_array = gap_array.astype(np.uint16)
            traces.append(CoreTrace(
                types=np.frombuffer(types, dtype=np.uint8).copy() if types
                else np.empty(0, dtype=np.uint8),
                lines=np.frombuffer(lines, dtype=np.int64).copy() if lines
                else np.empty(0, dtype=np.int64),
                gaps=gap_array.copy(),
            ))
        if not any(len(trace) for trace in traces):
            raise TraceImportError(source, None, "capture contains no records")
        return traces


# ---------------------------------------------------------------------------
# Format detection
# ---------------------------------------------------------------------------

def _looks_binary(path: Path) -> bool:
    """Sniff whether a ``.trace`` file holds binary records or text.

    Packed ``input_instr`` records are full of NUL padding while every
    text capture is NUL-free, so one bounded (decompressed) read
    decides.  Decompression errors count as binary: the suffix already
    said so, and the binary importer raises with far better context.
    """
    from repro.workloads.champsim_bin import open_binary

    try:
        with open_binary(path) as handle:
            head = handle.read(4096)
    except (lzma.LZMAError, gzip.BadGzipFile, EOFError):
        return True
    return b"\x00" in head


def detect_format(path: "str | Path") -> str:
    """Guess a capture's format from its extension, then its content.

    ``.csv`` / ``.csv.gz`` / ``.csv.xz`` → csv; ``.din`` (``.gz``/
    ``.xz``) → din; ``.champsim`` (``.gz``/``.xz``) → champsim;
    ``.champsimtrace`` (``.gz``/``.xz``) → the binary ChampSim format,
    as does ``.trace`` when the content is binary (NUL bytes — text
    ``.trace`` captures keep their content-based detection).
    Otherwise the first data line decides: a comma
    means csv; a first field that is a din type code (``0``/``1``/``2``)
    means din — din rows may carry trailing ignored columns, so the
    field *count* cannot distinguish them from champsim's three-field
    rows, and a genuine champsim ``pc`` is never a small type code; any
    other three-field line means champsim.  Ambiguous captures should
    pass an explicit format.
    """
    path = Path(path)
    suffixes = [suffix.lstrip(".") for suffix in path.suffixes]
    for fmt in FORMATS:
        if fmt in suffixes:
            return fmt
    if "champsimtrace" in suffixes:
        return "champsim-bin"
    if any(suffix in _BINARY_SUFFIXES for suffix in suffixes) and _looks_binary(path):
        return "champsim-bin"
    with _open_text(path) as handle:
        for _lineno, line in _iter_lines(handle):
            if "," in line:
                return "csv"
            fields = line.split()
            if len(fields) >= 2 and fields[0] in ("0", "1", "2"):
                return "din"
            if len(fields) == 3:
                return "champsim"
            break
    raise TraceImportError(
        path, None,
        "cannot auto-detect the capture format; pass format="
        f"{'|'.join(FORMATS)} explicitly",
    )


# ---------------------------------------------------------------------------
# Single-stream formats (champsim, din)
# ---------------------------------------------------------------------------

def _parse_champsim(source: Path, lineno: int, fields: list[str],
                    shift: int) -> tuple[AccessType, int]:
    if len(fields) != 3:
        raise TraceImportError(
            source, lineno,
            f"expected 3 fields (pc address is_write), got {len(fields)}",
        )
    _pc = _parse_int(fields[0], source, lineno, "pc")
    addr = _parse_int(fields[1], source, lineno, "address")
    if addr < 0:
        raise TraceImportError(source, lineno, f"negative address {addr}")
    is_write = fields[2]
    if is_write not in ("0", "1"):
        raise TraceImportError(
            source, lineno, f"is_write must be 0 or 1, got {is_write!r}"
        )
    atype = AccessType.WRITE if is_write == "1" else AccessType.READ
    return atype, addr >> shift


def _parse_din(source: Path, lineno: int, fields: list[str],
               shift: int) -> tuple[AccessType, int]:
    if len(fields) < 2:
        raise TraceImportError(
            source, lineno,
            f"expected at least 2 fields (type address), got {len(fields)}",
        )
    code = _parse_int(fields[0], source, lineno, "type")
    atype = _DIN_TYPES.get(code)
    if atype is None:
        raise TraceImportError(
            source, lineno,
            f"unknown din access type {code} (expected 0=read, 1=write, 2=ifetch)",
        )
    addr = _parse_hex(fields[1], source, lineno, "address")
    if addr < 0:
        raise TraceImportError(source, lineno, f"negative address {addr}")
    return atype, addr >> shift


def _import_single_stream(
    path: Path,
    options: ImportOptions,
    parse: Callable[[Path, int, list[str], int], tuple[AccessType, int]],
) -> list[CoreTrace]:
    num_cores = options.num_cores or 1
    buffers = _CoreBuffers(num_cores)
    shift = options.line_shift
    if options.split == "round-robin":
        index = 0
        with _open_text(path) as handle:
            for lineno, line in _iter_lines(handle, options.max_records):
                atype, line_addr = parse(path, lineno, line.split(), shift)
                buffers.append(index % num_cores, atype, line_addr, 0)
                index += 1
        return buffers.cores(path)
    # blocks: N contiguous chunks.  The stream must be buffered once to
    # learn its length; the buffer is the compact single-core form, and
    # the chunks are numpy slices of it (no per-record Python work).
    staging = _CoreBuffers(1)
    with _open_text(path) as handle:
        for lineno, line in _iter_lines(handle, options.max_records):
            atype, line_addr = parse(path, lineno, line.split(), shift)
            staging.append(0, atype, line_addr, 0)
    total = staging.records()
    if total == 0:
        raise TraceImportError(path, None, "capture contains no records")
    types = np.frombuffer(staging.types[0], dtype=np.uint8)
    lines = np.frombuffer(staging.lines[0], dtype=np.int64)
    bounds = [core * total // num_cores for core in range(num_cores + 1)]
    return [
        CoreTrace(
            types=types[start:end].copy(),
            lines=lines[start:end].copy(),
            gaps=np.zeros(end - start, dtype=np.uint16),
        )
        for start, end in zip(bounds, bounds[1:])
    ]


# ---------------------------------------------------------------------------
# CSV interchange format
# ---------------------------------------------------------------------------

def _import_csv_cores(path: Path, options: ImportOptions) -> list[CoreTrace]:
    """Stream a CSV capture into per-core buffers.

    Gap reconstruction needs only each core's *previous* tick, so the
    records go straight into the compact buffers — nothing per-record
    survives the loop, keeping multi-GB captures at bounded memory.
    When ``num_cores`` is not declared, the buffers grow as new core
    ids appear (the final width is ``max core id + 1``).
    """
    declared = options.num_cores
    buffers = _CoreBuffers(declared or 0)
    last_tick: list[int] = [0] * (declared or 0)
    first_data_row = True
    with _open_text(path) as handle:
        # A header row spends one unit of the record budget — the cap is
        # a scan bound (``--max-inst``), not an exact record count.
        for lineno, line in _iter_lines(handle, options.max_records):
            fields = [field.strip() for field in line.split(",")]
            if first_data_row:
                first_data_row = False
                if [field.lower() for field in fields[:2]] == ["core", "tick"]:
                    continue  # header row
            if len(fields) != 4:
                raise TraceImportError(
                    path, lineno,
                    f"expected 4 fields (core,tick,type,line), got {len(fields)}",
                )
            core = _parse_int(fields[0], path, lineno, "core")
            tick = _parse_int(fields[1], path, lineno, "tick")
            letter = fields[2].upper()
            atype = _CSV_TYPES.get(letter)
            if atype is None:
                raise TraceImportError(
                    path, lineno,
                    f"unknown access type {fields[2]!r} "
                    f"(expected one of {''.join(_CSV_TYPES)})",
                )
            line_addr = _parse_int(fields[3], path, lineno, "line")
            if core < 0:
                raise TraceImportError(path, lineno, f"negative core id {core}")
            if declared is not None and core >= declared:
                raise TraceImportError(
                    path, lineno,
                    f"core id {core} outside the declared {declared} "
                    f"cores (records must satisfy 0 <= core < num_cores)",
                )
            if tick < 0:
                raise TraceImportError(path, lineno, f"negative tick {tick}")
            if line_addr < 0 and atype is not AccessType.BARRIER:
                raise TraceImportError(
                    path, lineno, f"negative line address {line_addr}"
                )
            if declared is None and core >= len(last_tick):
                if core >= MAX_INFERRED_CORES:
                    raise TraceImportError(
                        path, lineno,
                        f"core id {core} exceeds the inference cap of "
                        f"{MAX_INFERRED_CORES}; pass num_cores explicitly "
                        f"if the capture really is that wide",
                    )
                buffers.ensure(core)
                last_tick.extend([0] * (core + 1 - len(last_tick)))
            previous = last_tick[core]
            gap = tick - previous
            if gap < 0:
                raise TraceImportError(
                    path, lineno,
                    f"non-monotonic tick {tick} for core {core} "
                    f"(previous tick {previous}); per-core ticks must be "
                    f"non-decreasing",
                )
            last_tick[core] = tick
            buffers.append(core, atype, line_addr, gap)
    return buffers.cores(path)


def export_csv(traces: TraceSet, path: "str | Path") -> Path:
    """Write a trace set in the CSV interchange format (lossless cores).

    One row per record, cores interleaved in round-robin record order;
    ``tick`` is the running sum of each core's compute gaps, so
    re-importing reconstructs the exact ``types``/``lines``/``gaps``
    arrays (the region map is *not* carried — it is re-inferred on
    import, see :func:`infer_regions`).  A ``.gz`` suffix gzips the
    output.

    Ticks are integers, so *fractional* compute gaps are not
    representable and raise instead of silently truncating (persist
    such sets with :func:`repro.workloads.io.save_trace_set`).
    """
    for core, trace in enumerate(traces.cores):
        gaps = np.asarray(trace.gaps)
        if gaps.dtype.kind == "f" and not np.all(gaps == np.floor(gaps)):
            raise ValueError(
                f"cannot export csv: core {core} has fractional compute "
                f"gaps, which integer ticks cannot carry; use "
                f"save_trace_set for such sets"
            )
    path = Path(path)
    with _open_text_write(path) as handle:
        handle.write("core,tick,type,line\n")
        positions = [0] * traces.num_cores
        ticks = [0] * traces.num_cores
        # Iterate only the cores that still hold records, so the
        # interleave stays linear in total records even when one core
        # is far longer than the rest.
        active = [core for core, trace in enumerate(traces.cores)
                  if len(trace)]
        while active:
            still_active = []
            for core in active:
                trace = traces.cores[core]
                index = positions[core]
                positions[core] = index + 1
                ticks[core] += int(trace.gaps[index])
                letter = _CSV_LETTERS[AccessType(int(trace.types[index]))]
                handle.write(
                    f"{core},{ticks[core]},{letter},{int(trace.lines[index])}\n"
                )
                if index + 1 < len(trace):
                    still_active.append(core)
            active = still_active
    return path


def _require_exportable(traces: TraceSet, fmt: str, allow_ifetch: bool) -> None:
    """The single-stream text formats cannot carry every TraceSet.

    They have no barrier or timing records (compute gaps are dropped),
    and champsim's ``is_write`` flag cannot encode instruction fetches.
    Round-tripping through them additionally requires equal-length core
    streams, so a round-robin re-import reassigns every record to its
    original core.
    """
    lengths = {len(trace) for trace in traces.cores}
    if len(lengths) > 1:
        raise ValueError(
            f"cannot export {fmt}: cores have unequal record counts "
            f"{sorted(lengths)}; round-robin interleaving would scramble "
            f"core assignment on re-import"
        )
    for trace in traces.cores:
        types = np.asarray(trace.types)
        if np.any(types == AccessType.BARRIER):
            raise ValueError(
                f"cannot export {fmt}: the format has no barrier records"
            )
        if not allow_ifetch and np.any(types == AccessType.IFETCH):
            raise ValueError(
                f"cannot export {fmt}: the format cannot encode "
                f"instruction fetches"
            )


def _export_single_stream(
    traces: TraceSet,
    path: "str | Path",
    fmt: str,
    render: Callable[[AccessType, int, int], str],
    allow_ifetch: bool,
    line_bytes: int = 64,
) -> Path:
    _require_exportable(traces, fmt, allow_ifetch)
    path = Path(path)
    shift = line_bytes.bit_length() - 1
    with _open_text_write(path) as handle:
        length = len(traces.cores[0]) if traces.cores else 0
        sequence = 0
        for index in range(length):
            for trace in traces.cores:
                atype = AccessType(int(trace.types[index]))
                byte_addr = int(trace.lines[index]) << shift
                handle.write(render(atype, byte_addr, sequence))
                sequence += 1
    return path


def export_champsim(traces: TraceSet, path: "str | Path",
                    line_bytes: int = 64) -> Path:
    """Write a ChampSim-style text capture (lossy: no gaps/barriers).

    Cores are interleaved round-robin, so importing with
    ``split="round-robin"`` and the same core count reconstructs the
    per-core streams exactly.  The synthetic ``pc`` column advances by
    one instruction slot per record.
    """
    def render(atype: AccessType, byte_addr: int, sequence: int) -> str:
        pc = 0x400000 + 4 * sequence
        return f"{pc:#x} {byte_addr:#x} {int(atype is AccessType.WRITE)}\n"

    return _export_single_stream(
        traces, path, "champsim", render, allow_ifetch=False,
        line_bytes=line_bytes,
    )


def export_din(traces: TraceSet, path: "str | Path",
               line_bytes: int = 64) -> Path:
    """Write a din-style text capture (lossy: no gaps/barriers).

    Cores are interleaved round-robin, like :func:`export_champsim`;
    instruction fetches are carried as type code ``2``.
    """
    def render(atype: AccessType, byte_addr: int, _sequence: int) -> str:
        if atype is AccessType.IFETCH:
            code = 2
        elif atype is AccessType.WRITE:
            code = 1
        else:
            code = 0
        return f"{code} {byte_addr:#x}\n"

    return _export_single_stream(
        traces, path, "din", render, allow_ifetch=True, line_bytes=line_bytes,
    )


# ---------------------------------------------------------------------------
# Region / LineClass inference
# ---------------------------------------------------------------------------

def infer_regions(cores: Iterable[CoreTrace]) -> list[tuple[Region, LineClass]]:
    """Reconstruct the (region, class) map from the access streams.

    * lines ever instruction-fetched → ``INSTRUCTION`` (takes priority
      over data classes when a line is both fetched and loaded);
    * data lines whose footprint belongs to exactly one core → ``PRIVATE``;
    * data lines touched by two or more cores → ``SHARED_RW`` when any
      core wrote them, ``SHARED_RO`` otherwise.

    Consecutive line addresses of the same class coalesce into one
    :class:`Region`; every non-barrier access is covered, so
    ``TraceSet.validate_coverage`` passes by construction.
    """
    per_core_data: list[np.ndarray] = []
    written: list[np.ndarray] = []
    fetched: list[np.ndarray] = []
    for trace in cores:
        types = np.asarray(trace.types)
        lines = np.asarray(trace.lines)
        data_mask = (types == AccessType.READ) | (types == AccessType.WRITE)
        core_data = np.unique(lines[data_mask])
        if core_data.size:
            per_core_data.append(core_data)
        core_written = np.unique(lines[types == AccessType.WRITE])
        if core_written.size:
            written.append(core_written)
        core_fetched = np.unique(lines[types == AccessType.IFETCH])
        if core_fetched.size:
            fetched.append(core_fetched)

    instruction = (
        np.unique(np.concatenate(fetched)) if fetched
        else np.empty(0, dtype=np.int64)
    )
    if per_core_data:
        # Each core contributes its unique footprint once, so a line's
        # multiplicity in the concatenation is its toucher count.
        data, touchers = np.unique(
            np.concatenate(per_core_data), return_counts=True
        )
    else:
        data = np.empty(0, dtype=np.int64)
        touchers = np.empty(0, dtype=np.int64)
    written_all = (
        np.unique(np.concatenate(written)) if written
        else np.empty(0, dtype=np.int64)
    )

    classes = np.full(data.shape, int(LineClass.PRIVATE), dtype=np.uint8)
    shared = touchers >= 2
    is_written = np.isin(data, written_all)
    classes[shared & is_written] = int(LineClass.SHARED_RW)
    classes[shared & ~is_written] = int(LineClass.SHARED_RO)
    keep = ~np.isin(data, instruction)

    all_lines = np.concatenate((instruction, data[keep]))
    all_classes = np.concatenate((
        np.full(instruction.shape, int(LineClass.INSTRUCTION), dtype=np.uint8),
        classes[keep],
    ))
    order = np.argsort(all_lines, kind="stable")
    return _coalesce(all_lines[order], all_classes[order])


def _coalesce(lines: np.ndarray, classes: np.ndarray) -> list[tuple[Region, LineClass]]:
    """Runs of consecutive same-class line addresses → Regions."""
    if lines.size == 0:
        return []
    breaks = np.flatnonzero((np.diff(lines) != 1) | (np.diff(classes) != 0))
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks + 1, [lines.size]))
    return [
        (
            Region(int(lines[start]), int(lines[end - 1] - lines[start] + 1)),
            LineClass(int(classes[start])),
        )
        for start, end in zip(starts, ends)
    ]


# ---------------------------------------------------------------------------
# Import entry points
# ---------------------------------------------------------------------------

def import_trace(
    path: "str | Path",
    fmt: str = "auto",
    options: "ImportOptions | None" = None,
) -> TraceSet:
    """Parse an external capture into a :class:`TraceSet`.

    ``fmt`` is one of :data:`ALL_FORMATS` or ``"auto"`` (extension +
    content sniffing, :func:`detect_format`).  The returned set carries
    inferred regions (:func:`infer_regions`) and a ``provenance``
    payload that :func:`repro.workloads.io.save_trace_set` persists.
    """
    path = Path(path)
    if options is None:
        options = ImportOptions()
    if not path.is_file():
        raise TraceImportError(path, None, "no such capture file")
    try:
        if fmt == "auto":
            fmt = detect_format(path)
        if fmt == "champsim":
            cores = _import_single_stream(path, options, _parse_champsim)
        elif fmt == "din":
            cores = _import_single_stream(path, options, _parse_din)
        elif fmt == "csv":
            cores = _import_csv_cores(path, options)
        elif fmt == "champsim-bin":
            from repro.workloads.champsim_bin import read_champsim_bin

            cores = read_champsim_bin(path, options)
        else:
            raise ValueError(
                f"unknown trace format {fmt!r}; expected one of "
                f"{ALL_FORMATS} or 'auto'"
            )
    except (UnicodeDecodeError, gzip.BadGzipFile, lzma.LZMAError, EOFError) as error:
        # A binary blob (e.g. an .npz handed to import instead of the
        # experiment CLI) should fail with a located import error.
        raise TraceImportError(
            path, None, f"not a readable capture ({error})"
        ) from None
    try:
        trace_set = TraceSet(
            name=options.name or path.name.split(".")[0],
            cores=cores,
            regions=infer_regions(cores),
        )
    except ValueError as error:
        # Most commonly a per-core barrier-count disagreement.
        raise TraceImportError(path, None, str(error)) from None
    trace_set.provenance = {
        "format": fmt,
        "source": path.name,
        "source_sha256": trace_content_hash(path),
        "num_cores": len(cores),
        "split": options.split if fmt != "csv" else "explicit",
        "line_bytes": options.line_bytes,
        "records": trace_set.total_accesses(),
        "barriers": cores[0].barrier_count(),
    }
    if options.max_records is not None:
        trace_set.provenance["max_records"] = options.max_records
    return trace_set


# ---------------------------------------------------------------------------
# Imported benchmarks (the experiment layer's `imported:<path>` names)
# ---------------------------------------------------------------------------

def is_imported_benchmark(name: str) -> bool:
    """Whether a benchmark name denotes an imported ``.npz`` trace."""
    return isinstance(name, str) and name.startswith(IMPORTED_PREFIX)


def imported_trace_path(name: str) -> Path:
    """The ``.npz`` path behind an ``imported:<path>`` benchmark name."""
    if not is_imported_benchmark(name):
        raise ValueError(f"{name!r} is not an imported-benchmark name")
    path = name[len(IMPORTED_PREFIX):]
    if not path:
        raise ValueError(
            f"empty path in imported-benchmark name {name!r}; "
            f"expected {IMPORTED_PREFIX}<path-to-npz>"
        )
    return Path(path)


#: (resolved path, mtime_ns, size) → sha256, so repeated fingerprinting
#: of one grid's points hashes each trace file once.
_HASH_CACHE: dict[tuple[str, int, int], str] = {}


def trace_content_hash(path: "str | Path") -> str:
    """SHA-256 of a trace file's *content* (memoized per file state).

    The experiment layer addresses imported benchmarks by this hash, so
    a ``RunPoint``'s stored result survives moving the file and is
    invalidated by rewriting it.
    """
    path = Path(path)
    stat = os.stat(path)
    cache_key = (str(path.resolve()), stat.st_mtime_ns, stat.st_size)
    cached = _HASH_CACHE.get(cache_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    value = digest.hexdigest()
    _HASH_CACHE[cache_key] = value
    return value
