"""Differential kernel verification.

The optimized simulation kernels (fast, batched) claim bit-identical
results to the reference loop.  This module makes that claim testable:
build the same engine per kernel, run the same traces through each, and
diff every field of the resulting :class:`~repro.sim.stats.SimStats`.
A non-empty diff is a kernel bug by definition — there is no tolerance,
because every batched floating-point accumulation in the optimized
kernels is a sum of integer-valued cycle counts (order-independent),
and event order itself is preserved exactly.

Typical use::

    from repro.testing import verify_kernels, verify_all_kernels

    verify_kernels(lambda: make_scheme("RT-3", config), traces)
    verify_all_kernels(lambda: make_scheme("RT-3", config), traces)

``verify_kernels`` raises :class:`DifferentialMismatch` with a readable
report on any divergence.  Rather than dumping the whole-SimStats
inequality, the harness *localizes* the bug first: it bisects over trace
prefixes to the earliest record count at which the kernels disagree and
leads the report with the cycle-stamped stat fields that diverged there
(:func:`locate_first_divergence`).

The randomized-profile fuzzing front-end lives in
:mod:`repro.testing.fuzz` (CLI: ``python -m repro.testing
verify-kernels --fuzz N --seed S``), which the nightly CI runs across
all registered kernels.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.common.types import AccessType
from repro.schemes.base import ProtocolEngine
from repro.sim.kernel import kernel_names
from repro.sim.simulator import simulate
from repro.sim.stats import SimStats
from repro.workloads.trace import CoreTrace, TraceSet

#: The Counter-valued SimStats sections diffed key-by-key.
_COUNTER_SECTIONS = ("counters", "energy_counts", "latency", "miss_status")

#: Traces larger than this skip first-divergence localization by default
#: (each bisection probe re-simulates a prefix twice).
_LOCATE_MAX_ACCESSES = 500_000


@dataclasses.dataclass(frozen=True)
class StatsDiff:
    """One divergent measurement between two runs."""

    section: str
    key: str
    reference: object
    candidate: object

    def __str__(self) -> str:
        return (
            f"{self.section}[{self.key}]: "
            f"reference={self.reference!r} candidate={self.candidate!r}"
        )


@dataclasses.dataclass(frozen=True)
class FirstDivergence:
    """The earliest localized point at which two kernels disagree.

    ``record_index`` is the smallest per-core trace prefix length whose
    simulation already diverges (record counts, not cycles);  ``cycle``
    is the reference kernel's completion time of that prefix — the
    cycle stamp at which the divergence is first observable; ``diffs``
    are the stat fields differing at that prefix (typically one or two,
    against the full run's potentially hundreds of knock-on diffs).
    """

    record_index: int
    cycle: float
    diffs: tuple[StatsDiff, ...]

    def __str__(self) -> str:
        fields = ", ".join(str(diff) for diff in self.diffs[:4])
        if len(self.diffs) > 4:
            fields += f", ... and {len(self.diffs) - 4} more"
        return (
            f"first divergence within the first {self.record_index} "
            f"record(s)/core (cycle {self.cycle:.0f}): {fields}"
        )


class DifferentialMismatch(AssertionError):
    """Two kernels disagreed on the statistics of the same simulation."""

    def __init__(
        self,
        diffs: list[StatsDiff],
        context: str = "",
        first: FirstDivergence | None = None,
    ) -> None:
        self.diffs = diffs
        self.first = first
        header = f"kernels diverge ({context})" if context else "kernels diverge"
        lines = [f"{header}: {len(diffs)} differing measurement(s)"]
        if first is not None:
            lines.append(f"  {first}")
            lines.append("  full-run diff:")
        lines.extend(f"  {diff}" for diff in diffs[:20])
        if len(diffs) > 20:
            lines.append(f"  ... and {len(diffs) - 20} more")
        super().__init__("\n".join(lines))


def stats_diff(reference: SimStats, candidate: SimStats) -> list[StatsDiff]:
    """Full field-by-field diff of two :class:`SimStats` (empty = identical)."""
    diffs: list[StatsDiff] = []
    for section in _COUNTER_SECTIONS:
        ref_counter = getattr(reference, section)
        cand_counter = getattr(candidate, section)
        for key in sorted(set(ref_counter) | set(cand_counter), key=repr):
            if ref_counter[key] != cand_counter[key]:
                diffs.append(
                    StatsDiff(section, str(key), ref_counter[key], cand_counter[key])
                )
    if reference.num_cores != candidate.num_cores:
        diffs.append(StatsDiff("num_cores", "-", reference.num_cores, candidate.num_cores))
    for core, (ref_finish, cand_finish) in enumerate(
        zip(reference.core_finish, candidate.core_finish)
    ):
        if ref_finish != cand_finish:
            diffs.append(StatsDiff("core_finish", str(core), ref_finish, cand_finish))
    if len(reference.core_finish) != len(candidate.core_finish):
        diffs.append(
            StatsDiff(
                "core_finish", "len",
                len(reference.core_finish), len(candidate.core_finish),
            )
        )
    if reference.completion_time != candidate.completion_time:
        diffs.append(
            StatsDiff(
                "completion_time", "-",
                reference.completion_time, candidate.completion_time,
            )
        )
    return diffs


def assert_stats_equal(
    reference: SimStats, candidate: SimStats, context: str = ""
) -> None:
    """Raise :class:`DifferentialMismatch` unless the stats are identical."""
    diffs = stats_diff(reference, candidate)
    if diffs:
        raise DifferentialMismatch(diffs, context)


def diff_kernels(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    reference: str = "reference",
    candidate: str = "fast",
) -> tuple[SimStats, SimStats, list[StatsDiff]]:
    """Run both kernels over fresh engines and diff the results.

    ``engine_builder`` must return a *fresh* engine per call — engines
    are stateful and cannot be reused across runs.
    """
    reference_stats = simulate(engine_builder(), traces, kernel=reference)
    candidate_stats = simulate(engine_builder(), traces, kernel=candidate)
    return reference_stats, candidate_stats, stats_diff(reference_stats, candidate_stats)


def truncated_traces(traces: TraceSet, records: int) -> TraceSet:
    """The first ``records`` records of every core, as a valid TraceSet.

    Truncation can cut the cores' barrier counts unevenly; trailing
    barrier records are appended to equalize them (a trailing barrier
    only adds a synchronization wait, which both kernels must agree on
    anyway), so the prefix is simulatable by any kernel.
    """
    barrier = np.uint8(AccessType.BARRIER)
    prefixes = []
    for trace in traces.cores:
        types = trace.types[:records]
        prefixes.append(
            (types, trace.lines[:records], trace.gaps[:records],
             int(np.count_nonzero(types == barrier)))
        )
    max_barriers = max(count for _t, _l, _g, count in prefixes)
    cores = []
    for types, lines, gaps, count in prefixes:
        deficit = max_barriers - count
        if deficit:
            types = np.concatenate([types, np.full(deficit, barrier)])
            lines = np.concatenate([lines, np.zeros(deficit, dtype=lines.dtype)])
            gaps = np.concatenate([gaps, np.zeros(deficit, dtype=gaps.dtype)])
        cores.append(CoreTrace(np.ascontiguousarray(types),
                               np.ascontiguousarray(lines),
                               np.ascontiguousarray(gaps)))
    return TraceSet(f"{traces.name}[:{records}]", cores, traces.regions)


def locate_first_divergence(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    reference: str = "reference",
    candidate: str = "fast",
) -> FirstDivergence | None:
    """Bisect to the earliest trace prefix on which the kernels disagree.

    Re-simulates prefixes of the workload (``O(log n)`` kernel pairs) to
    find the smallest per-core record count whose statistics already
    differ, then reports that prefix's cycle stamp (reference completion
    time) and its — typically very short — field diff.  Returns ``None``
    if no prefix diverges (including the full trace: divergence then
    depends on the barrier-equalized truncation, not the workload).

    Divergence is assumed prefix-monotone (once a kernel has executed a
    wrong event, its statistics stay wrong); a non-monotone candidate
    still yields *a* divergent prefix, just not necessarily the first.
    """
    max_records = max((len(trace) for trace in traces.cores), default=0)
    if max_records == 0:
        return None

    def probe(records: int) -> list[StatsDiff]:
        _ref, _cand, diffs = diff_kernels(
            engine_builder, truncated_traces(traces, records), reference, candidate
        )
        return diffs

    if not probe(max_records):
        return None
    low, high = 1, max_records
    while low < high:
        mid = (low + high) // 2
        if probe(mid):
            high = mid
        else:
            low = mid + 1
    prefix = truncated_traces(traces, low)
    reference_stats = simulate(engine_builder(), prefix, kernel=reference)
    candidate_stats = simulate(engine_builder(), prefix, kernel=candidate)
    return FirstDivergence(
        low,
        reference_stats.completion_time,
        tuple(stats_diff(reference_stats, candidate_stats)),
    )


def _raise_mismatch(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    reference: str,
    candidate: str,
    diffs: list[StatsDiff],
    context: str,
    locate: bool | None,
) -> None:
    """Localize (unless disabled/huge) and raise the mismatch report."""
    if locate is None:
        locate = traces.total_accesses() <= _LOCATE_MAX_ACCESSES
    first = (
        locate_first_divergence(engine_builder, traces, reference, candidate)
        if locate
        else None
    )
    raise DifferentialMismatch(
        diffs, context or f"{reference} vs {candidate}", first=first
    )


def verify_kernels(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    reference: str = "reference",
    candidate: str = "fast",
    context: str = "",
    locate: bool | None = None,
) -> SimStats:
    """Assert both kernels agree; returns the reference stats on success.

    On a mismatch the raised :class:`DifferentialMismatch` leads with the
    *first* cycle-stamped divergent stat fields
    (:func:`locate_first_divergence`) instead of only the whole-SimStats
    inequality dump.  ``locate=False`` skips the localization bisection;
    the default localizes unless the workload is very large.
    """
    reference_stats, _candidate_stats, diffs = diff_kernels(
        engine_builder, traces, reference, candidate
    )
    if diffs:
        _raise_mismatch(
            engine_builder, traces, reference, candidate, diffs, context, locate
        )
    return reference_stats


def verify_all_kernels(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    reference: str = "reference",
    candidates: Iterable[str] | None = None,
    context: str = "",
    locate: bool | None = None,
) -> SimStats:
    """Verify every registered kernel against the reference in one call.

    ``candidates`` defaults to all registered kernels except
    ``reference`` (currently ``fast``, ``batched`` and ``vector``),
    making this the four-way check the fuzzing CLI and nightly CI
    drive.  Returns the reference stats on success.
    """
    if candidates is None:
        candidates = [name for name in kernel_names() if name != reference]
    # The reference loop is the slowest kernel by far; simulate it once
    # and diff every candidate against the same stats.
    reference_stats = simulate(engine_builder(), traces, kernel=reference)
    for candidate in candidates:
        candidate_stats = simulate(engine_builder(), traces, kernel=candidate)
        diffs = stats_diff(reference_stats, candidate_stats)
        if diffs:
            prefix = f"{context}: " if context else ""
            _raise_mismatch(
                engine_builder, traces, reference, candidate, diffs,
                f"{prefix}{reference} vs {candidate}", locate,
            )
    return reference_stats


def verify_streaming(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    kernels: Iterable[str] | None = None,
    chunk_records: int | None = None,
    context: str = "",
) -> SimStats:
    """Assert streamed execution is bit-identical to materialized.

    Wraps ``traces`` in a bounded-window
    :class:`~repro.workloads.streaming.StreamingTraceSet` (``chunk_records``
    per window; the ``REPRO_STREAM_CHUNK`` default otherwise) and checks
    that each kernel produces the same :class:`SimStats` streamed as it
    does over the materialized set.  Returns the materialized fast-kernel
    stats on success.  The divergence bisection does not apply here —
    the materialized/streamed pair differ in windowing, not kernel, so a
    mismatch reports the whole-stats diff with the chunk size.
    """
    from repro.workloads.streaming import StreamingTraceSet

    kernels = list(kernel_names()) if kernels is None else list(kernels)
    if not kernels:
        raise ValueError("verify_streaming needs at least one kernel")
    streamed_set = StreamingTraceSet.from_trace_set(traces, chunk_records)
    result: SimStats | None = None
    for kernel in kernels:
        materialized = simulate(engine_builder(), traces, kernel=kernel)
        streamed = simulate(engine_builder(), streamed_set, kernel=kernel)
        diffs = stats_diff(materialized, streamed)
        if diffs:
            prefix = f"{context}: " if context else ""
            raise DifferentialMismatch(
                diffs,
                f"{prefix}materialized vs streamed "
                f"(kernel={kernel}, chunk_records={chunk_records})",
            )
        if kernel == "fast":
            result = materialized
    return result if result is not None else materialized


def verify_matrix(
    engine_builders: Mapping[str, Callable[[], ProtocolEngine]],
    trace_sets: Mapping[str, TraceSet],
    reference: str = "reference",
    candidate: str = "fast",
) -> dict[tuple[str, str], SimStats]:
    """Differentially verify every (scheme, workload) combination.

    Returns the reference stats per combination; raises on the first
    divergence with the (scheme, workload) context in the message.
    """
    results: dict[tuple[str, str], SimStats] = {}
    for workload_name, traces in trace_sets.items():
        for scheme_name, builder in engine_builders.items():
            results[(scheme_name, workload_name)] = verify_kernels(
                builder,
                traces,
                reference,
                candidate,
                context=f"scheme={scheme_name} workload={workload_name}",
            )
    return results


def summarize(results: Iterable[tuple[tuple[str, str], SimStats]]) -> str:
    """Human-readable one-line-per-combination report of a verified matrix."""
    lines = ["scheme x workload: completion_time / l1_misses (kernels identical)"]
    for (scheme_name, workload_name), stats in results:
        lines.append(
            f"  {scheme_name:10s} {workload_name:14s} "
            f"{stats.completion_time:12.0f} / {stats.l1_misses()}"
        )
    return "\n".join(lines)
