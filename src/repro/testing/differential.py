"""Differential kernel verification.

The fast simulation kernel claims bit-identical results to the reference
loop.  This module makes that claim testable: build the same engine
twice, run the same traces through each kernel, and diff every field of
the resulting :class:`~repro.sim.stats.SimStats`.  A non-empty diff is a
kernel bug by definition — there is no tolerance, because every batched
floating-point accumulation in the fast kernel is a sum of
integer-valued cycle counts (order-independent), and event order itself
is preserved exactly.

Typical use::

    from repro.testing import verify_kernels

    verify_kernels(lambda: make_scheme("RT-3", config), traces)

``verify_kernels`` raises :class:`DifferentialMismatch` with a readable
field-by-field report on any divergence.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Mapping

from repro.schemes.base import ProtocolEngine
from repro.sim.simulator import simulate
from repro.sim.stats import SimStats
from repro.workloads.trace import TraceSet

#: The Counter-valued SimStats sections diffed key-by-key.
_COUNTER_SECTIONS = ("counters", "energy_counts", "latency", "miss_status")


@dataclasses.dataclass(frozen=True)
class StatsDiff:
    """One divergent measurement between two runs."""

    section: str
    key: str
    reference: object
    candidate: object

    def __str__(self) -> str:
        return (
            f"{self.section}[{self.key}]: "
            f"reference={self.reference!r} candidate={self.candidate!r}"
        )


class DifferentialMismatch(AssertionError):
    """Two kernels disagreed on the statistics of the same simulation."""

    def __init__(self, diffs: list[StatsDiff], context: str = "") -> None:
        self.diffs = diffs
        header = f"kernels diverge ({context})" if context else "kernels diverge"
        lines = [f"{header}: {len(diffs)} differing measurement(s)"]
        lines.extend(f"  {diff}" for diff in diffs[:20])
        if len(diffs) > 20:
            lines.append(f"  ... and {len(diffs) - 20} more")
        super().__init__("\n".join(lines))


def stats_diff(reference: SimStats, candidate: SimStats) -> list[StatsDiff]:
    """Full field-by-field diff of two :class:`SimStats` (empty = identical)."""
    diffs: list[StatsDiff] = []
    for section in _COUNTER_SECTIONS:
        ref_counter = getattr(reference, section)
        cand_counter = getattr(candidate, section)
        for key in sorted(set(ref_counter) | set(cand_counter), key=repr):
            if ref_counter[key] != cand_counter[key]:
                diffs.append(
                    StatsDiff(section, str(key), ref_counter[key], cand_counter[key])
                )
    if reference.num_cores != candidate.num_cores:
        diffs.append(StatsDiff("num_cores", "-", reference.num_cores, candidate.num_cores))
    for core, (ref_finish, cand_finish) in enumerate(
        zip(reference.core_finish, candidate.core_finish)
    ):
        if ref_finish != cand_finish:
            diffs.append(StatsDiff("core_finish", str(core), ref_finish, cand_finish))
    if len(reference.core_finish) != len(candidate.core_finish):
        diffs.append(
            StatsDiff(
                "core_finish", "len",
                len(reference.core_finish), len(candidate.core_finish),
            )
        )
    if reference.completion_time != candidate.completion_time:
        diffs.append(
            StatsDiff(
                "completion_time", "-",
                reference.completion_time, candidate.completion_time,
            )
        )
    return diffs


def assert_stats_equal(
    reference: SimStats, candidate: SimStats, context: str = ""
) -> None:
    """Raise :class:`DifferentialMismatch` unless the stats are identical."""
    diffs = stats_diff(reference, candidate)
    if diffs:
        raise DifferentialMismatch(diffs, context)


def diff_kernels(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    reference: str = "reference",
    candidate: str = "fast",
) -> tuple[SimStats, SimStats, list[StatsDiff]]:
    """Run both kernels over fresh engines and diff the results.

    ``engine_builder`` must return a *fresh* engine per call — engines
    are stateful and cannot be reused across runs.
    """
    reference_stats = simulate(engine_builder(), traces, kernel=reference)
    candidate_stats = simulate(engine_builder(), traces, kernel=candidate)
    return reference_stats, candidate_stats, stats_diff(reference_stats, candidate_stats)


def verify_kernels(
    engine_builder: Callable[[], ProtocolEngine],
    traces: TraceSet,
    reference: str = "reference",
    candidate: str = "fast",
    context: str = "",
) -> SimStats:
    """Assert both kernels agree; returns the reference stats on success."""
    reference_stats, _candidate_stats, diffs = diff_kernels(
        engine_builder, traces, reference, candidate
    )
    if diffs:
        raise DifferentialMismatch(diffs, context or f"{reference} vs {candidate}")
    return reference_stats


def verify_matrix(
    engine_builders: Mapping[str, Callable[[], ProtocolEngine]],
    trace_sets: Mapping[str, TraceSet],
    reference: str = "reference",
    candidate: str = "fast",
) -> dict[tuple[str, str], SimStats]:
    """Differentially verify every (scheme, workload) combination.

    Returns the reference stats per combination; raises on the first
    divergence with the (scheme, workload) context in the message.
    """
    results: dict[tuple[str, str], SimStats] = {}
    for workload_name, traces in trace_sets.items():
        for scheme_name, builder in engine_builders.items():
            results[(scheme_name, workload_name)] = verify_kernels(
                builder,
                traces,
                reference,
                candidate,
                context=f"scheme={scheme_name} workload={workload_name}",
            )
    return results


def summarize(results: Iterable[tuple[tuple[str, str], SimStats]]) -> str:
    """Human-readable one-line-per-combination report of a verified matrix."""
    lines = ["scheme x workload: completion_time / l1_misses (kernels identical)"]
    for (scheme_name, workload_name), stats in results:
        lines.append(
            f"  {scheme_name:10s} {workload_name:14s} "
            f"{stats.completion_time:12.0f} / {stats.l1_misses()}"
        )
    return "\n".join(lines)
