"""Golden-snapshot store: pin paper numbers against silent drift.

A golden is a checked-in JSON document capturing the output of one
experiment (the headline summary, a figure matrix, ...).  Tests compare
freshly computed payloads against the stored document and fail on any
difference, so a refactor that changes simulated numbers cannot land
unnoticed.

Regeneration is explicit: run the affected tests with ``REPRO_REGOLD=1``
(or pass ``regenerate=True`` / the ``--regold`` pytest flag) and commit
the rewritten JSON — the diff then *is* the review artifact.

Payloads are normalized through a JSON round-trip before comparison, so
tuples/lists and int-valued floats compare by serialized value, and
floats rely on ``repr`` round-tripping (exact for finite doubles).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

#: Environment variable that switches every store into regeneration mode.
REGOLD_ENV = "REPRO_REGOLD"


class GoldenMismatch(AssertionError):
    """A computed payload does not match its checked-in golden."""


def _normalize(payload: Any) -> Any:
    """Canonical JSON-value form of a payload (tuples→lists, keys→str)."""
    return json.loads(json.dumps(payload, sort_keys=True))


def payload_diff(expected: Any, actual: Any, path: str = "$") -> list[str]:
    """Recursive diff of two normalized JSON values, as readable paths."""
    if type(expected) is not type(actual):
        return [f"{path}: type {type(expected).__name__} != {type(actual).__name__}"]
    if isinstance(expected, dict):
        diffs: list[str] = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                diffs.append(f"{path}.{key}: unexpected (not in golden)")
            elif key not in actual:
                diffs.append(f"{path}.{key}: missing (golden has {expected[key]!r})")
            else:
                diffs.extend(payload_diff(expected[key], actual[key], f"{path}.{key}"))
        return diffs
    if isinstance(expected, list):
        diffs = []
        if len(expected) != len(actual):
            diffs.append(f"{path}: length {len(expected)} != {len(actual)}")
        for index, (exp_item, act_item) in enumerate(zip(expected, actual)):
            diffs.extend(payload_diff(exp_item, act_item, f"{path}[{index}]"))
        return diffs
    if expected != actual:
        return [f"{path}: golden {expected!r} != actual {actual!r}"]
    return []


def round_floats(payload: Any, ndigits: int = 9) -> Any:
    """Recursively round floats, for goldens robust to last-ulp drift."""
    if isinstance(payload, float):
        return round(payload, ndigits)
    if isinstance(payload, dict):
        return {key: round_floats(value, ndigits) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [round_floats(item, ndigits) for item in payload]
    return payload


def regenerate_requested() -> bool:
    """Whether the environment asks for golden regeneration."""
    return os.environ.get(REGOLD_ENV, "") not in ("", "0", "false", "no")


class GoldenStore:
    """Directory of named JSON goldens with explicit regeneration."""

    def __init__(self, root: str | Path, regenerate: bool | None = None) -> None:
        self.root = Path(root)
        self.regenerate = regenerate_requested() if regenerate is None else regenerate

    def path(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def exists(self, name: str) -> bool:
        return self.path(name).is_file()

    def load(self, name: str) -> Any:
        with self.path(name).open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def save(self, name: str, payload: Any) -> Path:
        target = self.path(name)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            json.dump(_normalize(payload), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    def check(self, name: str, payload: Any) -> None:
        """Compare ``payload`` against the stored golden.

        * regeneration mode → (re)write the golden and return;
        * missing golden → fail with regeneration instructions;
        * mismatch → fail with a recursive value diff.
        """
        actual = _normalize(payload)
        if self.regenerate:
            self.save(name, actual)
            return
        if not self.exists(name):
            raise GoldenMismatch(
                f"golden {self.path(name)} does not exist; run the test once "
                f"with {REGOLD_ENV}=1 (or pytest --regold) and commit the "
                f"generated file"
            )
        expected = self.load(name)
        diffs = payload_diff(expected, actual)
        if diffs:
            preview = "\n".join(f"  {line}" for line in diffs[:25])
            more = f"\n  ... and {len(diffs) - 25} more" if len(diffs) > 25 else ""
            raise GoldenMismatch(
                f"golden {name!r} drifted ({len(diffs)} difference(s)).\n"
                f"{preview}{more}\n"
                f"If the change is intentional, regenerate with {REGOLD_ENV}=1 "
                f"and commit {self.path(name)}."
            )
