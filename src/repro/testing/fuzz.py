"""Randomized-profile differential fuzzing of the simulation kernels.

The checked-in differential suite covers three hand-picked workload
regimes; this module generates *arbitrary* regimes from a seed — random
access mixes, patterns, working-set pressures, barrier counts, bursts,
schemes and machine parameters, plus occasional fractional compute gaps
(which flip the kernels into per-record Compute accumulation) — and runs
:func:`repro.testing.verify_all_kernels` over each.  A mismatch on any
fuzzed case is a kernel bug, and the case is fully described by its
integer seed: the failure bundle the CLI writes (profile parameters +
seed + scheme) reproduces the exact simulation anywhere.

Entrypoints::

    python -m repro.testing verify-kernels --fuzz 25 --seed 7
    python -m repro.testing verify-kernels --repro fuzz-failures/case-....json

The nightly CI (``.github/workflows/nightly-fuzz.yml``) runs the first
form over a fresh seed every night and uploads failure bundles as
artifacts.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.common.params import MachineConfig
from repro.schemes.factory import make_scheme
from repro.sim.kernel import kernel_names
from repro.sim.stats import SimStats
from repro.testing.differential import DifferentialMismatch, verify_all_kernels
from repro.workloads.benchmarks import BenchmarkProfile, build_trace
from repro.workloads.trace import CoreTrace, TraceSet

#: Schemes the fuzzer samples from (every engine family, several RTs,
#: plus the adaptive locality scheme — the only engine that qualifies
#: for the vector kernel's inline local-home service, so its spans must
#: be fuzzed too).
FUZZ_SCHEMES = (
    "S-NUCA", "R-NUCA", "VR", "ASR", "RT-1", "RT-2", "RT-3", "RT-8", "Locality",
)

_PATTERNS = ("loop", "zipf", "stream")


#: Machine configurations a case can run on (recorded in repro bundles
#: so a failure found under one machine replays on the same machine).
MACHINES = {
    "tiny": MachineConfig.tiny,
    "small": MachineConfig.small,
}


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """One randomized differential-verification case, derived from a seed."""

    case_seed: int
    scheme: str
    trace_seed: int
    fractional_gaps: bool
    profile: BenchmarkProfile
    machine: str = "tiny"

    def config(self) -> MachineConfig:
        return MACHINES[self.machine]()

    def describe(self) -> str:
        return (
            f"seed={self.case_seed} scheme={self.scheme} "
            f"machine={self.machine} trace_seed={self.trace_seed} "
            f"fractional_gaps={self.fractional_gaps} "
            f"profile={self.profile.name}"
        )

    def to_bundle(self) -> dict:
        """JSON-serializable repro bundle (profile JSON + seeds + machine)."""
        return {
            "case_seed": self.case_seed,
            "scheme": self.scheme,
            "machine": self.machine,
            "trace_seed": self.trace_seed,
            "fractional_gaps": self.fractional_gaps,
            "profile": dataclasses.asdict(self.profile),
        }

    @classmethod
    def from_bundle(cls, bundle: dict) -> "FuzzCase":
        return cls(
            case_seed=bundle["case_seed"],
            scheme=bundle["scheme"],
            trace_seed=bundle["trace_seed"],
            fractional_gaps=bundle["fractional_gaps"],
            profile=BenchmarkProfile(**bundle["profile"]),
            machine=bundle.get("machine", "tiny"),
        )


def replica_heavy_profile(rng: random.Random, name: str) -> BenchmarkProfile:
    """A randomized *replica-dominated* profile.

    The regime the batched kernel's local-replica fast path targets (and
    the paper's headline mechanism): high-reuse shared-read working sets
    larger than the L1 but far smaller than the LLC, swept in long
    low-gap loops, so VR/ASR/locality schemes service most L1 misses
    from local replicas.  A slice of migratory and written-shared
    traffic keeps locality classifiers moving through promotions and
    demotions (and exercises writes through E/M replicas), so the fuzz
    crosses every replica-run boundary event: true misses, upgrades,
    invalidations, reuse saturation and classifier demotion.
    """
    f_ifetch = rng.choice((0.0, 0.05, 0.15))
    f_migratory = rng.choice((0.0, 0.1, 0.2))
    f_shared_rw = rng.choice((0.05, 0.15))
    f_private = rng.choice((0.0, 0.1))
    f_shared_ro = 1.0 - f_ifetch - f_migratory - f_shared_rw - f_private
    return BenchmarkProfile(
        name=name,
        description="randomized replica-dominated differential-fuzz profile",
        f_ifetch=f_ifetch,
        f_private=f_private,
        f_shared_ro=f_shared_ro,
        f_shared_rw=f_shared_rw,
        f_migratory=f_migratory,
        private_pattern="loop",
        shared_ro_pattern=rng.choice(("loop", "zipf")),
        shared_rw_pattern="loop",
        instr_ws_x_l1i=rng.choice((0.5, 2.0)),
        private_ws_x_l1d=0.4,
        # Shared-RO working set overflows the L1 (forcing LLC traffic)
        # but sits well inside the LLC (so replicas survive and re-hit).
        shared_ro_ws_x_l1d=rng.choice((1.5, 2.5, 4.0)),
        shared_rw_ws_x_l1d=rng.choice((0.5, 1.5)),
        migratory_window_x_l1d=0.5,
        private_burst=rng.choice((4, 16)),
        shared_rw_partitioned=False,
        write_frac_rw=rng.choice((0.05, 0.3)),
        zipf_skew=2.5,
        false_sharing=rng.random() < 0.15,
        mean_gap=rng.choice((0.0, 0.0, 1.0)),
        accesses_per_core=rng.randrange(400, 1200),
        barriers=rng.choice((0, 1, 3)),
    )


def random_profile(rng: random.Random, name: str) -> BenchmarkProfile:
    """A valid random :class:`BenchmarkProfile` spanning regime space.

    Roughly a third of the cases draw from the replica-dominated
    sub-generator (:func:`replica_heavy_profile`), keeping the nightly
    fuzz pointed at the local-replica batching fast path.
    """
    if rng.random() < 0.35:
        return replica_heavy_profile(rng, name)
    f_ifetch = rng.choice((0.0, 0.02, 0.1, 0.2))
    f_migratory = rng.choice((0.0, 0.0, 0.0, 0.3, 0.5))
    weights = [rng.random() + 0.05 for _ in range(3)]
    remaining = 1.0 - f_ifetch - f_migratory
    scale = remaining / sum(weights)
    f_private, f_shared_ro, f_shared_rw = (weight * scale for weight in weights)
    return BenchmarkProfile(
        name=name,
        description="randomized differential-fuzz profile",
        f_ifetch=f_ifetch,
        f_private=f_private,
        f_shared_ro=f_shared_ro,
        f_shared_rw=f_shared_rw,
        f_migratory=f_migratory,
        private_pattern=rng.choice(_PATTERNS),
        shared_ro_pattern=rng.choice(_PATTERNS),
        shared_rw_pattern=rng.choice(_PATTERNS),
        instr_ws_x_l1i=rng.choice((0.3, 0.5, 2.0)),
        private_ws_x_l1d=rng.choice((0.4, 1.0, 2.5)),
        shared_ro_ws_x_l1d=rng.choice((0.5, 2.0, 6.0)),
        shared_rw_ws_x_l1d=rng.choice((0.5, 2.0, 6.0)),
        shared_ro_ws_x_llc=rng.choice((None, None, 0.6)),
        shared_rw_ws_x_llc=rng.choice((None, None, 1.2)),
        migratory_window_x_l1d=rng.choice((0.5, 1.5)),
        private_burst=rng.choice((1, 3, 12)),
        shared_rw_partitioned=rng.random() < 0.3,
        write_frac_rw=rng.choice((0.0, 0.05, 0.3)),
        zipf_skew=rng.choice((1.5, 2.5, 3.5)),
        false_sharing=rng.random() < 0.2,
        mean_gap=rng.choice((0.0, 1.0, 4.0)),
        accesses_per_core=rng.randrange(200, 900),
        barriers=rng.choice((0, 1, 2, 5)),
    )


def make_case(case_seed: int, machine: str = "tiny") -> FuzzCase:
    """Deterministically derive a full fuzz case from one integer seed."""
    rng = random.Random(case_seed)
    return FuzzCase(
        case_seed=case_seed,
        scheme=rng.choice(FUZZ_SCHEMES),
        trace_seed=rng.randrange(1 << 20),
        # Occasionally exercise the fractional-gap path, where kernels
        # must reproduce the reference's per-record Compute accumulation
        # order instead of batching the (then order-sensitive) float sum.
        fractional_gaps=rng.random() < 0.25,
        profile=random_profile(rng, name=f"FUZZ-{case_seed}"),
        machine=machine,
    )


def iter_cases(count: int, seed: int, machine: str = "tiny") -> Iterator[FuzzCase]:
    """``count`` cases derived from a base seed (stable across runs)."""
    for index in range(count):
        yield make_case(seed + index, machine=machine)


def _with_fractional_gaps(traces: TraceSet) -> TraceSet:
    """Offset every gap by half a cycle to force the non-integral path.

    The offset (rather than e.g. halving, which leaves even/zero gaps
    integral) guarantees every core's gaps are fractional, so a flagged
    case always exercises the per-record Compute accumulation path.
    """
    cores = [
        CoreTrace(trace.types, trace.lines, trace.gaps.astype(np.float64) + 0.5)
        for trace in traces.cores
    ]
    return TraceSet(traces.name, cores, traces.regions)


def build_case_traces(case: FuzzCase, config: MachineConfig) -> TraceSet:
    traces = build_trace(case.profile, config, scale=1.0, seed=case.trace_seed)
    if case.fractional_gaps:
        traces = _with_fractional_gaps(traces)
    return traces


def run_case(
    case: FuzzCase,
    config: MachineConfig | None = None,
    kernels: Iterable[str] | None = None,
) -> SimStats:
    """Differentially verify one case across ``kernels`` (default: all).

    Raises :class:`DifferentialMismatch` (with the first cycle-stamped
    divergent field localized) on any disagreement.
    """
    machine = config if config is not None else case.config()
    traces = build_case_traces(case, machine)
    return verify_all_kernels(
        lambda: make_scheme(case.scheme, machine),
        traces,
        candidates=kernels,
        context=case.describe(),
    )


@dataclasses.dataclass
class FuzzReport:
    """Outcome of a fuzzing session."""

    passed: list[FuzzCase] = dataclasses.field(default_factory=list)
    failed: list[tuple[FuzzCase, DifferentialMismatch]] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        lines = [f"fuzz: {len(self.passed)} passed, {len(self.failed)} failed"]
        for case, error in self.failed:
            first_line = str(error).splitlines()[0]
            lines.append(f"  FAIL {case.describe()}: {first_line}")
        return "\n".join(lines)


def write_bundle(case: FuzzCase, error: DifferentialMismatch, out_dir: Path) -> Path:
    """Write a failure's repro bundle; returns the bundle path."""
    out_dir.mkdir(parents=True, exist_ok=True)
    bundle = case.to_bundle()
    bundle["error"] = str(error)
    target = out_dir / f"case-{case.case_seed}.json"
    with target.open("w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def csv_roundtrip_case(case: FuzzCase, workdir: Path) -> Path:
    """Round-trip one case's synthetic TraceSet through the CSV
    interchange format (:mod:`repro.workloads.imports`) and assert the
    per-core arrays survive exactly.

    The fuzzed profile space (mixes, patterns, pressures, barriers,
    bursts) stresses the exporter/importer far beyond the fixture
    captures: every record's (type, line, gap) must reconstruct
    bit-for-bit from the ``core,tick,type,line`` text encoding, and the
    re-imported set's *inferred* region map must still cover every
    access (``validate_coverage``).  Gaps stay integral on purpose —
    ticks are integer cumulative gaps, so fractional-gap traces are not
    CSV-representable (the bundled ``.npz`` format carries those).

    Returns the intermediate capture's path (so the caller owns its
    cleanup); raises ``AssertionError`` (or the importer's
    ``TraceImportError``) on any divergence.
    """
    from repro.workloads.imports import export_csv, import_trace

    traces = build_trace(case.profile, case.config(), scale=1.0,
                         seed=case.trace_seed)
    path = export_csv(traces, workdir / f"case-{case.case_seed}.csv.gz")
    back = import_trace(path, fmt="csv")
    assert back.num_cores == traces.num_cores, (
        f"core count changed: {traces.num_cores} -> {back.num_cores}"
    )
    for core, (original, restored) in enumerate(zip(traces.cores, back.cores)):
        for field in ("types", "lines", "gaps"):
            a = getattr(original, field)
            b = getattr(restored, field)
            assert np.array_equal(a, b), (
                f"core {core} {field} diverged after CSV round-trip "
                f"({case.describe()})"
            )
    back.validate_coverage()
    return path


def run_csv_roundtrip_fuzz(
    count: int,
    seed: int,
    workdir: Path,
    machine: str = "tiny",
    log=None,
) -> list[str]:
    """Round-trip ``count`` randomized TraceSets through CSV; returns
    the failure descriptions (empty = all exact).

    A passing case's intermediate ``.csv.gz`` is deleted; a failing
    case's is kept in ``workdir`` next to a ``case-<seed>.error`` note,
    so the nightly job can upload exactly the diverging captures as
    repro artifacts (the case itself also replays from its seed alone).
    """
    failures: list[str] = []
    workdir.mkdir(parents=True, exist_ok=True)
    for case in iter_cases(count, seed, machine=machine):
        try:
            capture = csv_roundtrip_case(case, workdir)
        except (AssertionError, ValueError) as error:
            failures.append(f"{case.describe()}: {error}")
            (workdir / f"case-{case.case_seed}.error").write_text(
                f"{case.describe()}\n{error}\n"
            )
            if log:
                log(f"FAIL csv-roundtrip {case.describe()}: {error}")
        else:
            capture.unlink(missing_ok=True)
            if log:
                log(f"ok   csv-roundtrip {case.describe()}")
    return failures


def run_fuzz(
    count: int,
    seed: int,
    machine: str = "tiny",
    kernels: Iterable[str] | None = None,
    out_dir: Path | None = None,
    log=None,
) -> FuzzReport:
    """Run ``count`` randomized cases; collect (and optionally bundle)
    every mismatch instead of stopping at the first."""
    kernel_list = list(kernels) if kernels is not None else [
        name for name in kernel_names() if name != "reference"
    ]
    report = FuzzReport()
    for case in iter_cases(count, seed, machine=machine):
        try:
            stats = run_case(case, kernels=kernel_list)
        except DifferentialMismatch as error:
            report.failed.append((case, error))
            if out_dir is not None:
                bundle = write_bundle(case, error, out_dir)
                if log:
                    log(f"FAIL {case.describe()} -> {bundle}")
            elif log:
                log(f"FAIL {case.describe()}")
        else:
            report.passed.append(case)
            if log:
                log(
                    f"ok   {case.describe()} "
                    f"(completion={stats.completion_time:.0f}, "
                    f"l1_misses={stats.l1_misses()})"
                )
    return report
