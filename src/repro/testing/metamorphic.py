"""Metamorphic checks for the simulation event loop.

Metamorphic testing verifies *relations between runs* instead of
absolute numbers, so it needs no golden and no second implementation:

* **Equal-time permutation** — events that become ready at the same
  timestamp (the time-zero seeding of every core, the simultaneous
  re-release of barrier-parked cores) may be pushed into the scheduler
  in any order; the heap must normalize the order away.  Kernels expose
  a ``perturb_seed`` hook that shuffles exactly those pushes, and this
  check asserts the shuffled runs are bit-identical to the baseline.

* **Scale monotonicity** — growing a workload's trace length must not
  shrink completion time or total accesses: more work on an in-order
  core can only take longer.

* **Barrier-count invariance** — prepending a time-zero barrier to
  every core is a no-op: all cores arrive at t=0, release at t=0, and
  zero Synchronization cycles are charged.  Results must be identical
  for any number of prepended barriers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.common.types import AccessType
from repro.schemes.base import ProtocolEngine
from repro.sim.kernel import KERNELS
from repro.sim.simulator import simulate
from repro.sim.stats import SimStats
from repro.testing.differential import assert_stats_equal
from repro.workloads.trace import CoreTrace, TraceSet

EngineBuilder = Callable[[], ProtocolEngine]
TraceBuilder = Callable[[float], TraceSet]


def check_equal_time_permutation(
    engine_builder: EngineBuilder,
    traces: TraceSet,
    kernel: str = "fast",
    seeds: Sequence[int] = (1, 2, 3),
) -> SimStats:
    """Shuffled scheduling of equal-time events must not change results.

    Runs a baseline with the unperturbed kernel, then one run per seed
    with the kernel's equal-time pushes shuffled, asserting full
    :class:`SimStats` equality each time.  Returns the baseline stats.
    """
    kernel_cls = KERNELS[kernel]
    baseline = simulate(engine_builder(), traces, kernel=kernel_cls())
    for seed in seeds:
        perturbed = simulate(
            engine_builder(), traces, kernel=kernel_cls(perturb_seed=seed)
        )
        assert_stats_equal(
            baseline,
            perturbed,
            context=f"equal-time permutation (kernel={kernel}, seed={seed})",
        )
    return baseline


def check_scale_monotonicity(
    engine_builder: EngineBuilder,
    trace_builder: TraceBuilder,
    scales: Sequence[float],
    kernel: str | None = None,
) -> list[tuple[float, SimStats]]:
    """Longer workloads must not finish sooner.

    ``trace_builder(scale)`` must produce the same workload at different
    trace lengths (e.g. ``build_trace`` with a fixed profile and seed).
    Asserts total accesses and completion time are non-decreasing in
    ``scale``; returns the per-scale stats for further inspection.
    """
    if sorted(scales) != list(scales):
        raise ValueError("scales must be given in increasing order")
    results: list[tuple[float, SimStats]] = []
    previous_accesses = -1
    previous_completion = -1.0
    for scale in scales:
        traces = trace_builder(scale)
        stats = simulate(engine_builder(), traces, kernel=kernel)
        accesses = traces.total_accesses()
        if accesses < previous_accesses:
            raise AssertionError(
                f"scale {scale}: total accesses shrank ({previous_accesses} "
                f"-> {accesses}) — trace builder is not monotone in scale"
            )
        if stats.completion_time < previous_completion:
            raise AssertionError(
                f"scale {scale}: completion time shrank "
                f"({previous_completion} -> {stats.completion_time}) "
                f"despite a workload that only grew"
            )
        previous_accesses = accesses
        previous_completion = stats.completion_time
        results.append((scale, stats))
    return results


def with_prepended_barriers(traces: TraceSet, count: int = 1) -> TraceSet:
    """A copy of ``traces`` with ``count`` time-zero barriers prepended
    to every core (line and gap of a barrier record are ignored)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    barrier = int(AccessType.BARRIER)
    cores = []
    for trace in traces.cores:
        cores.append(
            CoreTrace(
                types=np.concatenate(
                    [np.full(count, barrier, dtype=trace.types.dtype), trace.types]
                ),
                lines=np.concatenate(
                    [np.zeros(count, dtype=trace.lines.dtype), trace.lines]
                ),
                gaps=np.concatenate(
                    [np.zeros(count, dtype=trace.gaps.dtype), trace.gaps]
                ),
            )
        )
    return TraceSet(traces.name, cores, list(traces.regions))


def check_barrier_count_invariance(
    engine_builder: EngineBuilder,
    traces: TraceSet,
    counts: Sequence[int] = (1, 3),
    kernel: str | None = None,
) -> SimStats:
    """Prepended time-zero barriers must be observationally free.

    Asserts the full :class:`SimStats` (including the Synchronization
    bucket) is identical with 0, ``counts[0]``, ... prepended barriers.
    Returns the baseline stats.
    """
    baseline = simulate(engine_builder(), traces, kernel=kernel)
    for count in counts:
        padded = simulate(
            engine_builder(), traces=with_prepended_barriers(traces, count), kernel=kernel
        )
        assert_stats_equal(
            baseline, padded, context=f"{count} prepended barrier(s)"
        )
    return baseline
