"""Verification subsystem: differential, golden-snapshot and metamorphic checks.

Cache-policy conclusions are only trustworthy when the evaluation
substrate is itself verified, so the simulator's optimized fast path
ships with the machinery to prove it correct:

* :mod:`repro.testing.differential` — run simulation kernels over the
  same (engine, trace) pair and diff the **full**
  :class:`~repro.sim.stats.SimStats` (counters, energy events, latency
  buckets, miss statuses, per-core finish times, completion time).  The
  optimized kernels (fast, batched) are only allowed to exist because
  this harness shows them bit-identical to the reference loop; on a
  mismatch it bisects to the first cycle-stamped divergent stat field.

* :mod:`repro.testing.fuzz` — randomized benchmark profiles for
  differential fuzzing beyond the checked-in workloads; drives
  :func:`verify_all_kernels` from the ``python -m repro.testing
  verify-kernels --fuzz N`` CLI, which the nightly CI schedules and
  whose failure bundles reproduce locally via ``--repro``.

* :mod:`repro.testing.golden` — a JSON golden-snapshot store with a
  regeneration flag (``REPRO_REGOLD=1``), so headline paper numbers are
  pinned and refactors cannot silently drift them.

* :mod:`repro.testing.metamorphic` — invariance checks that need no
  golden at all: permuting equal-time events, growing the workload
  scale, and padding the barrier count must transform results in known
  ways.
"""

from repro.testing.differential import (
    DifferentialMismatch,
    FirstDivergence,
    StatsDiff,
    assert_stats_equal,
    diff_kernels,
    locate_first_divergence,
    stats_diff,
    truncated_traces,
    verify_all_kernels,
    verify_kernels,
)
from repro.testing.golden import GoldenMismatch, GoldenStore
from repro.testing.metamorphic import (
    check_barrier_count_invariance,
    check_equal_time_permutation,
    check_scale_monotonicity,
    with_prepended_barriers,
)

__all__ = [
    "DifferentialMismatch",
    "FirstDivergence",
    "GoldenMismatch",
    "GoldenStore",
    "StatsDiff",
    "assert_stats_equal",
    "check_barrier_count_invariance",
    "check_equal_time_permutation",
    "check_scale_monotonicity",
    "diff_kernels",
    "locate_first_divergence",
    "stats_diff",
    "truncated_traces",
    "verify_all_kernels",
    "verify_kernels",
    "with_prepended_barriers",
]
