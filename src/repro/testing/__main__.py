"""Deprecated forwarder: use ``python -m repro testing`` instead.

The verification CLI implementation lives in :mod:`repro.testing.cli`;
this module re-exports its surface so existing imports (and ``python -m
repro.testing`` invocations) keep working, with a pointer to the
unified entry point printed on direct execution.
"""

from __future__ import annotations

import sys

from repro.testing.cli import (  # noqa: F401  (compatibility re-exports)
    CHECKED_IN_SCHEMES,
    CHECKED_IN_WORKLOADS,
    build_parser,
    main,
)

if __name__ == "__main__":
    print(
        "note: 'python -m repro.testing' is deprecated; "
        "use 'python -m repro testing'",
        file=sys.stderr,
    )
    raise SystemExit(main())
