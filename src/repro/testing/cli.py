"""Verification subsystem CLI (``python -m repro testing``).

Usage::

    python -m repro testing verify-kernels                      # checked-in matrix
    python -m repro testing verify-kernels --fuzz 25 --seed 7   # randomized profiles
    python -m repro testing verify-kernels --repro case-7.json  # replay a bundle

``verify-kernels`` differentially verifies every registered simulation
kernel (fast, batched, ...) against the reference event loop:

* with no options, over the same three checked-in workload regimes the
  tier-1 differential suite pins (quick sanity run);
* with ``--fuzz N``, over ``N`` randomized profiles derived from
  ``--seed`` (schemes, mixes, patterns, pressures, barriers and
  fractional-gap traces all vary) — the nightly CI entrypoint.  Each
  mismatch writes a repro bundle (profile JSON + seeds) into ``--out``;
* with ``--repro BUNDLE``, replaying one previously written bundle.

Exit status is non-zero on any mismatch, and every mismatch message
leads with the first cycle-stamped divergent stat field.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.common.params import MachineConfig
from repro.schemes.factory import make_scheme
from repro.sim.kernel import kernel_names
from repro.testing import fuzz
from repro.testing.differential import DifferentialMismatch, verify_all_kernels
from repro.workloads.benchmarks import build_trace, get_profile

#: The checked-in verification matrix (mirrors tests/testing).
CHECKED_IN_WORKLOADS = (
    ("BARNES", 0.10, 11),
    ("OCEAN-C", 0.10, 23),
    ("DEDUP", 0.10, 37),
)
CHECKED_IN_SCHEMES = ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro testing",
        description="Verification subsystem CLI.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    verify = sub.add_parser(
        "verify-kernels",
        aliases=["verify_kernels"],
        help="differentially verify all simulation kernels",
    )
    verify.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="verify N randomized profiles instead of the "
                             "checked-in matrix")
    verify.add_argument("--seed", type=int, default=1,
                        help="base seed for --fuzz case derivation")
    verify.add_argument("--kernels", type=str, default=None,
                        help="comma-separated candidate kernels "
                             f"(default: all but reference — "
                             f"{','.join(n for n in kernel_names() if n != 'reference')})")
    verify.add_argument("--machine", choices=("tiny", "small"), default="tiny",
                        help="machine configuration for fuzz cases")
    verify.add_argument("--out", type=Path, default=Path("fuzz-failures"),
                        help="directory for failure repro bundles")
    verify.add_argument("--repro", type=Path, default=None, metavar="BUNDLE",
                        help="replay one failure bundle JSON and exit")
    roundtrip = sub.add_parser(
        "csv-roundtrip",
        aliases=["csv_roundtrip"],
        help="fuzz randomized TraceSets through the CSV interchange "
             "format and assert exact reconstruction",
    )
    roundtrip.add_argument("--cases", type=int, default=10, metavar="N",
                           help="number of randomized trace sets (default 10)")
    roundtrip.add_argument("--seed", type=int, default=1)
    roundtrip.add_argument("--machine", choices=("tiny", "small"),
                           default="tiny")
    roundtrip.add_argument("--workdir", type=Path,
                           default=Path("csv-roundtrip-fuzz"),
                           help="directory for the intermediate .csv.gz files")
    # Dispatch lives next to the declaration, so aliases can never
    # drift out of sync with main()'s routing.
    roundtrip.set_defaults(handler=_run_csv_roundtrip)
    return parser


def _candidates(args: argparse.Namespace) -> list[str] | None:
    if args.kernels is None:
        return None
    return [name.strip() for name in args.kernels.split(",") if name.strip()]


def _machine(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig.small() if args.machine == "small" else MachineConfig.tiny()


def _run_repro(args: argparse.Namespace) -> int:
    import json

    with args.repro.open("r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    # The bundle records the machine it was found on; --machine is only
    # a fallback for pre-machine bundles.
    if "machine" not in bundle:
        bundle = {**bundle, "machine": args.machine}
    case = fuzz.FuzzCase.from_bundle(bundle)
    print(f"replaying {case.describe()}")
    try:
        fuzz.run_case(case, kernels=_candidates(args))
    except DifferentialMismatch as error:
        print(error)
        return 1
    print("bundle no longer diverges (all kernels bit-identical)")
    return 0


def _run_checked_in(args: argparse.Namespace) -> int:
    config = _machine(args)
    candidates = _candidates(args)
    status = 0
    for benchmark, scale, seed in CHECKED_IN_WORKLOADS:
        traces = build_trace(get_profile(benchmark), config, scale=scale, seed=seed)
        for scheme in CHECKED_IN_SCHEMES:
            context = f"scheme={scheme} workload={benchmark}"
            try:
                stats = verify_all_kernels(
                    lambda scheme=scheme: make_scheme(scheme, config),
                    traces,
                    candidates=candidates,
                    context=context,
                )
            except DifferentialMismatch as error:
                print(error)
                status = 1
            else:
                print(f"ok   {context} (completion={stats.completion_time:.0f})")
    return status


def _run_fuzz(args: argparse.Namespace) -> int:
    report = fuzz.run_fuzz(
        args.fuzz,
        args.seed,
        machine=args.machine,
        kernels=_candidates(args),
        out_dir=args.out,
        log=print,
    )
    print(report.summary())
    if not report.ok:
        print(
            f"repro any failure locally with: python -m repro testing "
            f"verify-kernels --repro {args.out}/case-<seed>.json"
        )
        return 1
    return 0


def _run_csv_roundtrip(args: argparse.Namespace) -> int:
    failures = fuzz.run_csv_roundtrip_fuzz(
        args.cases, args.seed, args.workdir, machine=args.machine, log=print
    )
    print(f"csv-roundtrip: {args.cases - len(failures)} exact, "
          f"{len(failures)} diverged")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = getattr(args, "handler", None)
    if handler is not None:
        return handler(args)
    if args.repro is not None:
        return _run_repro(args)
    if args.fuzz > 0:
        return _run_fuzz(args)
    return _run_checked_in(args)


