"""Cache line entries for the L1 caches and LLC slices.

An LLC slice holds two kinds of entries (Section 2.2):

* :class:`HomeEntry` — the *home* copy of a line, with the in-cache
  directory state attached (sharer tracking + locality classifier).
* :class:`ReplicaEntry` — a locality-aware *replica* in the requesting
  core's local slice, carrying the replica-reuse saturating counter.

The replacement policy queries :attr:`CacheLine.l1_copies` so the paper's
modified-LRU (Section 2.2.4: evict lines with the fewest L1 copies first)
works uniformly over both kinds without knowing which is which.
"""

from __future__ import annotations

from typing import Optional

from repro.common.counters import SaturatingCounter
from repro.common.types import MESIState


class CacheLine:
    """Base cache entry: a line address, a MESI state and LRU bookkeeping."""

    __slots__ = ("line_addr", "state", "dirty", "last_use")

    def __init__(self, line_addr: int, state: MESIState = MESIState.INVALID) -> None:
        self.line_addr = line_addr
        self.state = state
        self.dirty = False
        self.last_use = 0

    @property
    def valid(self) -> bool:
        return self.state != MESIState.INVALID

    @property
    def l1_copies(self) -> int:
        """Number of L1 copies backed by this entry (replacement hint)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(line={self.line_addr:#x}, "
            f"state={self.state.name}, dirty={self.dirty})"
        )


class L1Line(CacheLine):
    """A line in a private L1 instruction or data cache."""

    __slots__ = ()


class HomeEntry(CacheLine):
    """The home copy of a line in an LLC slice, with directory state.

    ``sharers`` is a sharer tracker (ACKwise or full-map) over *cores*: a
    core is recorded as a sharer when any part of its local hierarchy (L1
    or LLC replica) holds the line — the directory keeps a single pointer
    per core (Section 2.3.2).  ``classifier`` is the per-line locality
    classifier state; its concrete type depends on the configured
    classifier and is ``None`` for schemes that do not classify.
    """

    __slots__ = ("sharers", "owner", "classifier")

    def __init__(self, line_addr: int, sharers, state: MESIState = MESIState.SHARED) -> None:
        super().__init__(line_addr, state)
        self.sharers = sharers
        #: Core holding the line in E/M (exclusive owner), or ``None``.
        self.owner: Optional[int] = None
        self.classifier = None

    @property
    def l1_copies(self) -> int:
        return self.sharers.count


class ReplicaEntry(CacheLine):
    """A locality-aware replica in a core's local LLC slice.

    ``reuse`` is the Replica Reuse saturating counter of Figure 4 — it is
    initialized to 1 on creation and incremented on every replica hit.
    ``l1_copy`` tracks whether the slice-owning core's L1 currently holds
    the line (used by modified-LRU and by eviction back-invalidation).
    """

    __slots__ = ("reuse", "l1_copy")

    def __init__(
        self,
        line_addr: int,
        state: MESIState,
        reuse_max: int,
    ) -> None:
        super().__init__(line_addr, state)
        self.reuse = SaturatingCounter(reuse_max, initial=1)
        self.l1_copy = False

    @property
    def l1_copies(self) -> int:
        return 1 if self.l1_copy else 0
