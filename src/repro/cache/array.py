"""Generic set-associative cache array.

This is the storage substrate under both the private L1 caches and the
LLC slices.  It stores :class:`~repro.cache.entries.CacheLine` objects,
maintains per-set occupancy and LRU timestamps, and delegates victim
selection to a pluggable :class:`~repro.cache.replacement.ReplacementPolicy`.

The array never evicts on its own: :meth:`victim_for` exposes the entry
that *would* be evicted so the protocol layer can run the appropriate
coherence actions (write-backs, back-invalidations, classifier updates)
before calling :meth:`remove` and :meth:`insert`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.entries import CacheLine
from repro.cache.replacement import ReplacementPolicy
from repro.common.params import CacheGeometry


class SetAssociativeCache:
    """A set-associative array of cache-line entries."""

    def __init__(self, geometry: CacheGeometry, policy: ReplacementPolicy) -> None:
        self._geometry = geometry
        self._policy = policy
        #: One dict per set, keyed by line address. Python dicts preserve
        #: insertion order but LRU ordering uses explicit timestamps.
        self._sets: list[dict[int, CacheLine]] = [{} for _ in range(geometry.sets)]
        self._clock = 0

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    # -- lookups --------------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Return the entry for ``line_addr`` without touching LRU state."""
        return self._sets[self._geometry.set_index(line_addr)].get(line_addr)

    def access(self, line_addr: int) -> Optional[CacheLine]:
        """Return the entry and mark it most recently used."""
        entry = self.lookup(line_addr)
        if entry is not None:
            self._clock += 1
            entry.last_use = self._clock
        return entry

    def touch(self, entry: CacheLine) -> None:
        """Mark an already-resident entry most recently used."""
        self._clock += 1
        entry.last_use = self._clock

    # -- modification ---------------------------------------------------------
    def victim_for(self, line_addr: int) -> Optional[CacheLine]:
        """The entry that must be evicted before inserting ``line_addr``.

        Returns ``None`` when the set has a free way (or already holds the
        line, in which case insertion is a replacement of itself).
        """
        cache_set = self._sets[self._geometry.set_index(line_addr)]
        if line_addr in cache_set or len(cache_set) < self._geometry.ways:
            return None
        return self._policy.select_victim(list(cache_set.values()))

    def insert(self, entry: CacheLine) -> None:
        """Insert an entry; the caller must have made room first."""
        cache_set = self._sets[self._geometry.set_index(entry.line_addr)]
        if entry.line_addr not in cache_set and len(cache_set) >= self._geometry.ways:
            raise RuntimeError(
                f"inserting line {entry.line_addr:#x} into a full set; "
                "evict the victim_for() entry first"
            )
        self._clock += 1
        entry.last_use = self._clock
        cache_set[entry.line_addr] = entry

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        """Remove and return the entry for ``line_addr`` (or ``None``)."""
        return self._sets[self._geometry.set_index(line_addr)].pop(line_addr, None)

    # -- inspection -----------------------------------------------------------
    def __iter__(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def set_occupancy(self, set_index: int) -> int:
        return len(self._sets[set_index])

    def utilization(self) -> float:
        """Fraction of ways currently occupied across the whole array."""
        return len(self) / self._geometry.lines
