"""LLC/L1 replacement policies.

The paper replaces the traditional LRU policy at the LLC with a scheme
that "first selects cache lines with the least number of L1 cache copies
and then chooses the least recently used among them" (Section 2.2.4).
The number of L1 copies is free to obtain because the directory is
integrated in the LLC tags.  Section 4.2 shows this beats LRU on
BLACKSCHOLES and FACESIM and ties elsewhere; ``benchmarks/test_replacement_ablation.py``
reproduces that comparison.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.cache.entries import CacheLine


class ReplacementPolicy(Protocol):
    """Chooses a victim among the valid entries of a full set."""

    def select_victim(self, candidates: Sequence[CacheLine]) -> CacheLine:
        """Return the entry to evict. ``candidates`` is non-empty."""
        ...


class LRUPolicy:
    """Classic least-recently-used replacement."""

    def select_victim(self, candidates: Sequence[CacheLine]) -> CacheLine:
        if not candidates:
            raise ValueError("no replacement candidates")
        return min(candidates, key=lambda entry: entry.last_use)


class ModifiedLRUPolicy:
    """The paper's LLC policy: fewest L1 copies first, then LRU.

    Prioritizing lines without L1 sharers keeps back-invalidations (which
    the inclusive hierarchy would otherwise trigger) negligible.
    """

    def select_victim(self, candidates: Sequence[CacheLine]) -> CacheLine:
        if not candidates:
            raise ValueError("no replacement candidates")
        return min(candidates, key=lambda entry: (entry.l1_copies, entry.last_use))


def make_policy(name: str) -> ReplacementPolicy:
    """Factory used by configuration code and the ablation benchmark."""
    policies = {
        "lru": LRUPolicy,
        "modified_lru": ModifiedLRUPolicy,
    }
    try:
        return policies[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(policies)}"
        ) from None
