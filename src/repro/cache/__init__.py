"""Cache structures: set-associative arrays, L1 caches and LLC slices."""

from repro.cache.array import SetAssociativeCache
from repro.cache.entries import CacheLine, HomeEntry, L1Line, ReplicaEntry
from repro.cache.l1 import L1Cache
from repro.cache.llc import LLCSlice
from repro.cache.replacement import (
    LRUPolicy,
    ModifiedLRUPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "CacheLine",
    "HomeEntry",
    "L1Cache",
    "L1Line",
    "LLCSlice",
    "LRUPolicy",
    "ModifiedLRUPolicy",
    "ReplacementPolicy",
    "ReplicaEntry",
    "SetAssociativeCache",
    "make_policy",
]
