"""One LLC slice: home lines with in-cache directory, plus local replicas.

A slice may hold, for any given line address, *either* the home copy
(:class:`~repro.cache.entries.HomeEntry`, when this core is the line's
home) *or* a replica (:class:`~repro.cache.entries.ReplicaEntry`) — never
both, because the protocol serves requests whose home is local directly
from the home copy (Section 2.2.1).

The slice exposes typed lookups so protocol code reads naturally
(``slice.replica(line)`` / ``slice.home(line)``) and enforces the
either/or invariant on insertion.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.array import SetAssociativeCache
from repro.cache.entries import CacheLine, HomeEntry, ReplicaEntry
from repro.cache.replacement import ReplacementPolicy
from repro.common.params import CacheGeometry


class LLCSlice:
    """The per-core slice of the distributed shared LLC."""

    def __init__(self, core_id: int, geometry: CacheGeometry, policy: ReplacementPolicy) -> None:
        self.core_id = core_id
        self._array = SetAssociativeCache(geometry, policy)

    # -- typed lookups ---------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        return self._array.lookup(line_addr)

    def home(self, line_addr: int) -> Optional[HomeEntry]:
        entry = self._array.lookup(line_addr)
        return entry if isinstance(entry, HomeEntry) else None

    def replica(self, line_addr: int) -> Optional[ReplicaEntry]:
        entry = self._array.lookup(line_addr)
        return entry if isinstance(entry, ReplicaEntry) else None

    def touch(self, entry: CacheLine) -> None:
        self._array.touch(entry)

    # -- modification -----------------------------------------------------------
    def victim_for(self, line_addr: int) -> Optional[CacheLine]:
        """Entry that must be evicted to make room for ``line_addr``."""
        return self._array.victim_for(line_addr)

    def insert(self, entry: CacheLine) -> None:
        """Insert a home or replica entry; the set must have room.

        Raises if the slice already holds an entry of the *other* kind for
        the same line (the protocol must never create that state).
        """
        existing = self._array.lookup(entry.line_addr)
        if existing is not None and type(existing) is not type(entry):
            raise RuntimeError(
                f"slice {self.core_id} holds a {type(existing).__name__} for line "
                f"{entry.line_addr:#x}; cannot insert {type(entry).__name__}"
            )
        self._array.insert(entry)

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        return self._array.remove(line_addr)

    # -- inspection --------------------------------------------------------------
    def __iter__(self) -> Iterator[CacheLine]:
        return iter(self._array)

    def __len__(self) -> int:
        return len(self._array)

    def replica_count(self) -> int:
        return sum(1 for entry in self._array if isinstance(entry, ReplicaEntry))

    def home_count(self) -> int:
        return sum(1 for entry in self._array if isinstance(entry, HomeEntry))

    def utilization(self) -> float:
        return self._array.utilization()

    @property
    def geometry(self) -> CacheGeometry:
        return self._array.geometry
