"""Private L1 instruction/data cache model.

L1 caches are plain LRU set-associative caches holding MESI-stated lines.
They never make coherence decisions themselves: the protocol layer calls
:meth:`insert`, :meth:`invalidate` and :meth:`downgrade` as directed by
the home directory, and handles the victim returned by :meth:`insert`
(an L1 eviction probes the local LLC slice — Section 2.2.3).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.array import SetAssociativeCache
from repro.cache.entries import L1Line
from repro.cache.replacement import LRUPolicy
from repro.common.params import CacheGeometry
from repro.common.types import MESIState


class L1Cache:
    """One private L1 cache (instruction or data)."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self._array = SetAssociativeCache(geometry, LRUPolicy())

    # -- lookups --------------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[L1Line]:
        """Peek without updating LRU state."""
        entry = self._array.lookup(line_addr)
        assert entry is None or isinstance(entry, L1Line)
        return entry

    def probe_hit(self, line_addr: int, write: bool) -> Optional[L1Line]:
        """Return the entry if the access hits with sufficient permission.

        A write against a SHARED copy is *not* a hit (it needs an upgrade
        through the home directory), matching Section 2.2.2.
        """
        entry = self._array.access(line_addr)
        if entry is None:
            return None
        if write and not entry.state.writable:
            return None
        return entry

    # -- modification ---------------------------------------------------------
    def insert(self, line_addr: int, state: MESIState) -> tuple[L1Line, Optional[L1Line]]:
        """Insert (or update) a line; returns ``(entry, evicted_victim)``."""
        existing = self._array.lookup(line_addr)
        if existing is not None:
            existing.state = state
            self._array.touch(existing)
            return existing, None
        victim = self._array.victim_for(line_addr)
        if victim is not None:
            self._array.remove(victim.line_addr)
        entry = L1Line(line_addr, state)
        self._array.insert(entry)
        assert victim is None or isinstance(victim, L1Line)
        return entry, victim

    def invalidate(self, line_addr: int) -> Optional[L1Line]:
        """Remove the line; returns the removed entry (dirty flag intact)."""
        entry = self._array.remove(line_addr)
        assert entry is None or isinstance(entry, L1Line)
        return entry

    def downgrade(self, line_addr: int) -> bool:
        """Drop M/E to S for a read by another core; True if data was dirty."""
        entry = self._array.lookup(line_addr)
        if entry is None:
            return False
        was_dirty = entry.dirty or entry.state == MESIState.MODIFIED
        entry.state = MESIState.SHARED
        entry.dirty = False
        return was_dirty

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._array)

    def __iter__(self):
        return iter(self._array)

    @property
    def geometry(self) -> CacheGeometry:
        return self._array.geometry
