"""Batched-kernel boundary properties, isolated via the stub engine.

The batched kernel may service a run of records in one closure call
*only* inside three boundaries: the next barrier record (``run_stops``),
the scheduling limit (the heap-front core would become globally earliest
— a remote event could interleave), and any record the engine refuses to
batch.  With the fixed-latency stub every event time is exactly
computable and every dispatched access is logged, so a run that crosses
a boundary shows up as a diverging call sequence or statistic against
the reference kernel.  (This simulator has no timer events; barriers and
cross-core earliest switches are the only scheduler arbitration points,
and both are exercised here.)
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType
from repro.sim.kernel import BatchedKernel
from repro.sim.simulator import simulate
from tests.helpers import FixedLatencyEngine, records_trace_set

NUM_CORES = 4

_gap_lists = st.lists(
    st.integers(min_value=0, max_value=40), min_size=0, max_size=10
)


def _records(gaps, base_line=0):
    return [(AccessType.READ, base_line + i, gap) for i, gap in enumerate(gaps)]


class TestBatchingBoundaries:
    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=NUM_CORES, max_size=NUM_CORES),
        barrier_positions=st.lists(
            st.integers(min_value=0, max_value=10), min_size=0, max_size=3
        ),
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_barriers_and_earliest_switches_are_never_crossed(
        self, per_core_gaps, barrier_positions, latency
    ):
        """The batched kernel dispatches the exact reference event
        sequence — same accesses, same order, same issue timestamps —
        for arbitrary gap programs and barrier placements."""
        per_core = []
        for core, gaps in enumerate(per_core_gaps):
            records = _records(gaps, base_line=100 * core)
            for offset, position in enumerate(sorted(barrier_positions)):
                records.insert(
                    min(position + offset, len(records)),
                    (AccessType.BARRIER, 0, 0),
                )
            per_core.append(records)
        traces = records_trace_set(per_core)
        engines = {}
        for kernel in ("reference", "batched"):
            engine = FixedLatencyEngine(NUM_CORES, latency=float(latency))
            simulate(engine, traces, kernel=kernel)
            engines[kernel] = engine
        assert engines["reference"].calls == engines["batched"].calls
        assert (
            engines["reference"].stats.core_finish
            == engines["batched"].stats.core_finish
        )
        assert engines["reference"].stats.latency == engines["batched"].stats.latency
        assert (
            engines["reference"].stats.miss_status
            == engines["batched"].stats.miss_status
        )

    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=NUM_CORES, max_size=NUM_CORES),
        miss_modulus=st.integers(min_value=2, max_value=5),
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_non_batchable_records_fall_back_to_single_stepping(
        self, per_core_gaps, miss_modulus, latency
    ):
        """Records the engine refuses to batch (stub: every line ≡ 0 mod
        ``miss_modulus``) must be single-stepped through access() at the
        reference timestamps — runs stop exactly at the refused record."""
        per_core = [
            _records(gaps, base_line=100 * core)
            for core, gaps in enumerate(per_core_gaps)
        ]
        traces = records_trace_set(per_core)
        miss_lines = frozenset(
            line
            for records in per_core
            for _atype, line, _gap in records
            if line % miss_modulus == 0
        )
        engines = {}
        for kernel in ("reference", "batched"):
            engine = FixedLatencyEngine(
                NUM_CORES, latency=float(latency), batch_miss_lines=miss_lines
            )
            simulate(engine, traces, kernel=kernel)
            engines[kernel] = engine
        assert engines["reference"].calls == engines["batched"].calls
        assert (
            engines["reference"].stats.latency == engines["batched"].stats.latency
        )

    @given(
        gaps=_gap_lists,
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=30, deadline=None)
    def test_lone_core_services_whole_trace_in_runs(self, gaps, latency):
        """With every other core empty the heap drains immediately, the
        scheduling limit is infinite, and the only boundaries left are
        barriers/end-of-trace — the solo core's events must still match
        the reference exactly."""
        per_core = [_records(gaps)] + [[] for _ in range(NUM_CORES - 1)]
        traces = records_trace_set(per_core)
        engines = {}
        for kernel in ("reference", "batched"):
            engine = FixedLatencyEngine(NUM_CORES, latency=float(latency))
            simulate(engine, traces, kernel=kernel)
            engines[kernel] = engine
        assert engines["reference"].calls == engines["batched"].calls
        assert (
            engines["reference"].stats.core_finish
            == engines["batched"].stats.core_finish
        )

    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=NUM_CORES, max_size=NUM_CORES),
        replica_modulus=st.integers(min_value=2, max_value=5),
        latency=st.integers(min_value=1, max_value=9),
        replica_latency=st.integers(min_value=2, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_replica_hits_batch_at_their_own_latency(
        self, per_core_gaps, replica_modulus, latency, replica_latency
    ):
        """Runs mixing L1 hits and constant-latency replica hits (stub:
        every line ≡ 0 mod ``replica_modulus``) must dispatch the exact
        reference event sequence: replica records advance the clock by
        their own latency inside the run, the flush splits hit statuses,
        and scheduling yields land on the same records."""
        per_core = [
            _records(gaps, base_line=100 * core)
            for core, gaps in enumerate(per_core_gaps)
        ]
        traces = records_trace_set(per_core)
        replica_lines = frozenset(
            line
            for records in per_core
            for _atype, line, _gap in records
            if line % replica_modulus == 0
        )
        engines = {}
        for kernel in ("reference", "batched"):
            engine = FixedLatencyEngine(
                NUM_CORES,
                latency=float(latency),
                replica_lines=replica_lines,
                replica_latency=float(replica_latency),
            )
            simulate(engine, traces, kernel=kernel)
            engines[kernel] = engine
        assert engines["reference"].calls == engines["batched"].calls
        assert (
            engines["reference"].stats.core_finish
            == engines["batched"].stats.core_finish
        )
        assert engines["reference"].stats.latency == engines["batched"].stats.latency
        assert (
            engines["reference"].stats.miss_status
            == engines["batched"].stats.miss_status
        )

    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=NUM_CORES, max_size=NUM_CORES),
        replica_modulus=st.integers(min_value=2, max_value=4),
        miss_modulus=st.integers(min_value=3, max_value=5),
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_replica_runs_still_stop_at_non_batchable_records(
        self, per_core_gaps, replica_modulus, miss_modulus, latency
    ):
        """Replica-run boundary events: records the engine refuses (the
        stub's miss lines — misses, upgrades, any replica-state mutation
        in the real engine) end the run exactly there even when the
        surrounding records are replica hits; the refused record
        single-steps through access() at the reference timestamp."""
        per_core = [
            _records(gaps, base_line=100 * core)
            for core, gaps in enumerate(per_core_gaps)
        ]
        traces = records_trace_set(per_core)
        all_lines = [
            line for records in per_core for _atype, line, _gap in records
        ]
        replica_lines = frozenset(
            line for line in all_lines if line % replica_modulus == 0
        )
        miss_lines = frozenset(line for line in all_lines if line % miss_modulus == 0)
        engines = {}
        for kernel in ("reference", "batched"):
            engine = FixedLatencyEngine(
                NUM_CORES,
                latency=float(latency),
                batch_miss_lines=miss_lines,
                replica_lines=replica_lines,
            )
            simulate(engine, traces, kernel=kernel)
            engines[kernel] = engine
        assert engines["reference"].calls == engines["batched"].calls
        assert (
            engines["reference"].stats.miss_status
            == engines["batched"].stats.miss_status
        )

    def test_batched_kernel_actually_batches_on_the_stub(self):
        """Meta-test: the stub engages the batched closure (the kernel
        must not silently fall back to the fast loop), observed via the
        batch margin — a solo core with an empty heap batches all
        records in one run regardless of the margin."""
        engine = FixedLatencyEngine(NUM_CORES, latency=2.0)
        closure_calls = []
        original = engine.make_batched_access

        def counting_maker(charge_gaps=False):
            run_hits = original(charge_gaps=charge_gaps)

            def wrapped(*args):
                closure_calls.append(args[2:4])  # (index, stop)
                return run_hits(*args)

            return wrapped

        engine.make_batched_access = counting_maker
        per_core = [_records([0] * 50)] + [[] for _ in range(NUM_CORES - 1)]
        simulate(engine, records_trace_set(per_core), kernel=BatchedKernel())
        # The first record single-steps (the empty cores still sit in the
        # heap at t=0); once they drain, the rest is one batched run.
        assert any(stop - index >= 49 for index, stop in closure_calls)
