"""Hypothesis property tests for the locality classifiers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import ReplicationMode
from repro.core.classifier import CompleteClassifier, LimitedClassifier

NUM_CORES = 8

events = st.lists(
    st.tuples(
        st.sampled_from(["read", "write_solo", "write_contended",
                         "invalidate", "evict", "reset"]),
        st.integers(min_value=0, max_value=NUM_CORES - 1),
        st.integers(min_value=0, max_value=7),  # replica reuse for inval/evict
    ),
    min_size=1,
    max_size=120,
)


def _apply(classifier, state, sequence):
    for kind, core, reuse in sequence:
        if kind == "read":
            classifier.on_home_read(state, core)
        elif kind == "write_solo":
            classifier.on_home_write(state, core, was_only_sharer=True)
        elif kind == "write_contended":
            classifier.on_home_write(state, core, was_only_sharer=False)
        elif kind == "invalidate":
            classifier.on_invalidation(state, core, reuse)
        elif kind == "evict":
            classifier.on_replica_eviction(state, core, reuse)
        elif kind == "reset":
            classifier.on_write_reset_others(state, core, set(range(NUM_CORES)))
            classifier.mark_inactive_nonreplicas(state, core)


@st.composite
def classifier_and_state(draw):
    rt = draw(st.integers(min_value=1, max_value=4))
    limited = draw(st.booleans())
    if limited:
        k = draw(st.integers(min_value=1, max_value=4))
        classifier = LimitedClassifier(NUM_CORES, rt, max(3, rt), k=k)
    else:
        classifier = CompleteClassifier(NUM_CORES, rt, max(3, rt))
    return classifier, classifier.new_state()


class TestClassifierInvariants:
    @given(setup=classifier_and_state(), sequence=events)
    @settings(max_examples=150, deadline=None)
    def test_counters_bounded(self, setup, sequence):
        classifier, state = setup
        _apply(classifier, state, sequence)
        for core in range(NUM_CORES):
            assert 0 <= state.home_reuse(core) <= classifier.counter_max

    @given(setup=classifier_and_state(), sequence=events)
    @settings(max_examples=150, deadline=None)
    def test_modes_are_valid(self, setup, sequence):
        classifier, state = setup
        _apply(classifier, state, sequence)
        for core in range(NUM_CORES):
            assert state.mode(core) in (ReplicationMode.REPLICA,
                                        ReplicationMode.NON_REPLICA)

    @given(setup=classifier_and_state(), sequence=events)
    @settings(max_examples=150, deadline=None)
    def test_limited_tracks_at_most_k(self, setup, sequence):
        classifier, state = setup
        if not isinstance(classifier, LimitedClassifier):
            return
        _apply(classifier, state, sequence)
        assert len(state.slots) <= classifier.k
        tracked = [slot.core for slot in state.slots]
        assert len(tracked) == len(set(tracked))  # no duplicate slots

    @given(sequence=events)
    @settings(max_examples=100, deadline=None)
    def test_rt1_read_always_replicates(self, sequence):
        """With RT=1, any read at the home grants replication."""
        classifier = CompleteClassifier(NUM_CORES, rt=1, counter_max=3)
        state = classifier.new_state()
        _apply(classifier, state, sequence)
        assert classifier.on_home_read(state, 0) is True

    @given(setup=classifier_and_state(), sequence=events)
    @settings(max_examples=100, deadline=None)
    def test_promotion_requires_rt_events(self, setup, sequence):
        """A core never reaches replica mode with fewer home events than
        RT (for the Complete classifier, which cannot inherit by vote)."""
        classifier, state = setup
        if isinstance(classifier, LimitedClassifier):
            return
        home_events = {}
        for kind, core, _reuse in sequence:
            if kind in ("read", "write_solo", "write_contended"):
                home_events[core] = home_events.get(core, 0) + 1
        _apply(classifier, state, sequence)
        for core in range(NUM_CORES):
            if state.mode(core) == ReplicationMode.REPLICA:
                assert home_events.get(core, 0) >= classifier.rt
