"""Hypothesis property tests for workload generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import MachineConfig
from repro.common.types import AccessType, LineClass
from repro.workloads.benchmarks import BENCHMARK_ORDER, build_trace, get_profile

benchmark_names = st.sampled_from(BENCHMARK_ORDER)
seeds = st.integers(min_value=0, max_value=2**16)


class TestTraceProperties:
    @given(name=benchmark_names, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_all_lines_belong_to_regions(self, name, seed):
        config = MachineConfig.tiny()
        traces = build_trace(get_profile(name), config, scale=0.02, seed=seed)
        for trace in traces.cores:
            for line, atype in zip(trace.lines, trace.types):
                if atype == AccessType.BARRIER:
                    continue
                traces.classify(int(line))  # must not raise

    @given(name=benchmark_names, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_instruction_accesses_never_write(self, name, seed):
        config = MachineConfig.tiny()
        traces = build_trace(get_profile(name), config, scale=0.02, seed=seed)
        for trace in traces.cores:
            for line, atype in zip(trace.lines, trace.types):
                if atype == AccessType.WRITE:
                    line_class = traces.classify(int(line))
                    assert line_class != LineClass.INSTRUCTION
                    assert line_class != LineClass.SHARED_RO

    @given(name=benchmark_names, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_regions_disjoint(self, name, seed):
        config = MachineConfig.tiny()
        traces = build_trace(get_profile(name), config, scale=0.02, seed=seed)
        spans = sorted(
            (region.base, region.end) for region, _cls in traces.regions
        )
        for (base_a, end_a), (base_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= base_b

    @given(name=benchmark_names, seed=seeds, scale=st.floats(0.01, 0.05))
    @settings(max_examples=15, deadline=None)
    def test_same_inputs_same_trace(self, name, seed, scale):
        import numpy as np
        config = MachineConfig.tiny()
        first = build_trace(get_profile(name), config, scale=scale, seed=seed)
        second = build_trace(get_profile(name), config, scale=scale, seed=seed)
        for trace_a, trace_b in zip(first.cores, second.cores):
            assert np.array_equal(trace_a.lines, trace_b.lines)
            assert np.array_equal(trace_a.types, trace_b.types)
            assert np.array_equal(trace_a.gaps, trace_b.gaps)

    @given(name=benchmark_names)
    @settings(max_examples=21, deadline=None)
    def test_access_mix_roughly_matches_profile(self, name):
        import numpy as np
        config = MachineConfig.small()
        profile = get_profile(name)
        traces = build_trace(profile, config, scale=0.5, seed=0)
        total = 0
        ifetch = 0
        for trace in traces.cores:
            mask = trace.types != AccessType.BARRIER
            total += int(mask.sum())
            ifetch += int((trace.types == AccessType.IFETCH).sum())
        observed = ifetch / total
        assert abs(observed - profile.f_ifetch) < 0.05
