"""Hypothesis property tests: coherence invariants under random traffic.

Every LLC management scheme must preserve the machine-wide invariants
(single writer, inclusion, directory accuracy) for *any* access
sequence.  Hypothesis drives random multi-core read/write/ifetch mixes
through each engine on the tiny machine and checks after every burst.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import MachineConfig
from repro.common.types import AccessType
from repro.schemes.factory import make_scheme
from tests.helpers import check_coherence

SCHEMES = ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-1", "RT-3")

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),           # core
        st.sampled_from([AccessType.READ, AccessType.WRITE]),
        st.integers(min_value=0, max_value=47),          # data line
    ),
    min_size=1,
    max_size=150,
)

ifetches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=256, max_value=271),       # instruction lines
    ),
    max_size=30,
)


class TestCoherenceUnderRandomTraffic:
    @given(scheme=st.sampled_from(SCHEMES), sequence=accesses)
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, scheme, sequence):
        engine = make_scheme(scheme, MachineConfig.tiny())
        now = 0.0
        for core, atype, line in sequence:
            engine.access(core, atype, line, now)
            now += 50.0
        assert check_coherence(engine) == []

    @given(sequence=accesses, instruction_sequence=ifetches)
    @settings(max_examples=40, deadline=None)
    def test_mixed_data_and_instructions(self, sequence, instruction_sequence):
        engine = make_scheme("RT-1", MachineConfig.tiny())
        now = 0.0
        for core, atype, line in sequence:
            engine.access(core, atype, line, now)
            now += 50.0
        for core, line in instruction_sequence:
            engine.access(core, AccessType.IFETCH, line, now)
            now += 50.0
        assert check_coherence(engine) == []

    @given(sequence=accesses)
    @settings(max_examples=30, deadline=None)
    def test_latencies_positive_and_finite(self, sequence):
        engine = make_scheme("RT-3", MachineConfig.tiny())
        now = 0.0
        for core, atype, line in sequence:
            result = engine.access(core, atype, line, now)
            assert result.latency >= 1.0
            assert result.latency < 1e7
            now += 50.0

    @given(sequence=accesses)
    @settings(max_examples=30, deadline=None)
    def test_read_after_write_semantics(self, sequence):
        """After a core writes a line, its own immediate re-read hits L1
        in a writable state (no lost updates in the hierarchy)."""
        engine = make_scheme("RT-1", MachineConfig.tiny())
        now = 0.0
        for core, atype, line in sequence:
            engine.access(core, atype, line, now)
            now += 50.0
            if atype == AccessType.WRITE:
                entry = engine.l1d[core].lookup(line)
                assert entry is not None
                assert entry.state.writable

    @given(sequence=accesses)
    @settings(max_examples=30, deadline=None)
    def test_miss_accounting_conserved(self, sequence):
        engine = make_scheme("VR", MachineConfig.tiny())
        now = 0.0
        for core, atype, line in sequence:
            engine.access(core, atype, line, now)
            now += 50.0
        stats = engine.stats
        l1_misses = stats.counters["l1d_misses"] + stats.counters["l1i_misses"]
        assert (
            stats.counters.get("llc_replica_hits", 0)
            + stats.counters.get("llc_home_hits", 0)
            + stats.counters.get("offchip_misses", 0)
            == l1_misses
        )
