"""Vector-kernel boundary properties, isolated via the stub engine.

The vector kernel services array-at-a-time spans of hit records, but it
must respect exactly the boundaries the batched kernel does: the next
barrier record (``run_stops``), the scheduling limit (the heap-front
core would become globally earliest), and any record the engine refuses
to vectorize (which delegates to the batched closure, then to
single-stepping).  With the fixed-latency stub every event time is
exactly computable and every dispatched access is logged, so a span
that crosses a boundary — or reconciles its statistics flush against
the wrong record range — shows up as a diverging call sequence or
statistic against the reference kernel.

The stub's spans replay the clock with the same interleaved-increment
``np.cumsum`` the real engine uses, so these properties also pin the
bit-exactness of the vectorized time chain (including fractional
``now`` values left behind by odd latencies).  A final property runs
the real protocol engine on write-heavy traces, covering the span
commit's MODIFIED/dirty transitions and the dirty-eviction fold-in on
the runs between spans.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType
from repro.sim.kernel import VectorKernel
from repro.sim.simulator import simulate
from tests.helpers import FixedLatencyEngine, records_trace_set

NUM_CORES = 4

_gap_lists = st.lists(
    st.integers(min_value=0, max_value=40), min_size=0, max_size=10
)

_long_gap_lists = st.lists(
    st.integers(min_value=0, max_value=6), min_size=30, max_size=80
)


def _records(gaps, base_line=0):
    return [(AccessType.READ, base_line + i, gap) for i, gap in enumerate(gaps)]


def _run_pair(traces, **engine_kwargs):
    engines = {}
    for kernel in ("reference", "vector"):
        engine = FixedLatencyEngine(NUM_CORES, **engine_kwargs)
        simulate(engine, traces, kernel=kernel)
        engines[kernel] = engine
    return engines["reference"], engines["vector"]


class TestVectorBoundaries:
    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=NUM_CORES, max_size=NUM_CORES),
        barrier_positions=st.lists(
            st.integers(min_value=0, max_value=10), min_size=0, max_size=3
        ),
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_barriers_and_earliest_switches_are_never_crossed(
        self, per_core_gaps, barrier_positions, latency
    ):
        """Spans dispatch the exact reference event sequence — same
        accesses, same order, same issue timestamps — for arbitrary gap
        programs and barrier placements (segment boundaries)."""
        per_core = []
        for core, gaps in enumerate(per_core_gaps):
            records = _records(gaps, base_line=100 * core)
            for offset, position in enumerate(sorted(barrier_positions)):
                records.insert(
                    min(position + offset, len(records)),
                    (AccessType.BARRIER, 0, 0),
                )
            per_core.append(records)
        traces = records_trace_set(per_core)
        reference, vector = _run_pair(traces, latency=float(latency))
        assert reference.calls == vector.calls
        assert reference.stats.core_finish == vector.stats.core_finish
        assert reference.stats.latency == vector.stats.latency
        assert reference.stats.miss_status == vector.stats.miss_status

    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=NUM_CORES, max_size=NUM_CORES),
        miss_modulus=st.integers(min_value=2, max_value=5),
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_refused_records_end_spans_and_single_step(
        self, per_core_gaps, miss_modulus, latency
    ):
        """Records the engine refuses (stub: every line ≡ 0 mod
        ``miss_modulus``) end the span exactly there and single-step
        through access() at the reference timestamps."""
        per_core = [
            _records(gaps, base_line=100 * core)
            for core, gaps in enumerate(per_core_gaps)
        ]
        traces = records_trace_set(per_core)
        miss_lines = frozenset(
            line
            for records in per_core
            for _atype, line, _gap in records
            if line % miss_modulus == 0
        )
        reference, vector = _run_pair(
            traces, latency=float(latency), batch_miss_lines=miss_lines
        )
        assert reference.calls == vector.calls
        assert reference.stats.latency == vector.stats.latency

    @given(
        gaps=_long_gap_lists,
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=30, deadline=None)
    def test_lone_core_services_whole_trace_in_spans(self, gaps, latency):
        """With every other core empty the scheduling limit is infinite
        (the span planner's no-truncation fast path) and the only
        boundaries left are barriers/end-of-trace — the solo core's
        events and finish time must still match the reference."""
        per_core = [_records(gaps)] + [[] for _ in range(NUM_CORES - 1)]
        traces = records_trace_set(per_core)
        reference, vector = _run_pair(traces, latency=float(latency))
        assert reference.calls == vector.calls
        assert reference.stats.core_finish == vector.stats.core_finish

    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=NUM_CORES, max_size=NUM_CORES),
        replica_modulus=st.integers(min_value=2, max_value=5),
        latency=st.integers(min_value=1, max_value=9),
        replica_latency=st.integers(min_value=2, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_replica_hits_delegate_to_the_batched_closure(
        self, per_core_gaps, replica_modulus, latency, replica_latency
    ):
        """Replica hits are not span material — they delegate to the
        batched closure mid-stream, and the combined statistics flush
        (span L1 hits + delegated replica hits) must reconcile to the
        reference totals with the same yield points."""
        per_core = [
            _records(gaps, base_line=100 * core)
            for core, gaps in enumerate(per_core_gaps)
        ]
        traces = records_trace_set(per_core)
        replica_lines = frozenset(
            line
            for records in per_core
            for _atype, line, _gap in records
            if line % replica_modulus == 0
        )
        reference, vector = _run_pair(
            traces,
            latency=float(latency),
            replica_lines=replica_lines,
            replica_latency=float(replica_latency),
        )
        assert reference.calls == vector.calls
        assert reference.stats.core_finish == vector.stats.core_finish
        assert reference.stats.latency == vector.stats.latency
        assert reference.stats.miss_status == vector.stats.miss_status

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        write_share=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=15, deadline=None)
    def test_real_engine_spans_commit_writes_and_dirty_evictions(
        self, seed, write_share
    ):
        """Real-engine property: write-heavy traces over a working set
        slightly larger than the L1 exercise the span commit's
        MODIFIED/dirty transitions and the dirty-eviction fold-in on
        the miss runs between spans — full SimStats must stay
        bit-identical to the reference."""
        import numpy as np

        from repro.common.params import MachineConfig
        from repro.schemes.factory import make_scheme
        from repro.testing.differential import assert_stats_equal

        config = MachineConfig.tiny()
        rng = np.random.default_rng(seed)
        hot_lines = max(4, config.l1d.lines // 2)  # fits: span material
        overflow_lines = config.l1d.lines + config.l1d.ways  # evicts
        per_core = []
        for core in range(config.num_cores):
            records = []
            for _block in range(3):
                # Hot sweep: pure L1 hits after warmup, long enough for
                # the real engine's minimum span, with writes dirtying
                # lines in-span.
                for i in range(60):
                    line = 512 * core + i % hot_lines
                    atype = (
                        AccessType.WRITE
                        if rng.random() < write_share
                        else AccessType.READ
                    )
                    records.append((atype, line, int(rng.integers(0, 2))))
                # Overflow churn: conflict misses evict dirty hot lines,
                # folding dirty evictions into the runs between spans.
                for _ in range(25):
                    line = 512 * core + int(rng.integers(0, overflow_lines))
                    atype = (
                        AccessType.WRITE
                        if rng.random() < write_share
                        else AccessType.READ
                    )
                    records.append((atype, line, int(rng.integers(0, 3))))
            per_core.append(records)
        traces = records_trace_set(per_core)
        baseline = simulate(
            make_scheme("Locality", config), traces, kernel="reference"
        )
        vector = simulate(make_scheme("Locality", config), traces, kernel="vector")
        assert_stats_equal(baseline, vector, context="write-heavy vector spans")

    def test_vector_kernel_actually_vectorizes_on_the_stub(self):
        """Meta-test: the stub engages the vector closure with full-run
        spans (the kernel must not silently fall back to batched) —
        a solo core with an empty heap spans all records at once."""
        engine = FixedLatencyEngine(NUM_CORES, latency=2.0)
        closure_calls = []
        original = engine.make_vector_access

        def counting_maker(charge_gaps=False):
            run_vector = original(charge_gaps=charge_gaps)

            def wrapped(*args):
                closure_calls.append(args[2:4])  # (index, stop)
                return run_vector(*args)

            return wrapped

        engine.make_vector_access = counting_maker
        per_core = [_records([0] * 50)] + [[] for _ in range(NUM_CORES - 1)]
        simulate(engine, records_trace_set(per_core), kernel=VectorKernel())
        assert any(stop - index >= 49 for index, stop in closure_calls)
