"""Hypothesis invariants specific to each replication scheme."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.entries import ReplicaEntry
from repro.common.params import MachineConfig
from repro.common.types import AccessType, MESIState
from repro.schemes.asr import ASRScheme
from repro.schemes.locality import LocalityAwareScheme
from repro.schemes.victim import VictimReplicationScheme

traffic = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.sampled_from([AccessType.READ, AccessType.WRITE]),
        st.integers(min_value=0, max_value=47),
    ),
    min_size=5,
    max_size=150,
)


def _run(engine, sequence):
    now = 0.0
    for core, atype, line in sequence:
        engine.access(core, atype, line, now)
        now += 50.0
    return engine


class TestVictimReplicationInvariants:
    @given(sequence=traffic)
    @settings(max_examples=50, deadline=None)
    def test_exclusive_l1_slice_relation(self, sequence):
        """VR never holds a line in the L1 and the local replica at once."""
        engine = _run(VictimReplicationScheme(MachineConfig.tiny()), sequence)
        for core in range(4):
            for entry in engine.slices[core]:
                if isinstance(entry, ReplicaEntry):
                    assert engine.l1d[core].lookup(entry.line_addr) is None
                    assert engine.l1i[core].lookup(entry.line_addr) is None

    @given(sequence=traffic)
    @settings(max_examples=50, deadline=None)
    def test_no_replica_of_local_home(self, sequence):
        """VR never places a victim whose home is the local slice."""
        engine = _run(VictimReplicationScheme(MachineConfig.tiny()), sequence)
        for core in range(4):
            for entry in engine.slices[core]:
                if isinstance(entry, ReplicaEntry):
                    assert entry.line_addr % 4 != core


class TestASRInvariants:
    @given(sequence=traffic)
    @settings(max_examples=50, deadline=None)
    def test_replicas_always_shared_state(self, sequence):
        """ASR replicas are S-state only (shared read-only data)."""
        engine = _run(
            ASRScheme(MachineConfig.tiny(), replication_level=1.0), sequence
        )
        for core in range(4):
            for entry in engine.slices[core]:
                if isinstance(entry, ReplicaEntry):
                    assert entry.state == MESIState.SHARED

    @given(sequence=traffic)
    @settings(max_examples=50, deadline=None)
    def test_replicated_lines_never_written(self, sequence):
        """No line with an ASR replica has ever taken a write request."""
        engine = _run(
            ASRScheme(MachineConfig.tiny(), replication_level=1.0), sequence
        )
        for core in range(4):
            for entry in engine.slices[core]:
                if isinstance(entry, ReplicaEntry):
                    assert entry.line_addr not in engine._written


class TestLocalityInvariants:
    @given(sequence=traffic, rt=st.sampled_from([1, 2, 3]))
    @settings(max_examples=50, deadline=None)
    def test_replica_implies_sharer(self, sequence, rt):
        """Every replica's core is tracked as a sharer at a live home."""
        engine = _run(
            LocalityAwareScheme(MachineConfig.tiny(replication_threshold=rt)),
            sequence,
        )
        for core in range(4):
            for entry in engine.slices[core]:
                if not isinstance(entry, ReplicaEntry):
                    continue
                home = engine._home_of_cached_line(core, entry.line_addr)
                home_entry = engine.slices[home].home(entry.line_addr)
                assert home_entry is not None
                assert core in home_entry.sharers.members()

    @given(sequence=traffic)
    @settings(max_examples=50, deadline=None)
    def test_replica_reuse_counter_bounds(self, sequence):
        engine = _run(
            LocalityAwareScheme(MachineConfig.tiny(replication_threshold=3)),
            sequence,
        )
        for core in range(4):
            for entry in engine.slices[core]:
                if isinstance(entry, ReplicaEntry):
                    assert 1 <= entry.reuse.value <= engine.reuse_max

    @given(sequence=traffic)
    @settings(max_examples=50, deadline=None)
    def test_no_replica_colocated_with_home(self, sequence):
        """A slice never holds a replica of a line it is the home of."""
        engine = _run(
            LocalityAwareScheme(MachineConfig.tiny(replication_threshold=1)),
            sequence,
        )
        for core in range(4):
            for entry in engine.slices[core]:
                if isinstance(entry, ReplicaEntry):
                    home = engine._home_of_cached_line(core, entry.line_addr)
                    assert home != core
