"""Hypothesis property tests for the mesh and sharer trackers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.sharers import AckwiseSharers, FullMapSharers
from repro.common.params import MachineConfig
from repro.network.mesh import Mesh
from repro.network.topology import MeshTopology


class TestTopologyProperties:
    @given(
        src=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100, deadline=None)
    def test_route_length_is_manhattan_distance(self, src, dst):
        mesh = MeshTopology(64)
        assert len(list(mesh.route(src, dst))) == mesh.hops(src, dst)

    @given(
        src=st.integers(min_value=0, max_value=63),
        mid=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, src, mid, dst):
        mesh = MeshTopology(64)
        assert mesh.hops(src, dst) <= mesh.hops(src, mid) + mesh.hops(mid, dst)


class TestMeshProperties:
    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
        flits=st.integers(min_value=1, max_value=9),
        depart=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_arrival_never_before_departure(self, src, dst, flits, depart):
        mesh = Mesh(MachineConfig.small())
        arrival = mesh.send(src, dst, flits, depart)
        assert arrival >= depart

    @given(
        sends=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=1, max_value=9),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_latency_at_least_unloaded(self, sends):
        mesh = Mesh(MachineConfig.small())
        now = 0.0
        for src, dst, flits in sends:
            arrival = mesh.send(src, dst, flits, now)
            assert arrival - now >= mesh.unloaded_latency(src, dst, flits) - 1e-9
            now += 1.0


class TestSharerProperties:
    operations = st.lists(
        st.tuples(st.sampled_from(["add", "remove"]),
                  st.integers(min_value=0, max_value=15)),
        max_size=80,
    )

    @given(pointers=st.integers(min_value=1, max_value=6), ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_ackwise_count_matches_members(self, pointers, ops):
        sharers = AckwiseSharers(pointers)
        reference = set()
        for op, core in ops:
            if op == "add":
                sharers.add(core)
                reference.add(core)
            else:
                sharers.remove(core)
                reference.discard(core)
        assert sharers.members() == reference
        assert sharers.count == len(reference)

    @given(pointers=st.integers(min_value=1, max_value=6), ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_ackwise_precise_implies_pointers_match(self, pointers, ops):
        sharers = AckwiseSharers(pointers)
        for op, core in ops:
            if op == "add":
                sharers.add(core)
            else:
                sharers.remove(core)
            if sharers.precise:
                assert sharers.pointers() == sharers.members()
            else:
                assert sharers.count > 0

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_invalidation_targets_cover_members(self, ops):
        sharers = AckwiseSharers(2)
        for op, core in ops:
            if op == "add":
                sharers.add(core)
            else:
                sharers.remove(core)
        targets = set(sharers.invalidation_targets(num_cores=16))
        assert sharers.members() <= targets

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_fullmap_always_precise(self, ops):
        sharers = FullMapSharers()
        for op, core in ops:
            if op == "add":
                sharers.add(core)
            else:
                sharers.remove(core)
        assert sharers.precise
