"""Hypothesis property tests at the whole-simulation level."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import MachineConfig
from repro.common.types import AccessType
from repro.schemes.factory import make_scheme
from repro.sim import stats as stat_names
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import BenchmarkProfile, build_trace
from tests.helpers import FixedLatencyEngine, records_trace_set

class TestWholeSimulationProperties:
    @given(
        f_ifetch=st.sampled_from([0.0, 0.1]),
        shared_rw_pattern=st.sampled_from(["loop", "stream"]),
        write_frac=st.sampled_from([0.0, 0.3]),
        barriers=st.sampled_from([0, 2]),
        scheme=st.sampled_from(["S-NUCA", "R-NUCA", "VR", "RT-1", "RT-3"]),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_progress(
        self, f_ifetch, shared_rw_pattern, write_frac, barriers, scheme, seed
    ):
        profile = BenchmarkProfile(
            name="SYNTH",
            description="hypothesis-generated",
            f_ifetch=f_ifetch,
            f_private=0.4,
            f_shared_ro=0.2,
            f_shared_rw=0.4 - f_ifetch,
            shared_rw_pattern=shared_rw_pattern,
            write_frac_rw=write_frac,
            accesses_per_core=120,
            barriers=barriers,
        )
        config = MachineConfig.tiny()
        traces = build_trace(profile, config, scale=1.0, seed=seed)
        stats = simulate(make_scheme(scheme, config), traces)
        # Every access processed exactly once.
        assert sum(stats.miss_status.values()) == traces.total_accesses()
        # Conservation of miss servicing.
        l1_misses = stats.counters["l1d_misses"] + stats.counters["l1i_misses"]
        assert (
            stats.counters.get("llc_replica_hits", 0)
            + stats.counters.get("llc_home_hits", 0)
            + stats.counters.get("offchip_misses", 0)
            == l1_misses
        )
        # Time advances and every core finished.
        assert stats.completion_time > 0
        assert all(finish > 0 for finish in stats.core_finish)
        # Energy counters are all non-negative.
        assert all(value >= 0 for value in stats.energy_counts.values())

    @given(seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=10, deadline=None)
    def test_two_identical_runs_agree(self, seed):
        profile = BenchmarkProfile(
            name="SYNTH", description="determinism probe",
            f_ifetch=0.05, f_private=0.45, f_shared_ro=0.2, f_shared_rw=0.3,
            accesses_per_core=100, barriers=1,
        )
        config = MachineConfig.tiny()
        traces = build_trace(profile, config, scale=1.0, seed=seed)
        first = simulate(make_scheme("RT-3", config), traces)
        second = simulate(
            make_scheme("RT-3", config),
            build_trace(profile, config, scale=1.0, seed=seed),
        )
        assert first.completion_time == second.completion_time
        assert first.counters == second.counters


#: Per-core record programs for the event-loop properties: a list of
#: compute gaps, one access per gap (line addresses are irrelevant to
#: the stub engine's fixed latency).
_gap_lists = st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=6)


class TestEventLoopProperties:
    """Kernel scheduling properties, isolated via a fixed-latency engine."""

    NUM_CORES = 4

    def _access_records(self, gaps, base_line=0):
        return [(AccessType.READ, base_line + i, gap) for i, gap in enumerate(gaps)]

    @given(
        per_core_gaps=st.lists(_gap_lists, min_size=4, max_size=4),
        with_barrier=st.booleans(),
        latency=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_kernels_dispatch_identical_event_sequences(
        self, per_core_gaps, with_barrier, latency
    ):
        """Heap ordering: both kernels issue the same accesses, in the
        same global order, at the same timestamps."""
        barrier = [(AccessType.BARRIER, 0, 0)] if with_barrier else []
        per_core = [
            self._access_records(gaps[: len(gaps) // 2], base_line=100 * core)
            + barrier
            + self._access_records(gaps[len(gaps) // 2:], base_line=100 * core + 50)
            for core, gaps in enumerate(per_core_gaps)
        ]
        traces = records_trace_set(per_core)
        engines = {}
        for kernel in ("reference", "fast"):
            engine = FixedLatencyEngine(self.NUM_CORES, latency=float(latency))
            simulate(engine, traces, kernel=kernel)
            engines[kernel] = engine
        assert engines["reference"].calls == engines["fast"].calls
        assert (
            engines["reference"].stats.core_finish == engines["fast"].stats.core_finish
        )
        assert engines["reference"].stats.latency == engines["fast"].stats.latency
        # In-order cores: each core's issue times advance by at least the
        # access latency between consecutive accesses.
        for core in range(self.NUM_CORES):
            issues = [call[3] for call in engines["fast"].calls if call[0] == core]
            assert all(
                later - earlier >= latency
                for earlier, later in zip(issues, issues[1:])
            )

    @given(
        entry_gaps=st.lists(
            st.integers(min_value=0, max_value=200), min_size=4, max_size=4
        ),
        tail_gaps=st.lists(
            st.integers(min_value=0, max_value=50) | st.none(), min_size=4, max_size=4
        ),
        latency=st.integers(min_value=1, max_value=9),
        kernel=st.sampled_from(["reference", "fast"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_barrier_release_charges_exact_wait(
        self, entry_gaps, tail_gaps, latency, kernel
    ):
        """Synchronization == sum over cores of (release_time - arrival),
        with arrival and release exactly computable under fixed latency."""
        per_core = []
        for core, (gap, tail) in enumerate(zip(entry_gaps, tail_gaps)):
            records = [
                (AccessType.READ, 100 * core, gap),
                (AccessType.BARRIER, 0, 0),
            ]
            if tail is not None:
                records.append((AccessType.READ, 100 * core + 1, tail))
            per_core.append(records)
        engine = FixedLatencyEngine(self.NUM_CORES, latency=float(latency))
        stats = simulate(engine, records_trace_set(per_core), kernel=kernel)

        arrivals = [gap + latency for gap in entry_gaps]
        release = max(arrivals)
        expected_sync = float(sum(release - arrival for arrival in arrivals))
        assert stats.latency[stat_names.SYNCHRONIZATION] == expected_sync

        expected_finish = [
            release + (tail + latency if tail is not None else 0)
            for tail in tail_gaps
        ]
        assert stats.core_finish == [float(finish) for finish in expected_finish]
        assert stats.completion_time == max(expected_finish)

        expected_compute = float(
            sum(entry_gaps) + sum(tail for tail in tail_gaps if tail)
        )
        assert stats.latency[stat_names.COMPUTE] == expected_compute

    @given(
        active=st.lists(st.booleans(), min_size=4, max_size=4),
        kernel=st.sampled_from(["reference", "fast"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_finished_core_accounting(self, active, kernel):
        """Every core gets a finish time; empty traces finish at t=0 and
        the completion time is the max over cores."""
        per_core = [
            self._access_records([3, 2], base_line=100 * core) if is_active else []
            for core, is_active in enumerate(active)
        ]
        engine = FixedLatencyEngine(self.NUM_CORES, latency=4.0)
        stats = simulate(engine, records_trace_set(per_core), kernel=kernel)
        assert len(stats.core_finish) == self.NUM_CORES
        for core, is_active in enumerate(active):
            if is_active:
                assert stats.core_finish[core] == 3 + 4 + 2 + 4
            else:
                assert stats.core_finish[core] == 0.0
        assert stats.completion_time == max(stats.core_finish)
        assert len(engine.calls) == 2 * sum(active)
