"""Hypothesis property tests at the whole-simulation level."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import MachineConfig
from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import BenchmarkProfile, build_trace

class TestWholeSimulationProperties:
    @given(
        f_ifetch=st.sampled_from([0.0, 0.1]),
        shared_rw_pattern=st.sampled_from(["loop", "stream"]),
        write_frac=st.sampled_from([0.0, 0.3]),
        barriers=st.sampled_from([0, 2]),
        scheme=st.sampled_from(["S-NUCA", "R-NUCA", "VR", "RT-1", "RT-3"]),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_progress(
        self, f_ifetch, shared_rw_pattern, write_frac, barriers, scheme, seed
    ):
        profile = BenchmarkProfile(
            name="SYNTH",
            description="hypothesis-generated",
            f_ifetch=f_ifetch,
            f_private=0.4,
            f_shared_ro=0.2,
            f_shared_rw=0.4 - f_ifetch,
            shared_rw_pattern=shared_rw_pattern,
            write_frac_rw=write_frac,
            accesses_per_core=120,
            barriers=barriers,
        )
        config = MachineConfig.tiny()
        traces = build_trace(profile, config, scale=1.0, seed=seed)
        stats = simulate(make_scheme(scheme, config), traces)
        # Every access processed exactly once.
        assert sum(stats.miss_status.values()) == traces.total_accesses()
        # Conservation of miss servicing.
        l1_misses = stats.counters["l1d_misses"] + stats.counters["l1i_misses"]
        assert (
            stats.counters.get("llc_replica_hits", 0)
            + stats.counters.get("llc_home_hits", 0)
            + stats.counters.get("offchip_misses", 0)
            == l1_misses
        )
        # Time advances and every core finished.
        assert stats.completion_time > 0
        assert all(finish > 0 for finish in stats.core_finish)
        # Energy counters are all non-negative.
        assert all(value >= 0 for value in stats.energy_counts.values())

    @given(seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=10, deadline=None)
    def test_two_identical_runs_agree(self, seed):
        profile = BenchmarkProfile(
            name="SYNTH", description="determinism probe",
            f_ifetch=0.05, f_private=0.45, f_shared_ro=0.2, f_shared_rw=0.3,
            accesses_per_core=100, barriers=1,
        )
        config = MachineConfig.tiny()
        traces = build_trace(profile, config, scale=1.0, seed=seed)
        first = simulate(make_scheme("RT-3", config), traces)
        second = simulate(
            make_scheme("RT-3", config),
            build_trace(profile, config, scale=1.0, seed=seed),
        )
        assert first.completion_time == second.completion_time
        assert first.counters == second.counters
