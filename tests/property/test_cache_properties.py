"""Hypothesis property tests for the cache substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import SetAssociativeCache
from repro.cache.entries import CacheLine
from repro.cache.replacement import LRUPolicy, ModifiedLRUPolicy
from repro.common.params import CacheGeometry
from repro.common.types import MESIState

geometries = st.sampled_from([
    CacheGeometry(sets=2, ways=1),
    CacheGeometry(sets=2, ways=2),
    CacheGeometry(sets=4, ways=2),
    CacheGeometry(sets=8, ways=4),
    CacheGeometry(sets=4, ways=2, index_shift=2),
])

address_streams = st.lists(st.integers(min_value=0, max_value=255),
                           min_size=1, max_size=200)


def _fill(cache, addresses):
    """Reference insertion procedure with correct eviction."""
    for address in addresses:
        if cache.lookup(address) is not None:
            cache.access(address)
            continue
        victim = cache.victim_for(address)
        if victim is not None:
            cache.remove(victim.line_addr)
        cache.insert(CacheLine(address, MESIState.SHARED))


class TestCapacityInvariants:
    @given(geometry=geometries, addresses=address_streams)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_ways(self, geometry, addresses):
        cache = SetAssociativeCache(geometry, LRUPolicy())
        _fill(cache, addresses)
        for set_index in range(geometry.sets):
            assert cache.set_occupancy(set_index) <= geometry.ways

    @given(geometry=geometries, addresses=address_streams)
    @settings(max_examples=60, deadline=None)
    def test_resident_lines_subset_of_inserted(self, geometry, addresses):
        cache = SetAssociativeCache(geometry, LRUPolicy())
        _fill(cache, addresses)
        resident = {entry.line_addr for entry in cache}
        assert resident <= set(addresses)

    @given(geometry=geometries, addresses=address_streams)
    @settings(max_examples=60, deadline=None)
    def test_lines_reside_in_their_set(self, geometry, addresses):
        cache = SetAssociativeCache(geometry, ModifiedLRUPolicy())
        _fill(cache, addresses)
        for set_index in range(geometry.sets):
            cache_set = cache._sets[set_index]
            for address in cache_set:
                assert geometry.set_index(address) == set_index


class TestLRUProperty:
    @given(addresses=st.lists(st.integers(min_value=0, max_value=15),
                              min_size=3, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_most_recent_line_survives(self, addresses):
        """The line touched last is never the next victim."""
        geometry = CacheGeometry(sets=1, ways=4)
        cache = SetAssociativeCache(geometry, LRUPolicy())
        _fill(cache, addresses)
        last = addresses[-1]
        victim = cache.victim_for(9999)  # some new line
        if victim is not None:
            assert victim.line_addr != last


class TestSetIndexProperties:
    @given(
        shift=st.integers(min_value=0, max_value=6),
        line=st.integers(min_value=0, max_value=2**40),
    )
    @settings(max_examples=100, deadline=None)
    def test_index_in_range(self, shift, line):
        geometry = CacheGeometry(sets=64, ways=4, index_shift=shift)
        assert 0 <= geometry.set_index(line) < 64

    @given(line=st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_index_deterministic(self, line):
        geometry = CacheGeometry(sets=32, ways=4, index_shift=4)
        assert geometry.set_index(line) == geometry.set_index(line)
