"""Smoke tests on the full 64-core Table 1 machine.

Short traces keep these fast; they verify the paper-scale configuration
(8x8 mesh, 8 controllers, 4096-entry slices) drives every scheme without
structural issues, and that the mesh math matches closed forms.
"""

import pytest

from repro.common.params import MachineConfig
from repro.network.topology import MeshTopology
from repro.schemes.factory import FIGURE_SCHEMES, make_scheme
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import build_trace, get_profile


class TestPaperMachine:
    @pytest.fixture(scope="class")
    def config(self):
        return MachineConfig.paper()

    @pytest.fixture(scope="class")
    def traces(self, config):
        return build_trace(get_profile("WATER-NSQ"), config, scale=0.04, seed=6)

    @pytest.mark.parametrize("scheme", FIGURE_SCHEMES)
    def test_all_schemes_run(self, config, traces, scheme):
        stats = simulate(make_scheme(scheme, config), traces)
        assert stats.completion_time > 0
        assert stats.l1_misses() > 0
        # Conservation: every L1 miss was serviced somewhere.
        assert (
            stats.counters.get("llc_replica_hits", 0)
            + stats.counters.get("llc_home_hits", 0)
            + stats.counters.get("offchip_misses", 0)
            == stats.counters["l1d_misses"] + stats.counters["l1i_misses"]
        )

    def test_locality_replicates_at_scale(self, config, traces):
        config_rt1 = config.with_overrides(replication_threshold=1)
        stats = simulate(make_scheme("Locality", config_rt1), traces)
        assert stats.counters.get("replicas_created", 0) > 0

    def test_mesh_has_64_tiles(self, config):
        assert config.mesh_side == 8
        assert len(make_scheme("S-NUCA", config).slices) == 64


class TestMeshClosedForms:
    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_average_distance_formula(self, side):
        """Mean Manhattan distance on an NxN mesh is 2(N^2-1)/(3N)."""
        mesh = MeshTopology(side * side)
        expected = 2 * (side * side - 1) / (3 * side)
        assert mesh.average_distance() == pytest.approx(expected)

    def test_paper_mesh_diameter(self):
        mesh = MeshTopology(64)
        assert max(
            mesh.hops(0, dst) for dst in range(64)
        ) == 14  # corner to corner on 8x8
