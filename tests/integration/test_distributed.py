"""Distributed experiment service, end to end with real processes.

The acceptance checks of the service: a grid run through broker +
worker subprocesses is bit-identical to the sequential runner, and a
worker SIGKILLed mid-lease loses nothing.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.common.params import MachineConfig
from repro.experiments.cli import main as experiments_main
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import ExperimentSpec, RunPoint, execute_spec
from repro.experiments.store import ResultStore
from repro.experiments.service import execute_spec_distributed
from repro.experiments.service.worker import HOLD_FIRST_ENV_VAR

PACKAGE_ROOT = str(Path(repro.__file__).resolve().parents[1])


def worker_env(**extra):
    env = os.environ.copy()
    current = env.get("PYTHONPATH", "")
    if PACKAGE_ROOT not in current.split(os.pathsep):
        env["PYTHONPATH"] = (
            PACKAGE_ROOT + (os.pathsep + current if current else "")
        )
    env.update(extra)
    return env


def spawn_worker(queue_root, store_root, worker_id, **env_extra):
    command = [
        sys.executable, "-m", "repro", "experiments", "work",
        "--queue", str(queue_root),
        "--store", str(store_root),
        "--worker-id", worker_id,
        "--wait", "30",
    ]
    return subprocess.Popen(
        command, env=worker_env(**env_extra),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.05, seed=13)


@pytest.fixture(scope="module")
def spec():
    # Mixed fixed points and an ASR level search (the skewed, slow kind).
    return ExperimentSpec("dist", (
        RunPoint(scheme="S-NUCA", benchmark="DEDUP"),
        RunPoint(scheme="R-NUCA", benchmark="DEDUP"),
        RunPoint(scheme="RT-3", benchmark="DEDUP"),
        RunPoint(scheme="ASR", benchmark="DEDUP"),
        RunPoint(scheme="VR", benchmark="DEDUP"),
    ))


def assert_bit_identical(distributed, sequential, spec):
    for point in spec.points:
        ours = distributed.result_for(point)
        theirs = sequential.result_for(point)
        assert ours.stats == theirs.stats, point
        assert ours.energy_breakdown == theirs.energy_breakdown, point
        assert ours.asr_level == theirs.asr_level, point


class TestGridThroughWorkerSubprocesses:
    def test_bit_identical_with_two_workers(self, spec, setup, tmp_path):
        sequential = execute_spec(spec, setup, ResultStore.memory())
        store = ResultStore.shared(tmp_path / "store")
        distributed = execute_spec_distributed(
            spec, setup, store, tmp_path / "q",
            workers=2, lease_ttl=120.0, timeout=300.0,
        )
        assert_bit_identical(distributed, sequential, spec)


class TestKillAWorkerMidGrid:
    def test_sigkilled_worker_loses_nothing(self, spec, setup, tmp_path):
        """A worker SIGKILLed while holding a lease: its lease expires,
        the point is requeued, a peer finishes it — bit-identical."""
        sequential = execute_spec(spec, setup, ResultStore.memory())
        store_root = tmp_path / "store"
        queue_root = tmp_path / "q"
        store = ResultStore.shared(store_root)

        # The victim holds its first lease for (effectively) ever; the
        # REPRO_WORKER_HOLD_FIRST_S hook pins it inside the lease
        # deterministically, so the SIGKILL below always lands mid-task.
        victim = spawn_worker(
            queue_root, store_root, "victim", **{HOLD_FIRST_ENV_VAR: "600"}
        )
        rescuer_holder: dict = {}
        outcome: dict = {}

        def broker():
            try:
                outcome["results"] = execute_spec_distributed(
                    spec, setup, store, queue_root,
                    lease_ttl=3.0, retry_backoff=0.1, max_attempts=5,
                    timeout=300.0,
                )
            except BaseException as error:  # surfaced by the main thread
                outcome["error"] = error

        thread = threading.Thread(target=broker)
        thread.start()
        try:
            # Wait until the victim actually holds a lease...
            deadline = time.time() + 60.0
            leased = queue_root / "leased"
            while time.time() < deadline:
                if leased.is_dir() and any(leased.glob("*.json")):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("victim never claimed a lease")
            # ... kill it mid-task, then send in a healthy peer.
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10.0)
            rescuer_holder["proc"] = spawn_worker(
                queue_root, store_root, "rescuer"
            )
            thread.join(timeout=300.0)
            assert not thread.is_alive(), "broker never finished"
        finally:
            if victim.poll() is None:
                victim.kill()
            rescuer = rescuer_holder.get("proc")
            if rescuer is not None:
                try:
                    rescuer.wait(timeout=30.0)
                except subprocess.TimeoutExpired:
                    rescuer.kill()
            thread.join(timeout=5.0)

        assert "error" not in outcome, outcome.get("error")
        assert_bit_identical(outcome["results"], sequential, spec)


class TestDistributedCLI:
    def test_distributed_flag_matches_sequential_output(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_RESULT_CACHE", f"shared:{tmp_path / 'store'}"
        )
        argv_tail = ["--scale", "0.05", "--benchmarks", "DEDUP"]
        assert experiments_main(
            ["fig6", *argv_tail, "--distributed", "2",
             "--queue", str(tmp_path / "q")]
        ) == 0
        distributed_out = capsys.readouterr().out
        assert experiments_main(
            ["fig6", *argv_tail, "--no-cache"]
        ) == 0
        sequential_out = capsys.readouterr().out
        assert distributed_out == sequential_out

    def test_repeat_run_is_store_served(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_RESULT_CACHE", f"shared:{tmp_path / 'store'}"
        )
        argv = ["fig6", "--scale", "0.05", "--benchmarks", "DEDUP",
                "--distributed", "2", "--queue", str(tmp_path / "q")]
        assert experiments_main(argv) == 0
        capsys.readouterr()
        warm = ResultStore.from_env()
        assert experiments_main(argv, store=warm) == 0
        assert warm.misses == 0
        assert warm.hit_rate() == 1.0
