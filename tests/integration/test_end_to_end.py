"""End-to-end qualitative checks: the paper's result *shapes*.

These are the fidelity claims of DESIGN.md §7 — who wins on which
benchmark class — at small scale with fixed seeds.  Absolute magnitudes
are not asserted (our substrate is a simplified simulator), only the
orderings the paper's Section 4.1 narrative predicts.
"""

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup, run_one
from repro.sim.simulator import simulate
from repro.schemes.factory import make_scheme
from repro.workloads.benchmarks import build_trace, get_profile


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.5, seed=1)


class TestBarnesSharedReadWrite:
    """BARNES: high-reuse shared read-write data (Section 4.1)."""

    @pytest.fixture(scope="class")
    def results(self, setup):
        return {
            scheme: run_one(setup, scheme, "BARNES")
            for scheme in ("S-NUCA", "R-NUCA", "ASR", "RT-3")
        }

    def test_locality_beats_snuca_energy(self, results):
        assert results["RT-3"].total_energy < results["S-NUCA"].total_energy

    def test_locality_beats_snuca_time(self, results):
        assert results["RT-3"].completion_time < results["S-NUCA"].completion_time

    def test_asr_cannot_help_shared_rw(self, results):
        """ASR does not replicate read-write data, so it tracks S-NUCA."""
        ratio = results["ASR"].total_energy / results["S-NUCA"].total_energy
        assert ratio > 0.85

    def test_locality_beats_rnuca(self, results):
        """R-NUCA never replicates shared data; locality-aware does."""
        assert results["RT-3"].total_energy < results["R-NUCA"].total_energy

    def test_replica_hits_present(self, results):
        assert results["RT-3"].stats.miss_breakdown()["LLC-Replica-Hits"] > 0.1


class TestDedupPrivate:
    """DEDUP: almost exclusively private data; R-NUCA optimal."""

    @pytest.fixture(scope="class")
    def results(self, setup):
        return {
            scheme: run_one(setup, scheme, "DEDUP")
            for scheme in ("S-NUCA", "R-NUCA", "RT-3")
        }

    def test_rnuca_beats_snuca(self, results):
        assert results["R-NUCA"].total_energy < results["S-NUCA"].total_energy
        assert results["R-NUCA"].completion_time < results["S-NUCA"].completion_time

    def test_locality_tracks_rnuca(self, results):
        """The locality scheme inherits R-NUCA placement; on pure-private
        workloads it must stay within a few percent."""
        ratio = results["RT-3"].total_energy / results["R-NUCA"].total_energy
        assert ratio < 1.1


class TestFluidanimatePressure:
    """FLUIDANIMATE: streaming beyond the LLC; RT-3 must filter replication."""

    @pytest.fixture(scope="class")
    def results(self, setup):
        return {
            scheme: run_one(setup, scheme, "FLUIDANIMATE")
            for scheme in ("RT-1", "RT-3")
        }

    def test_rt3_no_worse_offchip_than_rt1(self, results):
        assert (
            results["RT-3"].stats.offchip_miss_rate()
            <= results["RT-1"].stats.offchip_miss_rate() + 0.01
        )

    def test_rt3_energy_not_worse(self, results):
        assert results["RT-3"].total_energy <= results["RT-1"].total_energy * 1.05


class TestLuncMigratory:
    """LU-NC: migratory shared data needs E/M replicas (Section 2.3.1)."""

    @pytest.fixture(scope="class")
    def results(self, setup):
        return {
            scheme: run_one(setup, scheme, "LU-NC")
            for scheme in ("S-NUCA", "ASR", "RT-1")
        }

    def test_locality_beats_snuca(self, results):
        assert results["RT-1"].total_energy < results["S-NUCA"].total_energy

    def test_asr_cannot_replicate_migratory(self, results):
        """ASR is restricted to shared read-only data."""
        assert results["RT-1"].total_energy < results["ASR"].total_energy

    def test_locality_created_replicas(self, results):
        assert results["RT-1"].stats.counters["replicas_created"] > 0


class TestBlackscholesFalseSharing:
    """BLACKSCHOLES: page-level false sharing defeats R-NUCA."""

    @pytest.fixture(scope="class")
    def results(self, setup):
        return {
            scheme: run_one(setup, scheme, "BLACKSCHOLES")
            for scheme in ("R-NUCA", "RT-3")
        }

    def test_locality_beats_rnuca(self, results):
        assert results["RT-3"].total_energy < results["R-NUCA"].total_energy
        assert results["RT-3"].completion_time < results["R-NUCA"].completion_time


class TestStreamclusterThresholds:
    """STREAMCLUSTER: RT-8 fetches repeatedly over the network (Section 4.1).

    Runs at full trace scale: the RT-8 penalty (repeated home fetches
    before the threshold is ever reached) needs enough reuse to show.
    """

    @pytest.fixture(scope="class")
    def results(self):
        full_scale = ExperimentSetup(MachineConfig.small(), scale=1.0, seed=1)
        return {
            scheme: run_one(full_scale, scheme, "STREAMCLUSTER")
            for scheme in ("RT-3", "RT-8")
        }

    def test_rt3_beats_rt8(self, results):
        assert results["RT-3"].completion_time < results["RT-8"].completion_time
        assert results["RT-3"].total_energy < results["RT-8"].total_energy

    def test_rt3_has_more_replica_hits(self, results):
        assert (
            results["RT-3"].stats.miss_breakdown()["LLC-Replica-Hits"]
            > results["RT-8"].stats.miss_breakdown()["LLC-Replica-Hits"]
        )


class TestDeterminism:
    def test_same_seed_same_stats(self):
        config = MachineConfig.small()
        traces = build_trace(get_profile("BARNES"), config, scale=0.15, seed=9)
        first = simulate(make_scheme("RT-3", config), traces)
        second = simulate(make_scheme("RT-3", config), traces)
        assert first.completion_time == second.completion_time
        assert first.counters == second.counters
        assert first.energy_counts == second.energy_counts
        assert first.miss_status == second.miss_status

    def test_fresh_traces_same_seed_same_stats(self):
        config = MachineConfig.small()
        first_traces = build_trace(get_profile("DEDUP"), config, scale=0.15, seed=4)
        second_traces = build_trace(get_profile("DEDUP"), config, scale=0.15, seed=4)
        first = simulate(make_scheme("VR", config), first_traces)
        second = simulate(make_scheme("VR", config), second_traces)
        assert first.completion_time == second.completion_time
        assert first.counters == second.counters


class TestStatsConservation:
    @pytest.mark.parametrize("scheme", ["S-NUCA", "R-NUCA", "VR", "RT-3"])
    def test_miss_accounting_conserved(self, scheme):
        """Replica hits + home hits + off-chip = L1 misses."""
        config = MachineConfig.small()
        traces = build_trace(get_profile("WATER-NSQ"), config, scale=0.15, seed=5)
        stats = simulate(make_scheme(scheme, config), traces)
        l1_misses = stats.counters["l1d_misses"] + stats.counters["l1i_misses"]
        assert stats.l1_misses() == l1_misses
        assert (
            stats.counters.get("llc_replica_hits", 0)
            + stats.counters.get("llc_home_hits", 0)
            + stats.counters.get("offchip_misses", 0)
            == l1_misses
        )

    def test_all_accesses_accounted(self):
        config = MachineConfig.small()
        traces = build_trace(get_profile("FERRET"), config, scale=0.15, seed=5)
        stats = simulate(make_scheme("RT-3", config), traces)
        processed = sum(stats.miss_status.values())
        assert processed == traces.total_accesses()
