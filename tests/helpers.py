"""Test utilities: protocol drivers and coherence-invariant checking."""

from __future__ import annotations

import types

import numpy as np

from repro.cache.entries import HomeEntry, ReplicaEntry
from repro.common.addr import Region
from repro.common.types import AccessType, LineClass, MESIState, MissStatus
from repro.schemes.base import AccessResult, ProtocolEngine
from repro.sim.stats import SimStats
from repro.workloads.trace import CoreTrace, TraceSet


class FixedLatencyEngine:
    """Minimal engine stub: every access costs exactly ``latency`` cycles.

    With memory latency deterministic and contention-free, event-loop
    quantities (barrier arrivals, release times, finish times) are exactly
    computable, which makes the kernel scheduling properties testable in
    isolation from the machine model.  Records every dispatched access in
    ``calls`` as ``(core, access_type_value, line, issue_time)``.

    Implements :meth:`make_batched_access` (the batched kernel's
    run-servicing contract — see
    :meth:`repro.schemes.base.ProtocolEngine.make_batched_access`) so the
    kernel's run boundaries are testable in isolation: every record is a
    "hit" at the fixed latency except lines in ``batch_miss_lines``,
    which the closure refuses so the kernel must single-step them through
    :meth:`access`.  Lines in ``replica_lines`` model constant-latency
    local-replica hits: both entry points service them at
    ``replica_latency`` with ``LLC_REPLICA_HIT`` status, mirroring the
    replica fast path's two-latency runs (and its flush split between
    L1-hit and replica-hit statuses).  Closure-serviced records land in
    the same ``calls`` list with the same issue timestamps, so a
    divergence from the reference kernel pinpoints a run that crossed a
    boundary it must not cross (barrier, scheduling yield, or a
    non-batchable record).
    """

    def __init__(
        self,
        num_cores: int,
        latency: float = 5.0,
        batch_miss_lines: frozenset[int] = frozenset(),
        replica_lines: frozenset[int] = frozenset(),
        replica_latency: float | None = None,
    ) -> None:
        self.config = types.SimpleNamespace(num_cores=num_cores, l1_latency=latency)
        self.stats = SimStats(num_cores)
        self.latency = latency
        self.batch_miss_lines = batch_miss_lines
        self.replica_lines = replica_lines
        self.replica_latency = (
            replica_latency if replica_latency is not None else 3.0 * latency
        )
        self.calls: list[tuple[int, int, int, float]] = []

    def access(self, core: int, atype: AccessType, line_addr: int, now: float) -> AccessResult:
        self.calls.append((core, int(atype), line_addr, now))
        if line_addr in self.replica_lines and line_addr not in self.batch_miss_lines:
            self.stats.record_miss(MissStatus.LLC_REPLICA_HIT)
            return AccessResult(self.replica_latency, MissStatus.LLC_REPLICA_HIT)
        self.stats.record_miss(MissStatus.L1_HIT)
        return AccessResult(self.latency, MissStatus.L1_HIT)

    def make_batched_access(self, charge_gaps: bool = False):
        from repro.sim import stats as stat_names

        latency = self.latency
        replica_latency = self.replica_latency
        miss_lines = self.batch_miss_lines
        replica_lines = self.replica_lines
        calls = self.calls
        miss_status = self.stats.miss_status
        latency_buckets = self.stats.latency
        COMPUTE = stat_names.COMPUTE
        L1_HIT = MissStatus.L1_HIT
        LLC_REPLICA_HIT = MissStatus.LLC_REPLICA_HIT

        def run_hits(core, decoded, index, stop, now, limit, strict):
            atypes = decoded.atypes
            lines = decoded.lines
            gaps = decoded.gaps
            start = index
            replicas = 0
            yielded = False
            while index < stop:
                line_addr = lines[index]
                if line_addr in miss_lines:
                    break
                if line_addr in replica_lines:
                    record_latency = replica_latency
                    replicas += 1
                else:
                    record_latency = latency
                atype = atypes[index]
                gap = gaps[index]
                index += 1
                if charge_gaps and gap:
                    latency_buckets[COMPUTE] += gap
                issue_time = now + gap
                calls.append((core, int(atype), line_addr, issue_time))
                now = issue_time + record_latency
                if now >= limit and (not strict or now > limit):
                    yielded = True
                    break
            hits = index - start
            if hits:
                if not charge_gaps:
                    gap_prefix = decoded.gap_prefix
                    run_gaps = float(gap_prefix[index] - gap_prefix[start])
                    if run_gaps:
                        latency_buckets[COMPUTE] += run_gaps
                if hits - replicas:
                    miss_status[L1_HIT] += hits - replicas
                if replicas:
                    miss_status[LLC_REPLICA_HIT] += replicas
            return index, now, yielded

        return run_hits

    def make_vector_access(self, charge_gaps: bool = False):
        """Array-at-a-time entry point mirroring
        :meth:`repro.schemes.base.ProtocolEngine.make_vector_access`:
        spans of plain fixed-latency hits are planned and timed in bulk
        (the same interleaved-increment ``np.cumsum`` clock replay the
        real engine uses, so issue timestamps stay bit-exact), while
        replica hits and refused lines delegate to the batched closure
        and the kernel's single-stepping.  Declines ``charge_gaps`` like
        the real engine (per-record fractional Compute accumulation is
        order-observable)."""
        if charge_gaps:
            return None
        run_hits = self.make_batched_access(charge_gaps=False)
        from repro.sim import stats as stat_names

        latency = self.latency
        miss_lines = self.batch_miss_lines
        replica_lines = self.replica_lines
        calls = self.calls
        miss_status = self.stats.miss_status
        latency_buckets = self.stats.latency
        COMPUTE = stat_names.COMPUTE
        L1_HIT = MissStatus.L1_HIT

        def run_vector(core, decoded, index, stop, now, limit, strict):
            atypes = decoded.atypes
            lines = decoded.lines
            gaps_arr = decoded.gaps_array
            gap_prefix = decoded.gap_prefix
            while True:
                n_hits = 0
                probe = index
                while probe < stop:
                    line_addr = lines[probe]
                    if line_addr in miss_lines or line_addr in replica_lines:
                        break
                    probe += 1
                    n_hits += 1
                if n_hits:
                    incr = np.empty(2 * n_hits + 1, dtype=np.float64)
                    incr[0] = now
                    incr[1::2] = gaps_arr[index : index + n_hits]
                    incr[2::2] = latency
                    chain = np.cumsum(incr)
                    t = chain[2::2]
                    issues = chain[1::2]
                    k = int(np.searchsorted(t, limit, "right" if strict else "left"))
                    if k < n_hits:
                        n = k + 1
                        yielded = True
                    else:
                        n = n_hits
                        yielded = False
                    for i in range(n):
                        calls.append(
                            (
                                core,
                                int(atypes[index + i]),
                                lines[index + i],
                                float(issues[i]),
                            )
                        )
                    run_gaps = float(gap_prefix[index + n] - gap_prefix[index])
                    if run_gaps:
                        latency_buckets[COMPUTE] += run_gaps
                    miss_status[L1_HIT] += n
                    index += n
                    now = float(t[n - 1])
                    if yielded:
                        return index, now, True
                    if index >= stop:
                        return index, now, False
                new_index, now, yielded = run_hits(
                    core, decoded, index, stop, now, limit, strict
                )
                progressed = new_index != index
                index = new_index
                if yielded:
                    return index, now, True
                if index >= stop or not progressed:
                    return index, now, False

        return run_vector

    def finalize(self) -> None:
        pass


def records_trace_set(
    per_core: list[list[tuple[AccessType, int, int]]],
    name: str = "records",
    region_lines: int = 1 << 16,
) -> TraceSet:
    """Build a TraceSet from per-core ``(type, line, gap)`` record lists."""
    cores = []
    for records in per_core:
        cores.append(
            CoreTrace(
                types=np.array([r[0] for r in records], dtype=np.uint8),
                lines=np.array([r[1] for r in records], dtype=np.int64),
                gaps=np.array([r[2] for r in records], dtype=np.uint16),
            )
        )
    return TraceSet(
        name, cores, [(Region(0, region_lines), LineClass.SHARED_RW)]
    )


def drive(
    engine: ProtocolEngine,
    accesses: list[tuple[int, AccessType, int]],
    start_time: float = 0.0,
    step: float = 100.0,
) -> list[AccessResult]:
    """Feed a hand-written access sequence through the engine.

    Accesses are spaced ``step`` cycles apart, which keeps timestamps
    monotone (the contention models assume a mostly-advancing clock).
    """
    results = []
    now = start_time
    for core, atype, line in accesses:
        results.append(engine.access(core, atype, line, now))
        now += step
    return results


def read(core: int, line: int) -> tuple[int, AccessType, int]:
    return core, AccessType.READ, line


def write(core: int, line: int) -> tuple[int, AccessType, int]:
    return core, AccessType.WRITE, line


def ifetch(core: int, line: int) -> tuple[int, AccessType, int]:
    return core, AccessType.IFETCH, line


def holders_of(engine: ProtocolEngine, line_addr: int) -> dict[int, list[str]]:
    """Which cores hold which kinds of copies of a line."""
    holders: dict[int, list[str]] = {}
    for core in range(engine.config.num_cores):
        kinds = []
        l1d_entry = engine.l1d[core].lookup(line_addr)
        if l1d_entry is not None and l1d_entry.valid:
            kinds.append(f"l1d:{l1d_entry.state.name}")
        l1i_entry = engine.l1i[core].lookup(line_addr)
        if l1i_entry is not None and l1i_entry.valid:
            kinds.append(f"l1i:{l1i_entry.state.name}")
        replica = engine.slices[core].replica(line_addr)
        if replica is not None and replica.valid:
            kinds.append(f"replica:{replica.state.name}")
        if kinds:
            holders[core] = kinds
    return holders


def check_coherence(engine: ProtocolEngine) -> list[str]:
    """Verify the machine-wide coherence invariants; returns violations.

    1. Single-writer: at most one coherence *unit* holds a writable (M/E)
       copy of a line, and if one does, no other unit holds any copy.
       A unit is a core's local hierarchy — or a whole cluster when
       cluster-level replication is active, since the cluster replica and
       its members' L1 copies form one hierarchical subtree
       (Section 2.3.4).
    2. Inclusion: every L1 copy and every replica is backed by a live
       home entry somewhere in the LLC.
    3. Directory accuracy: a home entry's sharer set equals the set of
       cores holding copies in their local hierarchies.
    """
    violations: list[str] = []
    lines: set[int] = set()
    home_of: dict[int, int] = {}
    for slice_index, llc in enumerate(engine.slices):
        for entry in llc:
            lines.add(entry.line_addr)
            if isinstance(entry, HomeEntry):
                if entry.line_addr in home_of and not (
                    engine.placement.homes_depend_on_requester
                ):
                    violations.append(
                        f"line {entry.line_addr:#x} has two homes: "
                        f"{home_of[entry.line_addr]} and {slice_index}"
                    )
                home_of[entry.line_addr] = slice_index
    for core in range(engine.config.num_cores):
        for l1 in (engine.l1d[core], engine.l1i[core]):
            for entry in l1:
                lines.add(entry.line_addr)

    cluster_size = engine.config.cluster_size
    side = engine.config.mesh_side

    def unit_of(core: int) -> int:
        if cluster_size <= 1:
            return core
        from repro.network.topology import cluster_of
        return cluster_of(core, cluster_size, side)

    for line_addr in sorted(lines):
        holders = holders_of(engine, line_addr)
        # The home slice may itself hold a replica-free home copy; holders
        # covers only L1s and replica entries, which is what we want.
        writer_units = {
            unit_of(core)
            for core, kinds in holders.items()
            if any(state in kind for kind in kinds
                   for state in ("MODIFIED", "EXCLUSIVE"))
        }
        holder_units = {unit_of(core) for core in holders}
        if len(writer_units) > 1:
            violations.append(
                f"line {line_addr:#x}: multiple writable holders {holders}"
            )
        if writer_units and len(holder_units) > 1:
            violations.append(
                f"line {line_addr:#x}: writer coexists with other copies {holders}"
            )
        if holders and line_addr not in home_of:
            violations.append(
                f"line {line_addr:#x}: copies {holders} with no home entry"
            )
    # Directory accuracy (skip per-cluster instruction homes: each cluster
    # tracks only its own members).
    if not engine.placement.homes_depend_on_requester:
        for line_addr, slice_index in home_of.items():
            entry = engine.slices[slice_index].home(line_addr)
            assert entry is not None
            holders = set(holders_of(engine, line_addr))
            tracked = set(entry.sharers.members())
            if holders != tracked:
                violations.append(
                    f"line {line_addr:#x}: directory tracks {sorted(tracked)} "
                    f"but holders are {sorted(holders)}"
                )
    return violations


def count_replicas(engine: ProtocolEngine) -> int:
    return sum(llc.replica_count() for llc in engine.slices)


def find_replica(engine: ProtocolEngine, core: int, line_addr: int) -> ReplicaEntry | None:
    return engine.slices[engine.replica_slice_for(core, line_addr)].replica(line_addr)


def l1_state(engine: ProtocolEngine, core: int, line_addr: int) -> MESIState | None:
    entry = engine.l1d[core].lookup(line_addr)
    if entry is None:
        return None
    return entry.state
