"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import MachineConfig


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regold",
        action="store_true",
        default=False,
        help="regenerate golden snapshots instead of comparing against them",
    )


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory: pytest.TempPathFactory):
    """Point the experiment ResultStore at a throwaway directory.

    Keeps the suite hermetic: tests never read stale results from (or
    write into) the developer's real ``REPRO_RESULT_CACHE`` location.
    """
    patcher = pytest.MonkeyPatch()
    patcher.setenv(
        "REPRO_RESULT_CACHE", str(tmp_path_factory.mktemp("result-store"))
    )
    yield
    patcher.undo()


@pytest.fixture
def tiny_config() -> MachineConfig:
    """4-core machine with hand-traceable cache sizes."""
    return MachineConfig.tiny()

@pytest.fixture
def small_config() -> MachineConfig:
    """16-core machine used for integration tests."""
    return MachineConfig.small()


@pytest.fixture
def paper_config() -> MachineConfig:
    """The full Table 1 machine (used only for parameter checks)."""
    return MachineConfig.paper()
