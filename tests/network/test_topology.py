"""Mesh topology and XY routing."""

import pytest

from repro.network.topology import MeshTopology, cluster_members, cluster_of


class TestCoordinates:
    def test_corner_coordinates(self):
        mesh = MeshTopology(16)
        assert mesh.coordinates(0) == (0, 0)
        assert mesh.coordinates(3) == (3, 0)
        assert mesh.coordinates(12) == (0, 3)
        assert mesh.coordinates(15) == (3, 3)

    def test_core_at_roundtrip(self):
        mesh = MeshTopology(64)
        for core in range(64):
            x, y = mesh.coordinates(core)
            assert mesh.core_at(x, y) == core

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MeshTopology(6)

    def test_rejects_out_of_range(self):
        mesh = MeshTopology(16)
        with pytest.raises(ValueError):
            mesh.coordinates(16)
        with pytest.raises(ValueError):
            mesh.core_at(4, 0)


class TestHops:
    def test_self_distance_zero(self):
        mesh = MeshTopology(16)
        assert mesh.hops(5, 5) == 0

    def test_manhattan_distance(self):
        mesh = MeshTopology(16)
        assert mesh.hops(0, 3) == 3   # across a row
        assert mesh.hops(0, 12) == 3  # down a column
        assert mesh.hops(0, 15) == 6  # corner to corner

    def test_symmetry(self):
        mesh = MeshTopology(16)
        for src in range(16):
            for dst in range(16):
                assert mesh.hops(src, dst) == mesh.hops(dst, src)


class TestXYRoute:
    def test_route_length_equals_hops(self):
        mesh = MeshTopology(16)
        for src in range(16):
            for dst in range(16):
                assert len(list(mesh.route(src, dst))) == mesh.hops(src, dst)

    def test_route_is_connected(self):
        mesh = MeshTopology(16)
        links = list(mesh.route(0, 15))
        assert links[0][0] == 0
        assert links[-1][1] == 15
        for (_src, first_dst), (second_src, _dst) in zip(links, links[1:]):
            assert first_dst == second_src

    def test_x_before_y(self):
        mesh = MeshTopology(16)
        links = list(mesh.route(0, 15))
        # First three links move along the row (dst - src == 1).
        assert all(dst - src == 1 for src, dst in links[:3])
        # Remaining links move down columns (dst - src == side).
        assert all(dst - src == 4 for src, dst in links[3:])

    def test_links_adjacent(self):
        mesh = MeshTopology(64)
        for src, dst in mesh.route(0, 63):
            assert mesh.hops(src, dst) == 1


class TestClusters:
    def test_cluster_of_identity_for_size_one(self):
        assert cluster_of(5, 1, side=4) == 5

    def test_2x2_clusters_on_4x4(self):
        # 4x4 mesh, 2x2 clusters: cores 0,1,4,5 form cluster 0.
        for core in (0, 1, 4, 5):
            assert cluster_of(core, 4, side=4) == 0
        for core in (2, 3, 6, 7):
            assert cluster_of(core, 4, side=4) == 1
        for core in (10, 11, 14, 15):
            assert cluster_of(core, 4, side=4) == 3

    def test_cluster_members_inverse(self):
        side = 8
        for core in range(64):
            cluster = cluster_of(core, 16, side)
            assert core in cluster_members(cluster, 16, side)

    def test_members_partition_the_mesh(self):
        side = 4
        seen = []
        for cluster in range(4):
            seen.extend(cluster_members(cluster, 4, side))
        assert sorted(seen) == list(range(16))

    def test_non_square_cluster_rejected(self):
        with pytest.raises(ValueError):
            cluster_of(0, 8, side=4)


class TestAverageDistance:
    def test_known_value_2x2(self):
        # 2x2 mesh: pair distances average to 1.0.
        assert MeshTopology(4).average_distance() == pytest.approx(1.0)
