"""Mesh latency and contention model."""

import pytest

from repro.common.params import MachineConfig
from repro.network.mesh import Mesh


@pytest.fixture
def mesh(small_config):
    return Mesh(small_config)


class TestUnloadedLatency:
    def test_local_send_is_free(self, mesh):
        assert mesh.send(3, 3, 9, depart=100.0) == 100.0

    def test_single_flit_one_hop(self, mesh):
        # 1 hop x 2 cycles, tail == head for 1 flit.
        assert mesh.unloaded_latency(0, 1, 1) == 2

    def test_data_message_latency(self, mesh, small_config):
        # hops * hop_latency + (flits - 1) serialization.
        flits = mesh.data_flits()
        hops = mesh.topology.hops(0, 15)
        assert mesh.unloaded_latency(0, 15, flits) == hops * 2 + flits - 1

    def test_send_matches_unloaded_when_idle(self, mesh):
        arrival = mesh.send(0, 15, 9, depart=0.0)
        assert arrival == pytest.approx(mesh.unloaded_latency(0, 15, 9))

    def test_flit_counts(self, mesh, small_config):
        assert mesh.control_flits() == 1
        assert mesh.data_flits() == 1 + small_config.cache_line_flits


class TestContention:
    def test_loaded_link_adds_delay(self, mesh):
        # Saturate a link within one epoch, then measure a fresh message.
        for _ in range(40):
            mesh.send(0, 1, 9, depart=10.0)
        loaded = mesh.send(0, 1, 9, depart=11.0) - 11.0
        assert loaded > mesh.unloaded_latency(0, 1, 9)

    def test_contention_clears_in_later_epoch(self, mesh):
        for _ in range(40):
            mesh.send(0, 1, 9, depart=10.0)
        later = Mesh.CONTENTION_EPOCH * 3 + 5.0
        fresh = mesh.send(0, 1, 9, depart=later) - later
        assert fresh == pytest.approx(mesh.unloaded_latency(0, 1, 9))

    def test_delay_is_bounded(self, mesh):
        """The utilization clamp keeps single-link delay finite."""
        for _ in range(10000):
            mesh.send(0, 1, 9, depart=50.0)
        worst = mesh.send(0, 1, 9, depart=50.0) - 50.0
        max_per_link = 9 * Mesh.MAX_UTILIZATION / (1 - Mesh.MAX_UTILIZATION)
        assert worst <= max_per_link + mesh.unloaded_latency(0, 1, 9) + 1

    def test_disjoint_paths_do_not_interact(self, mesh):
        for _ in range(40):
            mesh.send(0, 1, 9, depart=10.0)
        # Traffic in the opposite corner is unaffected.
        other = mesh.send(15, 14, 9, depart=11.0) - 11.0
        assert other == pytest.approx(mesh.unloaded_latency(15, 14, 9))

    def test_out_of_order_departures_stay_stable(self, mesh):
        """A far-future send must not blow up frontier traffic (the
        busy-until pathology this model replaces)."""
        mesh.send(0, 3, 9, depart=1_000_000.0)
        frontier = mesh.send(0, 3, 9, depart=10.0) - 10.0
        assert frontier <= mesh.unloaded_latency(0, 3, 9) + 5


class TestAccounting:
    def test_flit_traversal_counts(self, mesh):
        mesh.send(0, 3, 2, depart=0.0)  # 3 hops, 2 flits
        assert mesh.link_flit_traversals == 6
        assert mesh.router_flit_traversals == 8  # (hops + 1) routers

    def test_local_send_counts_no_traversals(self, mesh):
        mesh.send(5, 5, 9, depart=0.0)
        assert mesh.link_flit_traversals == 0
        assert mesh.messages_sent == 1

    def test_round_trip(self, mesh):
        arrival = mesh.round_trip(0, 1, 1, 9, depart=0.0)
        expected = mesh.unloaded_latency(0, 1, 1) + mesh.unloaded_latency(1, 0, 9)
        assert arrival == pytest.approx(expected)
