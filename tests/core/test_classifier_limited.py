"""Limited_k classifier: slot management, majority vote, inactive sharers."""

import pytest

from repro.common.types import ReplicationMode
from repro.core.classifier import (
    CompleteClassifier,
    LimitedClassifier,
    make_classifier,
)


@pytest.fixture
def classifier():
    return LimitedClassifier(num_cores=16, rt=3, counter_max=3, k=3)


@pytest.fixture
def state(classifier):
    return classifier.new_state()


def _promote(classifier, state, core):
    for _ in range(classifier.rt):
        classifier.on_home_read(state, core)


class TestSlotAllocation:
    def test_tracks_up_to_k_cores(self, classifier, state):
        for core in (0, 1, 2):
            classifier.on_home_read(state, core)
        assert {slot.core for slot in state.slots} == {0, 1, 2}

    def test_fourth_core_untracked_when_all_active(self, classifier, state):
        for core in (0, 1, 2):
            classifier.on_home_read(state, core)
        classifier.on_home_read(state, 3)
        assert {slot.core for slot in state.slots} == {0, 1, 2}

    def test_tracked_core_counts_normally(self, classifier, state):
        _promote(classifier, state, 0)
        assert state.mode(0) == ReplicationMode.REPLICA

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            LimitedClassifier(num_cores=16, rt=3, counter_max=3, k=0)


class TestMajorityVote:
    def test_untracked_core_follows_majority_replica(self, classifier, state):
        for core in (0, 1):
            _promote(classifier, state, core)
        classifier.on_home_read(state, 2)  # tracked, non-replica
        # Core 9 is untracked: 2 replicas vs 1 non-replica -> replicate.
        assert classifier.on_home_read(state, 9) is True

    def test_untracked_core_follows_majority_non_replica(self, classifier, state):
        _promote(classifier, state, 0)
        classifier.on_home_read(state, 1)
        classifier.on_home_read(state, 2)
        # 1 replica vs 2 non-replica -> do not replicate.
        assert classifier.on_home_read(state, 9) is False

    def test_tie_votes_non_replica(self, classifier, state):
        """Conservative tie-breaking: ties start cores as non-replica."""
        _promote(classifier, state, 0)
        classifier.on_home_read(state, 1)
        # 1 replica vs 1 non-replica among the tracked -> non-replica.
        assert state.majority_mode() == ReplicationMode.NON_REPLICA

    def test_empty_list_votes_non_replica(self, classifier, state):
        assert state.majority_mode() == ReplicationMode.NON_REPLICA

    def test_untracked_counters_never_accumulate(self, classifier, state):
        """An untracked core cannot be promoted by counting — the
        STREAMCLUSTER pathology of Section 4.3."""
        for core in (0, 1, 2):
            classifier.on_home_read(state, core)
        for _ in range(10):
            classifier.on_home_read(state, 9)
        assert state.home_reuse(9) == 0
        assert state.mode(9) == ReplicationMode.NON_REPLICA


class TestInactiveReplacement:
    def test_replica_core_inactive_after_invalidation(self, classifier, state):
        for core in (0, 1, 2):
            _promote(classifier, state, core)
        classifier.on_invalidation(state, 0, replica_reuse=3)
        slot = state.find(0)
        assert not slot.active

    def test_replica_core_inactive_after_eviction(self, classifier, state):
        for core in (0, 1, 2):
            _promote(classifier, state, core)
        classifier.on_replica_eviction(state, 1, replica_reuse=3)
        assert not state.find(1).active

    def test_nonreplica_core_inactive_after_foreign_write(self, classifier, state):
        for core in (0, 1, 2):
            classifier.on_home_read(state, core)
        classifier.mark_inactive_nonreplicas(state, writer=0)
        assert state.find(0).active          # the writer stays active
        assert not state.find(1).active
        assert not state.find(2).active

    def test_inactive_slot_reallocated(self, classifier, state):
        for core in (0, 1, 2):
            _promote(classifier, state, core)
        classifier.on_invalidation(state, 0, replica_reuse=0)  # demote + inactive
        classifier.on_home_read(state, 9)
        assert 9 in {slot.core for slot in state.slots}
        assert 0 not in {slot.core for slot in state.slots}

    def test_replacement_seeds_majority_mode(self, classifier, state):
        """A newly tracked core starts in the majority mode (Section 2.2.5:
        'start off the requester in its most probable mode')."""
        for core in (0, 1, 2):
            _promote(classifier, state, core)
        classifier.on_invalidation(state, 0, replica_reuse=3)  # stays replica, inactive
        classifier.on_home_read(state, 9)
        slot = state.find(9)
        assert slot.mode == ReplicationMode.REPLICA

    def test_active_slots_not_replaced(self, classifier, state):
        for core in (0, 1, 2):
            classifier.on_home_read(state, core)
        classifier.on_home_read(state, 9)
        assert state.find(9) is None


class TestLimited1Instability:
    """Section 4.3: Limited_1 flips whole-line behaviour on one sharer."""

    def test_first_replica_makes_everyone_replicate(self):
        classifier = LimitedClassifier(num_cores=16, rt=3, counter_max=3, k=1)
        state = classifier.new_state()
        _promote(classifier, state, 0)
        # Any other core immediately inherits replica mode by majority vote.
        assert classifier.on_home_read(state, 5) is True


class TestFactory:
    def test_limited_when_k_small(self):
        classifier = make_classifier(num_cores=16, rt=3, counter_max=3, k=3)
        assert isinstance(classifier, LimitedClassifier)

    def test_complete_when_k_none(self):
        classifier = make_classifier(num_cores=16, rt=3, counter_max=3, k=None)
        assert isinstance(classifier, CompleteClassifier)

    def test_complete_when_k_covers_all_cores(self):
        """Figure 9's k=64 point is the Complete classifier."""
        classifier = make_classifier(num_cores=16, rt=3, counter_max=3, k=16)
        assert isinstance(classifier, CompleteClassifier)


class TestWriterRuleLimited:
    def test_only_sharer_writer_increments(self, classifier, state):
        classifier.on_home_write(state, 0, was_only_sharer=True)
        classifier.on_home_write(state, 0, was_only_sharer=True)
        assert state.home_reuse(0) == 2

    def test_contended_writer_resets(self, classifier, state):
        classifier.on_home_write(state, 0, was_only_sharer=True)
        classifier.on_home_write(state, 0, was_only_sharer=False)
        assert state.home_reuse(0) == 1

    def test_reset_others_only_touches_sharers(self, classifier, state):
        classifier.on_home_read(state, 1)
        classifier.on_home_read(state, 2)
        classifier.on_write_reset_others(state, writer=0, sharers={1})
        assert state.home_reuse(1) == 0
        assert state.home_reuse(2) == 1
