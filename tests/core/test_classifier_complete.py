"""Complete locality classifier: the Figure 3 state machine, verbatim."""

import pytest

from repro.common.types import ReplicationMode
from repro.core.classifier import CompleteClassifier


@pytest.fixture
def classifier():
    return CompleteClassifier(num_cores=8, rt=3, counter_max=3)


@pytest.fixture
def state(classifier):
    return classifier.new_state()


class TestInitialState:
    def test_all_cores_start_non_replica(self, classifier, state):
        for core in range(8):
            assert state.mode(core) == ReplicationMode.NON_REPLICA
            assert state.home_reuse(core) == 0


class TestReadPromotion:
    def test_promotion_at_rt(self, classifier, state):
        """Home reuse reaching RT promotes the core (Figure 3)."""
        assert classifier.on_home_read(state, 0) is False  # reuse 1
        assert classifier.on_home_read(state, 0) is False  # reuse 2
        assert classifier.on_home_read(state, 0) is True   # reuse 3 -> promote
        assert state.mode(0) == ReplicationMode.REPLICA

    def test_promoted_core_keeps_replicating(self, classifier, state):
        for _ in range(3):
            classifier.on_home_read(state, 0)
        assert classifier.on_home_read(state, 0) is True

    def test_cores_are_independent(self, classifier, state):
        for _ in range(3):
            classifier.on_home_read(state, 0)
        assert state.mode(1) == ReplicationMode.NON_REPLICA

    def test_rt1_promotes_immediately(self):
        classifier = CompleteClassifier(num_cores=4, rt=1, counter_max=3)
        state = classifier.new_state()
        assert classifier.on_home_read(state, 0) is True

    def test_counter_saturates(self, classifier, state):
        """Counters saturate at counter_max; promotion still fires."""
        for _ in range(20):
            classifier.on_home_read(state, 0)
        assert state.home_reuse(0) == 3


class TestWriterRule:
    """Section 2.2.2: the migratory-data enabler."""

    def test_only_sharer_writer_increments(self, classifier, state):
        classifier.on_home_write(state, 0, was_only_sharer=True)
        assert state.home_reuse(0) == 1
        classifier.on_home_write(state, 0, was_only_sharer=True)
        assert state.home_reuse(0) == 2

    def test_contended_writer_resets_to_one(self, classifier, state):
        classifier.on_home_write(state, 0, was_only_sharer=True)
        classifier.on_home_write(state, 0, was_only_sharer=True)
        classifier.on_home_write(state, 0, was_only_sharer=False)
        assert state.home_reuse(0) == 1

    def test_migratory_promotion(self, classifier, state):
        """Repeated solo read+write visits accumulate to promotion."""
        replicate = False
        for _ in range(2):
            classifier.on_home_read(state, 0)
            replicate = classifier.on_home_write(state, 0, was_only_sharer=True)
        assert replicate is True  # 4 home events >= RT=3
        assert state.mode(0) == ReplicationMode.REPLICA

    def test_promoted_writer_replicates(self, classifier, state):
        for _ in range(3):
            classifier.on_home_read(state, 0)
        assert classifier.on_home_write(state, 0, was_only_sharer=False) is True

    def test_write_resets_other_nonreplica_sharers(self, classifier, state):
        classifier.on_home_read(state, 1)
        classifier.on_home_read(state, 1)
        classifier.on_write_reset_others(state, writer=0, sharers={0, 1})
        assert state.home_reuse(1) == 0

    def test_write_does_not_reset_writer(self, classifier, state):
        classifier.on_home_read(state, 0)
        classifier.on_write_reset_others(state, writer=0, sharers={0, 1})
        assert state.home_reuse(0) == 1

    def test_write_does_not_reset_non_sharers(self, classifier, state):
        """Only *sharers* are reset (the paper's literal rule); a core
        whose copies were already evicted keeps its counter."""
        classifier.on_home_read(state, 2)
        classifier.on_home_read(state, 2)
        classifier.on_write_reset_others(state, writer=0, sharers={0, 1})
        assert state.home_reuse(2) == 2

    def test_write_does_not_reset_replica_sharers(self, classifier, state):
        for _ in range(3):
            classifier.on_home_read(state, 1)
        classifier.on_write_reset_others(state, writer=0, sharers={0, 1})
        assert state.mode(1) == ReplicationMode.REPLICA


class TestInvalidation:
    """Demotion test on invalidation: replica + home reuse vs RT."""

    def _promote(self, classifier, state, core):
        for _ in range(3):
            classifier.on_home_read(state, core)

    def test_high_combined_reuse_keeps_status(self, classifier, state):
        self._promote(classifier, state, 0)
        classifier.on_invalidation(state, 0, replica_reuse=3)
        assert state.mode(0) == ReplicationMode.REPLICA

    def test_promotion_residue_counts_as_reuse(self, classifier, state):
        """Right after promotion the home counter still holds RT, so the
        first invalidation keeps replica status (total reuse between
        writes = home + replica >= RT)."""
        self._promote(classifier, state, 0)
        classifier.on_invalidation(state, 0, replica_reuse=1)  # 1 + 3 >= 3
        assert state.mode(0) == ReplicationMode.REPLICA

    def test_low_combined_reuse_demotes(self, classifier, state):
        """After the counter was zeroed by a previous invalidation, a
        low-reuse replica demotes the core (Figure 3: XReuse < RT)."""
        self._promote(classifier, state, 0)
        classifier.on_invalidation(state, 0, replica_reuse=3)  # zeroes counter
        classifier.on_invalidation(state, 0, replica_reuse=1)  # 1 + 0 < 3
        assert state.mode(0) == ReplicationMode.NON_REPLICA

    def test_home_reuse_counts_toward_keep(self, classifier, state):
        """XReuse on invalidation is replica + home reuse (Section 2.2.3)."""
        self._promote(classifier, state, 0)
        classifier.on_invalidation(state, 0, replica_reuse=3)  # zero counter
        state.counters[0] = 2
        classifier.on_invalidation(state, 0, replica_reuse=1)  # 1 + 2 >= 3
        assert state.mode(0) == ReplicationMode.REPLICA

    def test_counter_resets_after_invalidation(self, classifier, state):
        self._promote(classifier, state, 0)
        classifier.on_invalidation(state, 0, replica_reuse=3)
        assert state.home_reuse(0) == 0


class TestReplicaEviction:
    """Demotion test on eviction: replica reuse alone vs RT."""

    def _promote(self, classifier, state, core):
        for _ in range(3):
            classifier.on_home_read(state, core)

    def test_high_replica_reuse_keeps_status(self, classifier, state):
        self._promote(classifier, state, 0)
        classifier.on_replica_eviction(state, 0, replica_reuse=3)
        assert state.mode(0) == ReplicationMode.REPLICA

    def test_low_replica_reuse_demotes(self, classifier, state):
        self._promote(classifier, state, 0)
        classifier.on_replica_eviction(state, 0, replica_reuse=2)
        assert state.mode(0) == ReplicationMode.NON_REPLICA

    def test_home_reuse_ignored_on_eviction(self, classifier, state):
        """Only the replica counter decides on eviction (Section 2.2.3)."""
        self._promote(classifier, state, 0)
        state.counters[0] = 3
        classifier.on_replica_eviction(state, 0, replica_reuse=1)
        assert state.mode(0) == ReplicationMode.NON_REPLICA

    def test_counter_resets_after_eviction(self, classifier, state):
        self._promote(classifier, state, 0)
        state.counters[0] = 3
        classifier.on_replica_eviction(state, 0, replica_reuse=3)
        assert state.home_reuse(0) == 0


class TestCounterWidth:
    def test_counter_max_raised_to_rt(self):
        """RT-8 needs counters that can reach 8 (2 bits saturate at 3)."""
        classifier = CompleteClassifier(num_cores=4, rt=8, counter_max=3)
        assert classifier.counter_max == 8
        state = classifier.new_state()
        for _ in range(7):
            assert classifier.on_home_read(state, 0) is False
        assert classifier.on_home_read(state, 0) is True
