"""Replacement policies: LRU and the paper's modified-LRU (Section 2.2.4)."""

import pytest

from repro.cache.entries import CacheLine, HomeEntry, ReplicaEntry
from repro.cache.replacement import LRUPolicy, ModifiedLRUPolicy, make_policy
from repro.coherence.sharers import FullMapSharers
from repro.common.types import MESIState


def _line(addr, last_use):
    entry = CacheLine(addr, MESIState.SHARED)
    entry.last_use = last_use
    return entry


def _home(addr, last_use, sharers):
    entry = HomeEntry(addr, FullMapSharers())
    entry.last_use = last_use
    for core in sharers:
        entry.sharers.add(core)
    return entry


def _replica(addr, last_use, l1_copy):
    entry = ReplicaEntry(addr, MESIState.SHARED, reuse_max=3)
    entry.last_use = last_use
    entry.l1_copy = l1_copy
    return entry


class TestLRU:
    def test_picks_least_recent(self):
        victim = LRUPolicy().select_victim([_line(1, 5), _line(2, 3), _line(3, 9)])
        assert victim.line_addr == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy().select_victim([])


class TestModifiedLRU:
    def test_prefers_fewest_l1_copies(self):
        """A recently used line with no sharers loses to an old line with
        sharers — the paper's key departure from LRU."""
        popular_but_old = _home(1, last_use=1, sharers=[0, 1, 2])
        unpopular_but_recent = _home(2, last_use=100, sharers=[])
        victim = ModifiedLRUPolicy().select_victim(
            [popular_but_old, unpopular_but_recent]
        )
        assert victim.line_addr == 2

    def test_ties_broken_by_lru(self):
        first = _home(1, last_use=5, sharers=[0])
        second = _home(2, last_use=3, sharers=[1])
        victim = ModifiedLRUPolicy().select_victim([first, second])
        assert victim.line_addr == 2

    def test_replica_l1_copy_counts(self):
        backed = _replica(1, last_use=1, l1_copy=True)
        unbacked = _replica(2, last_use=100, l1_copy=False)
        victim = ModifiedLRUPolicy().select_victim([backed, unbacked])
        assert victim.line_addr == 2

    def test_mixed_homes_and_replicas(self):
        home = _home(1, last_use=50, sharers=[0, 1])
        replica = _replica(2, last_use=10, l1_copy=False)
        victim = ModifiedLRUPolicy().select_victim([home, replica])
        assert victim.line_addr == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ModifiedLRUPolicy().select_victim([])


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("modified_lru"), ModifiedLRUPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru")
