"""Set-associative array mechanics."""

import pytest

from repro.cache.array import SetAssociativeCache
from repro.cache.entries import CacheLine
from repro.cache.replacement import LRUPolicy
from repro.common.params import CacheGeometry
from repro.common.types import MESIState


@pytest.fixture
def cache():
    return SetAssociativeCache(CacheGeometry(sets=4, ways=2), LRUPolicy())


def _entry(addr):
    return CacheLine(addr, MESIState.SHARED)


class TestLookup:
    def test_miss_returns_none(self, cache):
        assert cache.lookup(0x10) is None

    def test_insert_then_lookup(self, cache):
        cache.insert(_entry(0x10))
        found = cache.lookup(0x10)
        assert found is not None
        assert found.line_addr == 0x10

    def test_access_updates_lru(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(4))  # same set (4 sets)
        cache.access(0)  # line 0 becomes MRU
        victim = cache.victim_for(8)
        assert victim.line_addr == 4


class TestVictimSelection:
    def test_no_victim_with_free_way(self, cache):
        cache.insert(_entry(0))
        assert cache.victim_for(4) is None

    def test_victim_when_set_full(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(4))
        assert cache.victim_for(8) is not None

    def test_no_victim_when_line_resident(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(4))
        assert cache.victim_for(0) is None  # replaces itself

    def test_other_sets_unaffected(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(4))
        assert cache.victim_for(1) is None  # different set


class TestInsertion:
    def test_insert_into_full_set_raises(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(4))
        with pytest.raises(RuntimeError, match="full set"):
            cache.insert(_entry(8))

    def test_insert_after_eviction(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(4))
        victim = cache.victim_for(8)
        cache.remove(victim.line_addr)
        cache.insert(_entry(8))
        assert cache.lookup(8) is not None
        assert len(cache) == 2

    def test_reinsert_same_line(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(0))
        assert len(cache) == 1


class TestRemoval:
    def test_remove_returns_entry(self, cache):
        cache.insert(_entry(0x20))
        removed = cache.remove(0x20)
        assert removed.line_addr == 0x20
        assert cache.lookup(0x20) is None

    def test_remove_missing_returns_none(self, cache):
        assert cache.remove(0x20) is None


class TestInspection:
    def test_iteration_covers_all(self, cache):
        for addr in (0, 1, 2, 3):
            cache.insert(_entry(addr))
        assert {entry.line_addr for entry in cache} == {0, 1, 2, 3}

    def test_utilization(self, cache):
        assert cache.utilization() == 0.0
        for addr in range(4):
            cache.insert(_entry(addr))
        assert cache.utilization() == pytest.approx(0.5)

    def test_set_occupancy(self, cache):
        cache.insert(_entry(0))
        cache.insert(_entry(4))
        assert cache.set_occupancy(0) == 2
        assert cache.set_occupancy(1) == 0

    def test_capacity_never_exceeded(self, cache):
        """Inserting with proper eviction keeps every set within ways."""
        for addr in range(64):
            victim = cache.victim_for(addr)
            if victim is not None:
                cache.remove(victim.line_addr)
            cache.insert(_entry(addr))
        assert len(cache) <= cache.geometry.lines
        for set_index in range(cache.geometry.sets):
            assert cache.set_occupancy(set_index) <= cache.geometry.ways
