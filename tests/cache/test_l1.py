"""Private L1 cache behaviour."""

import pytest

from repro.cache.l1 import L1Cache
from repro.common.params import CacheGeometry
from repro.common.types import MESIState


@pytest.fixture
def l1():
    return L1Cache(CacheGeometry(sets=2, ways=2))


class TestProbeHit:
    def test_read_hit_any_valid_state(self, l1):
        l1.insert(0, MESIState.SHARED)
        assert l1.probe_hit(0, write=False) is not None

    def test_write_hit_requires_writable(self, l1):
        l1.insert(0, MESIState.SHARED)
        assert l1.probe_hit(0, write=True) is None

    def test_write_hit_on_exclusive(self, l1):
        l1.insert(0, MESIState.EXCLUSIVE)
        assert l1.probe_hit(0, write=True) is not None

    def test_write_hit_on_modified(self, l1):
        l1.insert(0, MESIState.MODIFIED)
        assert l1.probe_hit(0, write=True) is not None

    def test_miss(self, l1):
        assert l1.probe_hit(0, write=False) is None


class TestInsert:
    def test_returns_victim_when_full(self, l1):
        l1.insert(0, MESIState.SHARED)
        l1.insert(2, MESIState.SHARED)  # same set (2 sets)
        _entry, victim = l1.insert(4, MESIState.SHARED)
        assert victim is not None
        assert victim.line_addr == 0  # LRU

    def test_upgrade_in_place(self, l1):
        l1.insert(0, MESIState.SHARED)
        entry, victim = l1.insert(0, MESIState.MODIFIED)
        assert victim is None
        assert entry.state == MESIState.MODIFIED
        assert len(l1) == 1

    def test_victim_preserves_dirty_flag(self, l1):
        entry, _ = l1.insert(0, MESIState.MODIFIED)
        entry.dirty = True
        l1.insert(2, MESIState.SHARED)
        _entry, victim = l1.insert(4, MESIState.SHARED)
        assert victim.dirty


class TestInvalidate:
    def test_removes_line(self, l1):
        l1.insert(0, MESIState.SHARED)
        removed = l1.invalidate(0)
        assert removed is not None
        assert l1.lookup(0) is None

    def test_missing_line(self, l1):
        assert l1.invalidate(0) is None


class TestDowngrade:
    def test_modified_reports_dirty(self, l1):
        entry, _ = l1.insert(0, MESIState.MODIFIED)
        assert l1.downgrade(0) is True
        assert entry.state == MESIState.SHARED
        assert not entry.dirty

    def test_clean_exclusive_not_dirty(self, l1):
        l1.insert(0, MESIState.EXCLUSIVE)
        assert l1.downgrade(0) is False
        assert l1.lookup(0).state == MESIState.SHARED

    def test_dirty_flag_reported(self, l1):
        entry, _ = l1.insert(0, MESIState.EXCLUSIVE)
        entry.dirty = True
        assert l1.downgrade(0) is True

    def test_missing_line(self, l1):
        assert l1.downgrade(0) is False
