"""LLC slice: home/replica coexistence rules."""

import pytest

from repro.cache.entries import HomeEntry, ReplicaEntry
from repro.cache.llc import LLCSlice
from repro.cache.replacement import ModifiedLRUPolicy
from repro.coherence.sharers import FullMapSharers
from repro.common.params import CacheGeometry
from repro.common.types import MESIState


@pytest.fixture
def llc():
    return LLCSlice(0, CacheGeometry(sets=4, ways=2), ModifiedLRUPolicy())


def _home(addr):
    return HomeEntry(addr, FullMapSharers())


def _replica(addr):
    return ReplicaEntry(addr, MESIState.SHARED, reuse_max=3)


class TestTypedLookups:
    def test_home_lookup(self, llc):
        llc.insert(_home(0))
        assert llc.home(0) is not None
        assert llc.replica(0) is None

    def test_replica_lookup(self, llc):
        llc.insert(_replica(0))
        assert llc.replica(0) is not None
        assert llc.home(0) is None

    def test_generic_lookup(self, llc):
        llc.insert(_home(0))
        assert llc.lookup(0) is not None
        assert llc.lookup(1) is None


class TestEitherOrInvariant:
    def test_home_then_replica_rejected(self, llc):
        llc.insert(_home(0))
        with pytest.raises(RuntimeError, match="cannot insert"):
            llc.insert(_replica(0))

    def test_replica_then_home_rejected(self, llc):
        llc.insert(_replica(0))
        with pytest.raises(RuntimeError, match="cannot insert"):
            llc.insert(_home(0))

    def test_replace_after_remove(self, llc):
        llc.insert(_replica(0))
        llc.remove(0)
        llc.insert(_home(0))
        assert llc.home(0) is not None


class TestCounts:
    def test_replica_and_home_counts(self, llc):
        llc.insert(_home(0))
        llc.insert(_home(1))
        llc.insert(_replica(2))
        assert llc.home_count() == 2
        assert llc.replica_count() == 1
        assert len(llc) == 3

    def test_replica_reuse_starts_at_one(self, llc):
        replica = _replica(0)
        assert replica.reuse.value == 1

    def test_utilization(self, llc):
        assert llc.utilization() == 0.0
        llc.insert(_home(0))
        assert llc.utilization() == pytest.approx(1 / 8)
