"""Lease lifecycle edge cases for the shared-filesystem work queue."""

import json
import time

import pytest

from repro.experiments.service import QueueConfig, QueueError, WorkQueue
from repro.experiments.service.queue import shard_name


@pytest.fixture()
def queue(tmp_path):
    return WorkQueue.create(
        tmp_path / "q", num_shards=2, lease_ttl=0.2, max_attempts=3,
        retry_backoff=0.05,
    )


def submit_one(queue, task_id="task-1", payload=None):
    assert queue.submit(task_id, payload or {"n": 1})
    return task_id


class TestSubmission:
    def test_submit_is_idempotent(self, queue):
        assert queue.submit("t", {"n": 1})
        assert not queue.submit("t", {"n": 2})

    def test_submit_skips_done_tasks(self, queue):
        submit_one(queue, "t")
        lease = queue.claim("w1")
        queue.complete(lease)
        assert not queue.submit("t", {"n": 1})

    def test_sharding_is_stable(self, queue):
        assert queue.shard_of("t") == queue.shard_of("t")
        assert 0 <= queue.shard_of("t") < queue.config.num_shards


class TestClaiming:
    def test_claim_returns_payload(self, queue):
        submit_one(queue, "t", {"n": 42})
        lease = queue.claim("w1")
        assert lease.task_id == "t"
        assert lease.payload == {"n": 42}
        assert lease.attempts == 0

    def test_claimed_task_is_not_reclaimable(self, queue):
        submit_one(queue, "t")
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None

    def test_empty_queue_claims_none(self, queue):
        assert queue.claim("w1") is None

    def test_work_stealing_from_other_shards(self, queue):
        submit_one(queue, "t")
        shard = queue.shard_of("t")
        other = (shard + 1) % queue.config.num_shards
        # A worker preferring the *other* shard still drains this one.
        lease = queue.claim("thief", preferred_shards=(other,))
        assert lease is not None and lease.shard == shard

    def test_preferred_shard_scanned_first(self, queue):
        # Find ids landing in distinct shards.
        ids = {}
        index = 0
        while len(ids) < 2:
            task_id = f"task-{index}"
            ids.setdefault(queue.shard_of(task_id), task_id)
            index += 1
        for task_id in ids.values():
            submit_one(queue, task_id)
        lease = queue.claim("w1", preferred_shards=(1,))
        assert lease.shard == 1


class TestExpiryAndRequeue:
    def test_expired_lease_is_requeued_with_attempt_count(self, queue):
        submit_one(queue, "t")
        queue.claim("w1")
        assert queue.reap_expired() == []  # still within TTL
        time.sleep(0.25)
        assert queue.reap_expired() == ["t"]
        # Backoff: not immediately claimable, then claimable again.
        deadline = time.time() + 2.0
        lease = None
        while lease is None and time.time() < deadline:
            lease = queue.claim("w2")
            time.sleep(0.02)
        assert lease is not None
        assert lease.attempts == 1
        assert "lease expired" in queue._read(
            queue._leased_path("t")
        )["errors"][0]

    def test_backoff_grows_exponentially(self, queue):
        submit_one(queue, "t")
        lease = queue.claim("w1")
        queue.fail(lease, "boom-1")
        record = json.loads(
            (queue.root / "pending" / shard_name(queue.shard_of("t"))
             / "t.json").read_text()
        )
        first_delay = record["not_before"] - time.time()
        assert 0 < first_delay <= queue.config.retry_backoff + 0.05

    def test_completion_after_expiry_reports_lost_lease(self, queue):
        submit_one(queue, "t")
        lease = queue.claim("w1")
        time.sleep(0.25)
        queue.reap_expired()
        # The original worker finishes late: marker written, but it
        # learns the lease lapsed.
        assert queue.complete(lease) is False
        assert queue.is_done("t")

    def test_done_marker_drops_requeued_duplicate(self, queue):
        submit_one(queue, "t")
        lease = queue.claim("w1")
        time.sleep(0.25)
        queue.reap_expired()  # duplicate now pending
        assert queue.complete(lease) is False
        # The duplicate must not be claimable: the claim scan sees the
        # done marker and unlinks it.
        deadline = time.time() + 1.0
        while time.time() < deadline:
            assert queue.claim("w2") is None
            if not list(queue.pending_ids()):
                break
            time.sleep(0.02)
        assert list(queue.pending_ids()) == []


class TestDoubleCommit:
    def test_double_commit_of_same_fingerprint_is_idempotent(self, queue):
        # Two workers racing the same content address (requeue raced a
        # slow original): both complete; one owns the lease, the marker
        # survives both.
        submit_one(queue, "t")
        lease = queue.claim("w1")
        assert queue.complete(lease, served_from="simulation") is True
        assert queue.complete(lease, served_from="simulation") is False
        assert queue.is_done("t")
        assert queue.counts()["done"] == 1


class TestRetryExhaustion:
    def test_exhaustion_surfaces_every_recorded_error(self, queue):
        submit_one(queue, "t")
        for attempt in range(queue.config.max_attempts):
            lease = None
            deadline = time.time() + 2.0
            while lease is None and time.time() < deadline:
                lease = queue.claim(f"w{attempt}")
                time.sleep(0.02)
            assert lease is not None, f"attempt {attempt} never claimable"
            status = queue.fail(lease, f"boom-{attempt}")
        assert status == "failed"
        failure = queue.failure("t")
        assert failure["attempts"] == queue.config.max_attempts
        assert failure["errors"][-1] == "boom-2"
        assert queue.claim("w9") is None
        assert queue.failures().keys() == {"t"}


class TestLifecycleMisc:
    def test_renew_extends_deadline(self, queue):
        submit_one(queue, "t")
        lease = queue.claim("w1")
        renewed = queue.renew(lease, ttl=30.0)
        assert renewed.deadline > lease.deadline
        time.sleep(0.25)
        assert queue.reap_expired() == []

    def test_renew_lost_lease_returns_none(self, queue):
        submit_one(queue, "t")
        lease = queue.claim("w1")
        time.sleep(0.25)
        queue.reap_expired()
        assert queue.renew(lease) is None

    def test_stop_sentinel_and_counts(self, queue):
        submit_one(queue, "t")
        assert queue.counts() == {
            "pending": 1, "leased": 0, "done": 0, "failed": 0,
        }
        assert not queue.stopped
        queue.stop()
        assert queue.stopped

    def test_create_clears_previous_stop_sentinel(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        queue.stop()
        reopened = WorkQueue.create(tmp_path / "q")
        assert not reopened.stopped

    def test_open_missing_queue_raises(self, tmp_path):
        with pytest.raises(QueueError, match="queue.json missing"):
            WorkQueue.open(tmp_path / "nope")

    def test_open_reads_broker_config(self, tmp_path):
        WorkQueue.create(tmp_path / "q", num_shards=5, lease_ttl=7.0)
        opened = WorkQueue.open(tmp_path / "q")
        assert opened.config == QueueConfig(
            num_shards=5, lease_ttl=7.0, max_attempts=3, retry_backoff=0.5
        )

    def test_version_skew_rejected(self, tmp_path):
        WorkQueue.create(tmp_path / "q")
        meta_path = tmp_path / "q" / "queue.json"
        meta = json.loads(meta_path.read_text())
        meta["queue_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(QueueError, match="version"):
            WorkQueue.open(tmp_path / "q")
