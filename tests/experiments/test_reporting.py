"""Reporting helpers: tables, normalization, means."""

import pytest

from repro.experiments.reporting import (
    arithmetic_mean,
    format_table,
    geomean,
    normalize_to,
    stacked_fractions,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["Name", "Value"], [["alpha", 1.5], ["b", 22.25]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[2]
        assert "1.500" in text
        assert "22.250" in text

    def test_column_width_accommodates_cells(self):
        text = format_table(["X"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in text

    def test_custom_float_format(self):
        text = format_table(["V"], [[0.123456]], float_format="{:.1f}")
        assert "0.1" in text


class TestNormalization:
    def test_normalize_to_baseline(self):
        normalized = normalize_to({"a": 2.0, "b": 4.0}, "a")
        assert normalized == {"a": 1.0, "b": 2.0}

    def test_zero_baseline_rejected(self):
        with pytest.raises(ZeroDivisionError):
            normalize_to({"a": 0.0, "b": 1.0}, "a")

    def test_stacked_fractions(self):
        fractions = stacked_fractions({"x": 1.0, "y": 3.0})
        assert fractions["x"] == pytest.approx(0.25)
        assert fractions["y"] == pytest.approx(0.75)

    def test_stacked_fractions_empty(self):
        assert stacked_fractions({"x": 0.0}) == {"x": 0.0}


class TestMeans:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_arithmetic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])
