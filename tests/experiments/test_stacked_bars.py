"""Stacked-bar text rendering."""

import pytest

from repro.experiments.reporting import render_stacked_bars


class TestStackedBars:
    def test_basic_rendering(self):
        text = render_stacked_bars(
            {
                "S-NUCA": {"LLC": 0.6, "DRAM": 0.4},
                "RT-3": {"LLC": 0.3, "DRAM": 0.4},
            },
            width=20,
            title="Demo",
        )
        assert "Demo" in text
        assert "S-NUCA" in text
        assert "legend:" in text
        assert "LLC" in text and "DRAM" in text

    def test_bar_lengths_proportional(self):
        text = render_stacked_bars(
            {"full": {"x": 1.0}, "half": {"x": 0.5}}, width=40
        )
        lines = [line for line in text.splitlines() if "|" in line]
        full_bar = lines[0].split("|")[1]
        half_bar = lines[1].split("|")[1]
        assert full_bar.count("█") == 40
        assert half_bar.count("█") == 20

    def test_totals_annotated(self):
        text = render_stacked_bars({"a": {"x": 2.0}, "b": {"x": 1.0}}, width=10)
        assert "1.000" in text  # bar a (the max) normalized to 1
        assert "0.500" in text

    def test_missing_components_treated_as_zero(self):
        text = render_stacked_bars(
            {"a": {"x": 1.0, "y": 1.0}, "b": {"x": 1.0}}, width=10
        )
        assert "b" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_stacked_bars({}, width=10)

    def test_zero_totals_rejected(self):
        with pytest.raises(ValueError):
            render_stacked_bars({"a": {"x": 0.0}}, width=10)

    def test_distinct_glyphs_per_component(self):
        text = render_stacked_bars(
            {"bar": {"one": 0.5, "two": 0.5}}, width=20
        )
        legend_line = [line for line in text.splitlines() if "legend" in line][0]
        glyphs = [token.split()[0] for token in legend_line.split("legend: ")[1].split("  ")]
        assert len(set(glyphs)) == 2
