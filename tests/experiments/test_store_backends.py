"""StoreBackend protocol: pluggable persistence behind ResultStore."""

import json

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup, run_one
from repro.experiments.store import (
    CACHE_ENV_VAR,
    CACHE_MAX_MB_ENV_VAR,
    JsonDirBackend,
    MemoryBackend,
    ResultStore,
    SharedDirBackend,
    StoreBackend,
    max_bytes_from_env,
    open_disk_backend,
)


@pytest.fixture(scope="module")
def result():
    setup = ExperimentSetup(MachineConfig.small(), scale=0.05, seed=5)
    return run_one(setup, "S-NUCA", "DEDUP")


KEY = "a" * 64
OTHER = "b" * 64


class TestProtocol:
    def test_all_backends_satisfy_the_protocol(self, tmp_path):
        for backend in (
            MemoryBackend(),
            JsonDirBackend(tmp_path / "flat"),
            SharedDirBackend(tmp_path / "shared"),
        ):
            assert isinstance(backend, StoreBackend)

    def test_persistence_flags(self, tmp_path):
        assert not MemoryBackend().persistent
        assert JsonDirBackend(tmp_path).persistent
        assert SharedDirBackend(tmp_path).persistent

    def test_load_unknown_key_is_none(self, tmp_path):
        for backend in (
            MemoryBackend(),
            JsonDirBackend(tmp_path / "flat"),
            SharedDirBackend(tmp_path / "shared"),
        ):
            assert backend.load(KEY) is None

    def test_store_load_delete_roundtrip(self, tmp_path):
        payload = {"scheme": "X", "value": 1.25}
        for backend in (
            MemoryBackend(),
            JsonDirBackend(tmp_path / "flat"),
            SharedDirBackend(tmp_path / "shared"),
        ):
            assert backend.store(KEY, payload)
            assert dict(backend.load(KEY)) == payload
            assert list(backend.keys()) == [KEY]
            assert backend.delete(KEY)
            assert backend.load(KEY) is None
            assert not backend.delete(KEY)


class TestSharedLayout:
    def test_entries_fan_out_by_key_prefix(self, tmp_path):
        backend = SharedDirBackend(tmp_path)
        backend.store(KEY, {"v": 1})
        assert (tmp_path / KEY[:2] / f"{KEY}.json").is_file()

    def test_marker_written_eagerly(self, tmp_path):
        SharedDirBackend(tmp_path / "s")
        assert (tmp_path / "s" / SharedDirBackend.MARKER).exists()

    def test_autodetect_empty_shared_store(self, tmp_path):
        # A worker opening a store the broker just created (still empty)
        # must agree on the layout, or its commits land where the broker
        # never looks.
        SharedDirBackend(tmp_path / "s")
        opened = open_disk_backend(tmp_path / "s")
        assert isinstance(opened, SharedDirBackend)

    def test_autodetect_populated_stores(self, tmp_path):
        shared = SharedDirBackend(tmp_path / "s")
        shared.store(KEY, {"v": 1})
        flat = JsonDirBackend(tmp_path / "f")
        flat.store(KEY, {"v": 1})
        assert isinstance(open_disk_backend(tmp_path / "s"), SharedDirBackend)
        detected_flat = open_disk_backend(tmp_path / "f")
        assert type(detected_flat) is JsonDirBackend

    def test_cross_instance_visibility(self, tmp_path):
        # Two stores over the same directory model two processes.
        writer = ResultStore.shared(tmp_path / "s")
        reader = ResultStore.shared(tmp_path / "s")
        assert reader.fetch(KEY) is None

    def test_shared_env_prefix(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, f"shared:{tmp_path / 's'}")
        store = ResultStore.from_env()
        assert isinstance(store.backend, SharedDirBackend)
        assert store.root == tmp_path / "s"


class TestResultRoundtrip:
    def test_shared_backend_roundtrips_results_exactly(self, tmp_path, result):
        writer = ResultStore.shared(tmp_path / "s")
        assert writer.put(KEY, result)
        reader = ResultStore.shared(tmp_path / "s")
        loaded = reader.get(KEY)
        assert loaded is not None
        assert loaded.stats.completion_time == result.stats.completion_time
        assert loaded.energy_breakdown == result.energy_breakdown
        assert reader.hits == 1 and reader.disk_hits == 1


class TestSizeBound:
    def _fill(self, backend, count, size=2000):
        pad = "x" * size
        for index in range(count):
            key = f"{index:02d}" + "0" * 62
            assert backend.store(key, {"id": index, "pad": pad})

    def test_lru_eviction_keeps_store_under_bound(self, tmp_path):
        backend = JsonDirBackend(tmp_path, max_bytes=8000)
        self._fill(backend, 10)
        assert backend.stats().total_bytes <= 8000
        assert backend.evictions > 0

    def test_unbounded_backend_never_evicts(self, tmp_path):
        backend = JsonDirBackend(tmp_path)
        self._fill(backend, 10)
        assert backend.stats().entries == 10
        assert backend.evictions == 0

    def test_read_refreshes_recency(self, tmp_path):
        import os
        import time

        backend = JsonDirBackend(tmp_path, max_bytes=7000)
        self._fill(backend, 3)
        first = "00" + "0" * 62
        # Age every entry, then touch the first: it must survive the
        # eviction wave that a new write triggers.
        stale = time.time() - 3600
        for path in tmp_path.glob("*.json"):
            os.utime(path, (stale, stale))
        assert backend.load(first) is not None
        self._fill(backend, 1)
        assert backend.load(first) is not None

    def test_max_mb_env_var(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_MAX_MB_ENV_VAR, "2")
        assert max_bytes_from_env() == 2 * 1024 * 1024
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        store = ResultStore.from_env()
        assert store.backend.max_bytes == 2 * 1024 * 1024

    def test_malformed_max_mb_ignored(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_MB_ENV_VAR, "not-a-number")
        assert max_bytes_from_env() is None


class TestMaintenance:
    def test_purge_reports_what_was_removed(self, tmp_path):
        backend = SharedDirBackend(tmp_path)
        backend.store(KEY, {"v": 1})
        backend.store(OTHER, {"v": 2})
        removed = backend.purge()
        assert removed.entries == 2
        assert removed.total_bytes > 0
        assert backend.stats().entries == 0

    def test_stats_describe_mentions_location(self, tmp_path):
        backend = JsonDirBackend(tmp_path)
        backend.store(KEY, {"v": 1})
        line = backend.stats().describe()
        assert str(tmp_path) in line
        assert "1 entries" in line

    def test_torn_entry_reads_as_miss(self, tmp_path):
        backend = SharedDirBackend(tmp_path)
        backend.store(KEY, {"v": 1, "pad": "x" * 100})
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        path.write_text(path.read_text()[:10])
        assert backend.load(KEY) is None


class TestCustomBackendPluggability:
    def test_result_store_accepts_any_backend(self, result):
        class CountingBackend(MemoryBackend):
            def __init__(self):
                super().__init__()
                self.stores = 0

            def store(self, key, payload):
                self.stores += 1
                json.dumps(payload)  # must be JSON-serializable
                return super().store(key, payload)

        backend = CountingBackend()
        store = ResultStore(backend=backend)
        store.put(KEY, result)
        assert backend.stores == 1
        fresh = ResultStore(backend=backend)
        assert fresh.get(KEY) is not None
