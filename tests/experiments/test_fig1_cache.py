"""Figure 1 run-length profiles cached through the ResultStore."""

import pytest

from repro.common.params import MachineConfig
from repro.common.types import LineClass
from repro.experiments.fig1_runlength import (
    profile_fingerprint,
    render_fig1,
    run_fig1,
)
from repro.experiments.runner import ExperimentSetup
from repro.experiments.store import ResultStore
from repro.sim.profiler import (
    PROFILE_VERSION,
    decode_profile,
    encode_profile,
    profile_run_lengths,
)


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.05, seed=4)


class TestCodec:
    def test_roundtrip_is_exact(self, setup):
        traces = setup.trace_for("DEDUP")
        profile = profile_run_lengths(setup.config, traces)
        setup.release_decoded("DEDUP")
        rebuilt = decode_profile(encode_profile(profile))
        assert rebuilt.benchmark == profile.benchmark
        assert rebuilt.mass == profile.mass
        assert rebuilt.fractions() == profile.fractions()

    def test_version_skew_decodes_to_none(self):
        payload = {"profile_version": PROFILE_VERSION + 1,
                   "benchmark": "X", "mass": []}
        assert decode_profile(payload) is None

    def test_malformed_payload_decodes_to_none(self):
        assert decode_profile({"benchmark": "X"}) is None
        assert decode_profile({
            "profile_version": PROFILE_VERSION,
            "benchmark": "X",
            "mass": [["NOT_A_CLASS", "[1-2]", 3]],
        }) is None


class TestFingerprint:
    def test_distinct_from_simulation_addresses(self, setup):
        payload = profile_fingerprint("DEDUP", setup)
        assert payload["kind"] == "fig1-runlength"
        assert payload["profile_version"] == PROFILE_VERSION

    def test_setup_parameters_enter_the_address(self, setup):
        other = ExperimentSetup(setup.config, scale=0.06, seed=4)
        store = ResultStore.memory()
        assert store.key_for(profile_fingerprint("DEDUP", setup)) \
            != store.key_for(profile_fingerprint("DEDUP", other))
        assert store.key_for(profile_fingerprint("DEDUP", setup)) \
            != store.key_for(profile_fingerprint("FFT", setup))


class TestStoreServed:
    def test_second_run_is_served_from_the_store(self, setup, tmp_path):
        cold = ResultStore(tmp_path / "cache")
        first = run_fig1(setup, ["DEDUP"], store=cold)
        assert cold.misses == 1 and cold.hits == 0

        warm = ResultStore(tmp_path / "cache")
        second = run_fig1(setup, ["DEDUP"], store=warm)
        assert warm.misses == 0 and warm.hits == 1 and warm.disk_hits == 1

        assert second["DEDUP"].mass == first["DEDUP"].mass
        assert render_fig1(second) == render_fig1(first)

    def test_no_store_still_works(self, setup):
        profiles = run_fig1(setup, ["DEDUP"])
        assert profiles["DEDUP"].mass
        assert sum(profiles["DEDUP"].mass.values()) > 0
        assert set(cls for cls, _bucket in profiles["DEDUP"].mass) \
            <= set(LineClass)

    def test_stale_version_reprofiles(self, setup, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = store.key_for(profile_fingerprint("DEDUP", setup))
        store.put_payload(key, {"profile_version": PROFILE_VERSION + 1,
                                "benchmark": "DEDUP", "mass": []})
        fresh = ResultStore(tmp_path / "cache")
        profiles = run_fig1(setup, ["DEDUP"], store=fresh)
        # The skewed payload is not served; the profile is rebuilt and
        # the good payload overwrites the stale one.
        assert profiles["DEDUP"].mass
        warm = ResultStore(tmp_path / "cache")
        assert decode_profile(warm.get_payload(key)) is not None
