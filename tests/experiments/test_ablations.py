"""Design-alternative ablation harnesses."""

import pytest

from repro.common.params import MachineConfig
from repro.experiments.ablations import (
    render_classifier_organization_ablation,
    render_replica_strategy_ablation,
    render_tla_ablation,
    run_classifier_organization_ablation,
    run_replica_strategy_ablation,
    run_tla_ablation,
)
from repro.experiments.runner import ExperimentSetup


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.15, seed=2)


class TestTlaAblation:
    def test_variants_present(self, setup):
        results = run_tla_ablation(setup, benchmarks=["DEDUP"])
        assert set(results["DEDUP"]) == {"modified_lru", "lru", "tla"}

    def test_tla_sends_hints(self, setup):
        # DEDUP is private-heavy, so its L1 hit stream feeds the hints.
        results = run_tla_ablation(setup, benchmarks=["DEDUP"])
        assert results["DEDUP"]["tla"].stats.counters.get("tla_hints_sent", 0) > 0
        assert results["DEDUP"]["lru"].stats.counters.get("tla_hints_sent", 0) == 0

    def test_render(self, setup):
        results = run_tla_ablation(setup, benchmarks=["DEDUP"])
        text = render_tla_ablation(results)
        assert "TLA" in text


class TestReplicaStrategyAblation:
    def test_shared_only_creates_fewer_em_replicas(self, setup):
        results = run_replica_strategy_ablation(setup, benchmarks=["LU-NC"])
        row = results["LU-NC"]
        assert (
            row["shared_only"].stats.counters.get("replicas_created", 0)
            <= row["all_states"].stats.counters.get("replicas_created", 0)
        )

    def test_render(self, setup):
        results = run_replica_strategy_ablation(setup, benchmarks=["LU-NC"])
        text = render_replica_strategy_ablation(results)
        assert "Shared-only" in text


class TestOrganizationAblation:
    def test_capacities_reported(self, setup):
        results = run_classifier_organization_ablation(
            setup, benchmarks=["DEDUP"], sparse_entries=(64, 1024)
        )
        assert set(results["DEDUP"]) == {"incache", "sparse-64", "sparse-1024"}

    def test_render(self, setup):
        results = run_classifier_organization_ablation(
            setup, benchmarks=["DEDUP"], sparse_entries=(64,)
        )
        text = render_classifier_organization_ablation(results)
        assert "sparse" in text
