"""Command-line interface tests (registry-generated subcommands)."""

import pytest

from repro.experiments.__main__ import COMMANDS, _expand, build_parser, main
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import command_names, get_command
from repro.experiments.store import ResultStore


class TestParser:
    def test_commands_listed(self):
        for command in ("fig1", "fig6", "summary", "storage", "all",
                        "tla", "strategy", "organization", "breakdown"):
            assert command in COMMANDS

    def test_commands_generated_from_registry(self):
        assert COMMANDS == (*command_names(), "all")

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.machine == "small"
        assert args.scale == 1.0
        assert args.seed == 1
        assert args.benchmarks is None
        assert args.no_cache is False

    def test_machine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--machine", "huge"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_kernel_accepts_auto(self):
        args = build_parser().parse_args(["fig6", "--kernel", "auto"])
        assert args.kernel == "auto"

    def test_expand_all_covers_every_registered_command(self):
        assert _expand("all") == command_names()
        assert _expand("fig6") == ("fig6",)


class TestList:
    def test_list_prints_catalog(self, capsys):
        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        for name in command_names():
            assert name in captured.out
        assert "[grid" in captured.out
        assert "[report]" in captured.out

    def test_command_required_without_list(self):
        with pytest.raises(SystemExit):
            main([])


class TestBenchmarkValidation:
    def test_unknown_benchmark_fails_fast_with_valid_list(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig6", "--benchmarks", "DEDUP,NOPE"])
        captured = capsys.readouterr()
        assert "'NOPE'" in captured.err
        assert "BARNES" in captured.err  # valid names are spelled out


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "Architectural Parameter" in captured.out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        captured = capsys.readouterr()
        assert "BARNES" in captured.out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        captured = capsys.readouterr()
        assert "13.5 KB" in captured.out

    def test_paper_machine_table1(self, capsys):
        assert main(["table1", "--machine", "paper"]) == 0
        captured = capsys.readouterr()
        assert "64 @ 1 GHz" in captured.out


class TestSimulationCommands:
    """One small end-to-end CLI run (kept tiny for speed)."""

    def test_fig6_restricted(self, capsys):
        assert main([
            "fig6", "--scale", "0.05", "--benchmarks", "DEDUP",
        ]) == 0
        captured = capsys.readouterr()
        assert "Figure 6" in captured.out
        assert "DEDUP" in captured.out

    def test_breakdown(self, capsys):
        assert main([
            "breakdown", "--scale", "0.05", "--benchmarks", "DEDUP",
        ]) == 0
        captured = capsys.readouterr()
        assert "energy components" in captured.out
        assert "legend:" in captured.out

    def test_cache_stats_reported(self, capsys):
        store = ResultStore.memory()
        assert main(
            ["fig6", "--scale", "0.05", "--benchmarks", "DEDUP"], store=store
        ) == 0
        captured = capsys.readouterr()
        assert "result-store:" in captured.err
        assert store.misses == 7  # the seven comparison schemes


class TestAllDeduplicates:
    """`all` performs each unique (scheme, benchmark, config, seed,
    scale) simulation at most once — the ResultStore acceptance check."""

    SCALE = 0.05
    BENCH = "DEDUP"

    def _unique_grid_points(self):
        setup = ExperimentSetup.small(scale=self.SCALE, seed=1)
        probe = ResultStore.memory()
        keys = set()
        total = 0
        for name in command_names():
            command = get_command(name)
            if not command.is_grid:
                continue
            spec = command.build(setup, [self.BENCH])
            for point in spec.points:
                keys.add(probe.key_for(point.fingerprint(setup)))
                total += 1
        return keys, total

    def test_each_unique_simulation_runs_once(self, capsys):
        unique_keys, total_points = self._unique_grid_points()
        store = ResultStore.memory()
        assert main([
            "all", "--scale", str(self.SCALE), "--benchmarks", self.BENCH,
        ], store=store) == 0
        # fig1 caches its run-length profile through the same store: one
        # counted (payload) lookup for the single benchmark, a miss on
        # this first run.
        assert store.misses == len(unique_keys) + 1
        assert store.hits == total_points - len(unique_keys)
        assert store.hits > 0  # the figures genuinely share points
        captured = capsys.readouterr()
        assert "Figure 9a" in captured.out
        assert "Best RT by geomean EDP" in captured.out

    def test_second_invocation_served_from_disk(self, tmp_path, capsys):
        argv = ["fig9", "--scale", str(self.SCALE), "--benchmarks", self.BENCH]
        cold = ResultStore(tmp_path / "cache")
        warm = ResultStore(tmp_path / "cache")
        assert main(argv, store=cold) == 0
        assert main(argv, store=warm) == 0
        capsys.readouterr()
        assert cold.misses > 0 and cold.hits == 0
        assert warm.misses == 0
        assert warm.hit_rate() == 1.0
        assert warm.disk_hits == cold.misses


class TestUnifiedSurface:
    """One documented CLI; the old module paths forward with a pointer."""

    def test_store_maintenance_dispatches_through_main(
        self, tmp_path, capsys
    ):
        store_root = tmp_path / "cache"
        cold = ResultStore(store_root)
        assert main(
            ["fig9", "--scale", "0.02", "--benchmarks", "DEDUP"], store=cold
        ) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(store_root)]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out and str(store_root) in stats_out
        assert main(["store", "purge", "--store", str(store_root)]) == 0
        assert "purged" in capsys.readouterr().out
        assert main(["store", "stats", "--store", str(store_root)]) == 0
        assert "0 entries" in capsys.readouterr().out

    @pytest.mark.parametrize("module,expected", [
        ("repro.experiments", "--list"),
        ("repro.testing", "--help"),
    ])
    def test_deprecated_forwarders_work_and_point_at_repro(
        self, module, expected
    ):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = os.environ.copy()
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-m", module, expected],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout  # the command itself still renders
        assert "deprecated" in proc.stderr
        assert f"python -m repro {module.rsplit('.', 1)[1]}" in proc.stderr
