"""Command-line interface smoke tests (fast commands only)."""

import pytest

from repro.experiments.__main__ import COMMANDS, build_parser, main


class TestParser:
    def test_commands_listed(self):
        for command in ("fig1", "fig6", "summary", "storage", "all",
                        "tla", "strategy", "organization", "breakdown"):
            assert command in COMMANDS

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.machine == "small"
        assert args.scale == 1.0
        assert args.seed == 1
        assert args.benchmarks is None

    def test_machine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--machine", "huge"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "Architectural Parameter" in captured.out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        captured = capsys.readouterr()
        assert "BARNES" in captured.out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        captured = capsys.readouterr()
        assert "13.5 KB" in captured.out

    def test_paper_machine_table1(self, capsys):
        assert main(["table1", "--machine", "paper"]) == 0
        captured = capsys.readouterr()
        assert "64 @ 1 GHz" in captured.out


class TestSimulationCommands:
    """One small end-to-end CLI run (kept tiny for speed)."""

    def test_fig6_restricted(self, capsys):
        assert main([
            "fig6", "--scale", "0.05", "--benchmarks", "DEDUP",
        ]) == 0
        captured = capsys.readouterr()
        assert "Figure 6" in captured.out
        assert "DEDUP" in captured.out

    def test_breakdown(self, capsys):
        assert main([
            "breakdown", "--scale", "0.05", "--benchmarks", "DEDUP",
        ]) == 0
        captured = capsys.readouterr()
        assert "energy components" in captured.out
        assert "legend:" in captured.out
