"""Content-addressed ResultStore: hashing, accounting, disk round-trip."""

import json

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup, run_one
from repro.experiments.spec import RunPoint
from repro.experiments.store import (
    CACHE_ENV_VAR,
    ResultStore,
    decode_result,
    default_cache_dir,
    encode_result,
    fingerprint_key,
)


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.05, seed=2)


@pytest.fixture(scope="module")
def result(setup):
    return run_one(setup, "RT-3", "DEDUP")


class TestKeying:
    def test_key_is_stable_and_hex(self):
        fingerprint = {"scheme": "RT-3", "benchmark": "DEDUP", "seed": 1}
        key = fingerprint_key(fingerprint)
        assert key == fingerprint_key(dict(reversed(list(fingerprint.items()))))
        assert len(key) == 64
        int(key, 16)  # hex digest

    def test_different_fingerprints_different_keys(self):
        first = fingerprint_key({"scheme": "RT-3", "seed": 1})
        second = fingerprint_key({"scheme": "RT-3", "seed": 2})
        assert first != second


class TestAccounting:
    def test_get_or_run_counts_and_memoizes(self, result):
        store = ResultStore.memory()
        calls = []

        def thunk():
            calls.append(1)
            return result

        first = store.get_or_run("key", thunk)
        second = store.get_or_run("key", thunk)
        assert first is result and second is result
        assert len(calls) == 1
        assert (store.hits, store.misses) == (1, 1)
        assert store.hit_rate() == 0.5

    def test_idle_store_reports_zero_rate(self):
        store = ResultStore.memory()
        assert store.hit_rate() == 0.0
        assert "0 hits" in store.describe()


class TestDiskRoundTrip:
    def test_exact_round_trip(self, result):
        payload = json.loads(json.dumps(encode_result(result)))
        restored = decode_result(payload)
        assert restored.scheme == result.scheme
        assert restored.benchmark == result.benchmark
        assert restored.asr_level == result.asr_level
        assert restored.energy_breakdown == result.energy_breakdown
        assert restored.total_energy == result.total_energy  # bit-exact floats
        assert restored.completion_time == result.completion_time
        assert restored.stats.counters == result.stats.counters
        assert restored.stats.energy_counts == result.stats.energy_counts
        assert restored.stats.latency == result.stats.latency
        assert restored.stats.miss_status == result.stats.miss_status
        assert restored.stats.core_finish == result.stats.core_finish

    def test_persisted_across_store_instances(self, tmp_path, result):
        first = ResultStore(tmp_path / "cache")
        assert first.get("deadbeef") is None
        first.put("deadbeef", result)

        second = ResultStore(tmp_path / "cache")
        restored = second.get("deadbeef")
        assert restored is not None
        assert second.disk_hits == 1
        assert restored.completion_time == result.completion_time
        assert restored.stats.counters == result.stats.counters

    def test_corrupt_file_is_a_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put("cafe", result)
        (tmp_path / "cafe.json").write_text("{not json", encoding="utf-8")
        fresh = ResultStore(tmp_path)
        assert fresh.get("cafe") is None
        assert fresh.misses == 1

    def test_memory_store_touches_no_disk(self, tmp_path, result, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = ResultStore.memory()
        store.put("beef", result)
        assert list(tmp_path.iterdir()) == []


class TestEnvironmentControls:
    def test_env_path_selects_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "here"))
        store = ResultStore.from_env()
        assert store.root == tmp_path / "here"

    @pytest.mark.parametrize("value", ["0", "off", "none", "OFF", "false"])
    def test_env_disables_disk(self, value, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert ResultStore.from_env().root is None

    def test_default_location_used_when_unset(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert ResultStore.from_env().root == default_cache_dir()

    @pytest.mark.parametrize("value", ["", "   ", "\t"])
    def test_empty_value_falls_back_to_default(self, value, monkeypatch):
        """An empty/whitespace value is treated as unset (it used to
        disable persistence): ``REPRO_RESULT_CACHE= cmd`` and unset-var
        interpolation mean "no opinion", and it must in particular never
        resolve to Path("") — the current working directory."""
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        store = ResultStore.from_env()
        assert store.root == default_cache_dir()
        assert str(store.root) != "."

    def test_surrounding_whitespace_is_stripped_from_paths(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CACHE_ENV_VAR, f"  {tmp_path / 'padded'}  ")
        assert ResultStore.from_env().root == tmp_path / "padded"


class TestConcurrentWriters:
    """Regression: the fixed ``<key>.json.tmp`` temp name let two
    ``--parallel`` invocations sharing one cache directory interleave
    writes and ``os.replace`` a torn payload."""

    def test_tmp_names_are_unique_per_writer_and_write(self, tmp_path):
        first = ResultStore(tmp_path)
        second = ResultStore(tmp_path)
        names = {
            first._tmp_path_for("cafe"),
            first._tmp_path_for("cafe"),
            second._tmp_path_for("cafe"),
        }
        assert len(names) == 3
        for name in names:
            assert name.name.startswith("cafe.json.")
            assert name.suffix == ".tmp"

    def test_interleaved_writers_never_tear_the_payload(
        self, tmp_path, result, monkeypatch
    ):
        """Serialize the historical failure: writer B re-creates (truncates)
        the temp file after writer A has written it but before A's rename.
        With per-writer temp names the schedule is harmless."""
        import repro.experiments.store as store_module

        writer_a = ResultStore(tmp_path)
        writer_b = ResultStore(tmp_path)
        real_replace = store_module.os.replace
        replaced = []

        def delayed_replace(src, dst):
            # A's rename runs only after B's full write+rename completed.
            if not replaced:
                replaced.append(src)
                writer_b.put("cafe", result)
            real_replace(src, dst)

        monkeypatch.setattr(store_module.os, "replace", delayed_replace)
        writer_a.put("cafe", result)
        payload = json.loads((tmp_path / "cafe.json").read_text(encoding="utf-8"))
        assert payload["scheme"] == result.scheme  # parseable, not torn
        fresh = ResultStore(tmp_path)
        assert fresh.get("cafe") is not None
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stale_tmp_litter_is_swept_on_open(self, tmp_path, result):
        import subprocess

        store = ResultStore(tmp_path)
        store.put("cafe", result)
        # A reaped child's pid is a guaranteed-dead writer stamp.
        child = subprocess.Popen(["true"])
        child.wait()
        (tmp_path / "dead.json.tmp").write_text("{torn", encoding="utf-8")
        (tmp_path / f"beef.json.{child.pid}.3.tmp").write_text(
            "{torn", encoding="utf-8"
        )
        # Foreign files in a shared directory are not the store's to sweep.
        (tmp_path / "notes.tmp").write_text("keep me", encoding="utf-8")
        reopened = ResultStore(tmp_path)
        assert list(tmp_path.glob("*.json.tmp")) == []
        assert list(tmp_path.glob("*.json.*.tmp")) == []
        assert (tmp_path / "notes.tmp").read_text(encoding="utf-8") == "keep me"
        # Real payloads survive the sweep.
        assert reopened.get("cafe") is not None

    def test_sweep_spares_in_flight_files_of_live_writers(self, tmp_path):
        """A concurrent invocation's pid-stamped temp file is an
        in-flight write, not litter — sweeping it would silently drop
        that writer's persistence (its os.replace fails)."""
        import os

        in_flight = tmp_path / f"cafe.json.{os.getpid()}.7.tmp"
        in_flight.write_text("{partial", encoding="utf-8")
        ResultStore(tmp_path)
        assert in_flight.exists()

    def test_open_on_missing_directory_is_harmless(self, tmp_path):
        store = ResultStore(tmp_path / "not-yet-created")
        assert store.get("cafe") is None


class TestInvalidation:
    def test_config_change_misses(self, setup, tmp_path, result):
        store = ResultStore(tmp_path)
        base_point = RunPoint("RT-3", "DEDUP")
        tuned_point = RunPoint(
            "RT-3", "DEDUP", config_overrides={"cluster_size": 4}
        )
        store.put(store.key_for(base_point.fingerprint(setup)), result)
        assert store.get(store.key_for(tuned_point.fingerprint(setup))) is None
        assert store.get(store.key_for(base_point.fingerprint(setup))) is not None
