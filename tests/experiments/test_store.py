"""Content-addressed ResultStore: hashing, accounting, disk round-trip."""

import json

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup, run_one
from repro.experiments.spec import RunPoint
from repro.experiments.store import (
    CACHE_ENV_VAR,
    ResultStore,
    decode_result,
    default_cache_dir,
    encode_result,
    fingerprint_key,
)


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.05, seed=2)


@pytest.fixture(scope="module")
def result(setup):
    return run_one(setup, "RT-3", "DEDUP")


class TestKeying:
    def test_key_is_stable_and_hex(self):
        fingerprint = {"scheme": "RT-3", "benchmark": "DEDUP", "seed": 1}
        key = fingerprint_key(fingerprint)
        assert key == fingerprint_key(dict(reversed(list(fingerprint.items()))))
        assert len(key) == 64
        int(key, 16)  # hex digest

    def test_different_fingerprints_different_keys(self):
        first = fingerprint_key({"scheme": "RT-3", "seed": 1})
        second = fingerprint_key({"scheme": "RT-3", "seed": 2})
        assert first != second


class TestAccounting:
    def test_get_or_run_counts_and_memoizes(self, result):
        store = ResultStore.memory()
        calls = []

        def thunk():
            calls.append(1)
            return result

        first = store.get_or_run("key", thunk)
        second = store.get_or_run("key", thunk)
        assert first is result and second is result
        assert len(calls) == 1
        assert (store.hits, store.misses) == (1, 1)
        assert store.hit_rate() == 0.5

    def test_idle_store_reports_zero_rate(self):
        store = ResultStore.memory()
        assert store.hit_rate() == 0.0
        assert "0 hits" in store.describe()


class TestDiskRoundTrip:
    def test_exact_round_trip(self, result):
        payload = json.loads(json.dumps(encode_result(result)))
        restored = decode_result(payload)
        assert restored.scheme == result.scheme
        assert restored.benchmark == result.benchmark
        assert restored.asr_level == result.asr_level
        assert restored.energy_breakdown == result.energy_breakdown
        assert restored.total_energy == result.total_energy  # bit-exact floats
        assert restored.completion_time == result.completion_time
        assert restored.stats.counters == result.stats.counters
        assert restored.stats.energy_counts == result.stats.energy_counts
        assert restored.stats.latency == result.stats.latency
        assert restored.stats.miss_status == result.stats.miss_status
        assert restored.stats.core_finish == result.stats.core_finish

    def test_persisted_across_store_instances(self, tmp_path, result):
        first = ResultStore(tmp_path / "cache")
        assert first.get("deadbeef") is None
        first.put("deadbeef", result)

        second = ResultStore(tmp_path / "cache")
        restored = second.get("deadbeef")
        assert restored is not None
        assert second.disk_hits == 1
        assert restored.completion_time == result.completion_time
        assert restored.stats.counters == result.stats.counters

    def test_corrupt_file_is_a_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put("cafe", result)
        (tmp_path / "cafe.json").write_text("{not json", encoding="utf-8")
        fresh = ResultStore(tmp_path)
        assert fresh.get("cafe") is None
        assert fresh.misses == 1

    def test_memory_store_touches_no_disk(self, tmp_path, result, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = ResultStore.memory()
        store.put("beef", result)
        assert list(tmp_path.iterdir()) == []


class TestEnvironmentControls:
    def test_env_path_selects_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "here"))
        store = ResultStore.from_env()
        assert store.root == tmp_path / "here"

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF"])
    def test_env_disables_disk(self, value, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert ResultStore.from_env().root is None

    def test_default_location_used_when_unset(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert ResultStore.from_env().root == default_cache_dir()


class TestInvalidation:
    def test_config_change_misses(self, setup, tmp_path, result):
        store = ResultStore(tmp_path)
        base_point = RunPoint("RT-3", "DEDUP")
        tuned_point = RunPoint(
            "RT-3", "DEDUP", config_overrides={"cluster_size": 4}
        )
        store.put(store.key_for(base_point.fingerprint(setup)), result)
        assert store.get(store.key_for(tuned_point.fingerprint(setup))) is None
        assert store.get(store.key_for(base_point.fingerprint(setup))) is not None
