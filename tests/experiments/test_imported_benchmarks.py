"""Imported ``.npz`` traces as first-class experiment benchmarks."""

from __future__ import annotations

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    execute_spec,
    validate_benchmarks,
)
from repro.experiments.store import ResultStore
from repro.workloads.benchmarks import build_trace, get_profile
from repro.workloads.io import save_trace_set


@pytest.fixture
def tiny_setup(tiny_config):
    return ExperimentSetup(tiny_config, scale=0.05, seed=4)


@pytest.fixture
def imported_npz(tmp_path, tiny_config):
    """A 4-core imported-style archive matching the tiny machine."""
    traces = build_trace(get_profile("DEDUP"), tiny_config, scale=0.05, seed=4)
    traces.provenance = {"format": "csv", "source": "cap.csv"}
    return save_trace_set(traces, tmp_path / "capture.npz")


class TestValidation:
    def test_existing_archive_accepted(self, imported_npz):
        name = f"imported:{imported_npz}"
        assert validate_benchmarks([name]) == [name]

    def test_missing_archive_rejected_with_hint(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist.*repro trace import"):
            validate_benchmarks([f"imported:{tmp_path}/nope.npz"])

    def test_catalog_error_mentions_imported_spelling(self):
        with pytest.raises(ValueError, match="imported:<path-to-npz>"):
            validate_benchmarks(["NOPE"])

    def test_mixed_catalog_and_imported(self, imported_npz):
        names = ["DEDUP", f"imported:{imported_npz}"]
        assert validate_benchmarks(names) == names


class TestTraceFor:
    def test_loads_the_archive(self, tiny_setup, imported_npz):
        traces = tiny_setup.trace_for(f"imported:{imported_npz}")
        assert traces.num_cores == 4
        assert traces.provenance["format"] == "csv"

    def test_memoized_per_setup(self, tiny_setup, imported_npz):
        name = f"imported:{imported_npz}"
        assert tiny_setup.trace_for(name) is tiny_setup.trace_for(name)

    def test_core_count_mismatch_fails_in_simulate(self, imported_npz):
        from repro.experiments.runner import run_one

        setup = ExperimentSetup(MachineConfig.small(), scale=0.05, seed=4)
        with pytest.raises(ValueError, match="4 cores but machine has 16"):
            run_one(setup, "S-NUCA", f"imported:{imported_npz}")


class TestStreamingThreshold:
    def test_small_archives_stay_materialized_by_default(
        self, tiny_setup, imported_npz, monkeypatch
    ):
        monkeypatch.delenv("REPRO_STREAM_THRESHOLD", raising=False)
        traces = tiny_setup.trace_for(f"imported:{imported_npz}")
        assert not getattr(traces, "is_streaming", False)

    def test_zero_threshold_streams_and_results_are_identical(
        self, tiny_config, imported_npz, monkeypatch
    ):
        from repro.experiments.runner import run_one

        name = f"imported:{imported_npz}"
        materialized = run_one(
            ExperimentSetup(tiny_config, scale=0.05, seed=4), "RT-3", name
        )
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "0")
        setup = ExperimentSetup(tiny_config, scale=0.05, seed=4)
        traces = setup.trace_for(name)
        assert traces.is_streaming
        setup.release_decoded(name)  # the streaming no-op surface
        streamed = run_one(setup, "RT-3", name)
        assert streamed.stats.to_dict() == materialized.stats.to_dict()

    def test_negative_threshold_never_streams(
        self, tiny_setup, imported_npz, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "-1")
        traces = tiny_setup.trace_for(f"imported:{imported_npz}")
        assert not getattr(traces, "is_streaming", False)


class TestContentAddressing:
    def _key(self, name, setup):
        point = RunPoint(scheme="S-NUCA", benchmark=name)
        return ResultStore.memory().key_for(point.fingerprint(setup))

    def test_moving_the_file_keeps_the_address(self, tmp_path, tiny_setup,
                                               imported_npz):
        moved = tmp_path / "elsewhere.npz"
        moved.write_bytes(imported_npz.read_bytes())
        assert self._key(f"imported:{imported_npz}", tiny_setup) == \
            self._key(f"imported:{moved}", tiny_setup)

    def test_rewriting_the_file_changes_the_address(self, tmp_path, tiny_setup,
                                                    tiny_config, imported_npz):
        before = self._key(f"imported:{imported_npz}", tiny_setup)
        other = build_trace(get_profile("BARNES"), tiny_config, scale=0.05, seed=9)
        save_trace_set(other, imported_npz)
        assert self._key(f"imported:{imported_npz}", tiny_setup) != before

    def test_scale_and_seed_do_not_split_the_address(self, imported_npz,
                                                     tiny_config):
        """An imported capture is fixed data: two setups differing only
        in scale/seed must share stored results for it."""
        a = ExperimentSetup(tiny_config, scale=0.05, seed=4)
        b = ExperimentSetup(tiny_config, scale=0.50, seed=9)
        name = f"imported:{imported_npz}"
        assert self._key(name, a) == self._key(name, b)
        assert self._key("DEDUP", a) != self._key("DEDUP", b)


class TestEndToEnd:
    def test_grid_executes_and_dedups_imported_points(self, tiny_setup,
                                                      imported_npz):
        name = f"imported:{imported_npz}"
        spec = ExperimentSpec(
            "imported-grid",
            points=(
                RunPoint(scheme="S-NUCA", benchmark=name),
                RunPoint(scheme="RT-3", benchmark=name),
                RunPoint(scheme="S-NUCA", benchmark=name, label="again"),
            ),
        )
        store = ResultStore.memory()
        results = execute_spec(spec, tiny_setup, store=store)
        assert store.misses == 2 and store.hits == 1
        assert set(results[name]) == {"S-NUCA", "RT-3", "again"}
        assert results[name]["S-NUCA"].stats.completion_time > 0

    def test_kernels_agree_on_imported_benchmarks(self, tiny_config,
                                                  imported_npz):
        from repro.experiments.runner import run_one

        name = f"imported:{imported_npz}"
        results = {
            kernel: run_one(
                ExperimentSetup(tiny_config, kernel=kernel), "RT-3", name
            )
            for kernel in ("reference", "fast", "batched", "auto")
        }
        reference = results.pop("reference")
        for kernel, result in results.items():
            assert result.stats.counters == reference.stats.counters, kernel
            assert result.stats.completion_time == reference.stats.completion_time

    def test_cli_runs_an_imported_benchmark(self, tmp_path, small_config,
                                            capsys):
        """`--benchmarks imported:<path>` flows through a registry grid
        command end to end (CLI default machine is small → 16 cores),
        including the Figure 1 profiler, which needs the inferred
        region map."""
        from repro.experiments.__main__ import main

        traces = build_trace(
            get_profile("DEDUP"), small_config, scale=0.05, seed=4
        )
        archive = save_trace_set(traces, tmp_path / "small.npz")
        name = f"imported:{archive}"
        assert main(["fig1", "--benchmarks", name, "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "Figure 1" in captured.out
        assert name in captured.out

    def test_cli_rejects_missing_archive_fast(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig6", "--benchmarks", f"imported:{tmp_path}/absent.npz"])
        assert "does not exist" in capsys.readouterr().err

    def test_parallel_execution_matches_sequential(self, tiny_setup,
                                                   imported_npz):
        name = f"imported:{imported_npz}"
        spec = ExperimentSpec(
            "imported-parallel",
            points=(
                RunPoint(scheme="S-NUCA", benchmark=name),
                RunPoint(scheme="RT-3", benchmark=name),
            ),
        )
        sequential = execute_spec(spec, tiny_setup, store=ResultStore.memory())
        parallel = execute_spec(
            spec, tiny_setup, store=ResultStore.memory(), max_workers=2
        )
        for point in spec.points:
            a = sequential[name][point.col_label]
            b = parallel[name][point.col_label]
            assert a.stats.counters == b.stats.counters
            assert a.stats.completion_time == b.stats.completion_time
