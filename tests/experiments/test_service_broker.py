"""Broker + worker semantics, in-process (threads, no subprocesses)."""

import threading

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import ExperimentSetup
from repro.experiments.spec import ExperimentSpec, RunPoint, execute_spec
from repro.experiments.store import ResultStore
from repro.experiments.service import (
    DistributedRunError,
    PointTask,
    TaskDecodeError,
    Worker,
    WorkQueue,
    execute_spec_distributed,
    make_distributed_executor,
)


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.05, seed=9)


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec("grid", (
        RunPoint(scheme="S-NUCA", benchmark="DEDUP"),
        RunPoint(scheme="RT-3", benchmark="DEDUP"),
        RunPoint(scheme="ASR", benchmark="DEDUP"),
        RunPoint(scheme="RT-3", benchmark="DEDUP", label="dup"),  # same address
    ))


@pytest.fixture(scope="module")
def sequential(spec, setup):
    return execute_spec(spec, setup, ResultStore.memory())


def run_with_background_worker(spec, setup, store_root, queue_root, **options):
    """Broker in this thread, one worker thread attached to the queue."""
    store = ResultStore.shared(store_root)
    done = threading.Event()

    def work():
        queue = WorkQueue.open(queue_root, wait=10.0)
        worker = Worker(queue, ResultStore.shared(store_root), worker_id="bg")
        while not done.is_set() and not queue.stopped:
            if not worker.step():
                done.wait(0.02)
        return None

    thread = threading.Thread(target=work)
    thread.start()
    try:
        return execute_spec_distributed(
            spec, setup, store, queue_root, timeout=120.0, **options
        ), store
    finally:
        done.set()
        thread.join()


class TestPointTask:
    def test_payload_roundtrip(self, spec, setup):
        for point in spec.points:
            task = PointTask.from_point(point, setup, "k")
            rebuilt = PointTask.from_payload(task.to_payload())
            assert rebuilt == task

    def test_version_skew_raises(self, spec, setup):
        task = PointTask.from_point(spec.points[0], setup, "k")
        payload = task.to_payload()
        payload["task_version"] = 99
        with pytest.raises(TaskDecodeError, match="version"):
            PointTask.from_payload(payload)

    def test_execute_matches_sequential(self, spec, setup, sequential):
        point = spec.points[0]
        task = PointTask.from_point(point, setup, "k")
        result = task.execute()
        expected = sequential.result_for(point)
        assert result.stats.completion_time == expected.stats.completion_time
        assert result.energy_breakdown == expected.energy_breakdown

    def test_asr_search_stays_inside_the_task(self, spec, setup, sequential):
        (asr_point,) = [p for p in spec.points if p.scheme == "ASR"]
        task = PointTask.from_point(asr_point, setup, "k")
        assert task.asr_levels == tuple(setup.asr_levels)
        result = task.execute()
        expected = sequential.result_for(asr_point)
        assert result.asr_level == expected.asr_level
        assert result.total_energy == expected.total_energy


class TestDistributedExecution:
    def test_bit_identical_to_sequential(
        self, spec, setup, sequential, tmp_path
    ):
        distributed, store = run_with_background_worker(
            spec, setup, tmp_path / "store", tmp_path / "q"
        )
        for point in spec.points:
            ours = distributed.result_for(point)
            theirs = sequential.result_for(point)
            assert ours.stats == theirs.stats
            assert ours.energy_breakdown == theirs.energy_breakdown
            assert ours.asr_level == theirs.asr_level

    def test_accounting_matches_sequential(self, spec, setup, tmp_path):
        _, store = run_with_background_worker(
            spec, setup, tmp_path / "store", tmp_path / "q"
        )
        # 4 points, 3 unique addresses: 1 hit (the duplicate), 3 misses
        # — identical to what the sequential executor would count.
        assert store.hits == 1
        assert store.misses == 3

    def test_second_run_fully_store_served(self, spec, setup, tmp_path):
        run_with_background_worker(spec, setup, tmp_path / "store", tmp_path / "q")
        warm = ResultStore.shared(tmp_path / "store")
        again = execute_spec_distributed(
            spec, setup, warm, tmp_path / "q2", timeout=10.0
        )
        assert warm.misses == 0 and warm.hits == 4
        assert len(again.points) == 4
        # No queue was ever created: nothing was missed.
        assert not (tmp_path / "q2" / "queue.json").exists()

    def test_memory_store_rejected(self, spec, setup, tmp_path):
        with pytest.raises(ValueError, match="disk-backed shared ResultStore"):
            execute_spec_distributed(
                spec, setup, ResultStore.memory(), tmp_path / "q"
            )

    def test_worker_read_through_completes_without_simulating(
        self, spec, setup, tmp_path
    ):
        store_root = tmp_path / "store"
        run_with_background_worker(spec, setup, store_root, tmp_path / "q")
        # Resubmit the same points to a fresh queue; a worker should
        # serve every lease from the store.
        queue = WorkQueue.create(tmp_path / "q2", num_shards=1)
        for index, point in enumerate(spec.points[:3]):
            key = ResultStore.memory().key_for(point.fingerprint(setup))
            task = PointTask.from_point(point, setup, key)
            queue.submit(key, task.to_payload())
        worker = Worker(queue, ResultStore.shared(store_root), worker_id="w")
        stats = worker.drain()
        assert stats.store_served == 3
        assert stats.executed == 0


class TestFailureSurfacing:
    def test_worker_error_reaches_the_broker(self, setup, tmp_path):
        # An unknown scheme label passes fingerprinting (the address is
        # content, not validity) but explodes in the worker's run_one.
        bad = ExperimentSpec("bad", (
            RunPoint(scheme="NOPE", benchmark="DEDUP"),
        ))
        store = ResultStore.shared(tmp_path / "store")
        queue_root = tmp_path / "q"
        done = threading.Event()

        def work():
            queue = WorkQueue.open(queue_root, wait=10.0)
            worker = Worker(queue, ResultStore.shared(tmp_path / "store"))
            while not done.is_set() and not queue.stopped:
                if not worker.step():
                    done.wait(0.02)

        thread = threading.Thread(target=work)
        thread.start()
        try:
            with pytest.raises(DistributedRunError) as excinfo:
                execute_spec_distributed(
                    bad, setup, store, queue_root,
                    max_attempts=2, retry_backoff=0.01, timeout=60.0,
                )
        finally:
            done.set()
            thread.join()
        message = str(excinfo.value)
        assert "failed after 2 attempt(s)" in message
        # The worker's traceback travels back to the broker's caller.
        assert "Traceback" in message


class TestExecutorFactory:
    def test_subdir_per_spec_isolates_grids(self, spec, setup, tmp_path):
        executor = make_distributed_executor(
            tmp_path / "q", workers=0, subdir_per_spec=True, timeout=0.5,
        )
        store = ResultStore.shared(tmp_path / "store")
        # No workers attached: the run times out, but in its own subdir.
        with pytest.raises(DistributedRunError, match="timed out"):
            executor(spec, setup, store)
        subdirs = list((tmp_path / "q").iterdir())
        assert len(subdirs) == 1
        assert subdirs[0].name.startswith("run-000-grid")

    def test_plugs_into_execute_spec(self, spec, setup, sequential, tmp_path):
        queue_root = tmp_path / "q"
        done = threading.Event()

        def work():
            # The executor's queue lives in a run-NNN subdir; wait for it.
            import time
            deadline = time.time() + 10.0
            target = None
            while target is None and time.time() < deadline:
                candidates = list(queue_root.glob("run-*/queue.json"))
                if candidates:
                    target = candidates[0].parent
                done.wait(0.02)
            if target is None:
                return
            queue = WorkQueue.open(target, wait=5.0)
            worker = Worker(queue, ResultStore.shared(tmp_path / "store"))
            while not done.is_set() and not queue.stopped:
                if not worker.step():
                    done.wait(0.02)

        thread = threading.Thread(target=work)
        thread.start()
        store = ResultStore.shared(tmp_path / "store")
        try:
            results = execute_spec(
                spec, setup, store,
                executor=make_distributed_executor(queue_root, timeout=60.0),
            )
        finally:
            done.set()
            thread.join()
        for point in spec.points:
            assert (
                results.result_for(point).stats
                == sequential.result_for(point).stats
            )
