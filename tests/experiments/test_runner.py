"""Experiment runner: trace caching, ASR search, matrices."""

import pytest

from repro.common.params import MachineConfig
from repro.experiments.runner import (
    ExperimentSetup,
    run_asr_best,
    run_matrix,
    run_one,
)


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.08, seed=2)


class TestSetup:
    def test_trace_cache_reuses_objects(self, setup):
        first = setup.trace_for("DEDUP")
        second = setup.trace_for("DEDUP")
        assert first is second

    def test_small_factory(self):
        setup = ExperimentSetup.small(scale=0.5)
        assert setup.config.num_cores == 16
        assert setup.scale == 0.5


class TestRunOne:
    def test_returns_energy_breakdown(self, setup):
        result = run_one(setup, "S-NUCA", "DEDUP")
        assert result.scheme == "S-NUCA"
        assert result.benchmark == "DEDUP"
        assert result.total_energy > 0
        assert result.completion_time > 0
        assert "DRAM" in result.energy_breakdown

    def test_config_override(self, setup):
        tuned = setup.config.with_overrides(replication_threshold=5)
        result = run_one(setup, "Locality", "DEDUP", config=tuned)
        assert result.stats is not None

    def test_locality_uses_scaled_directory_energy(self, setup):
        snuca = run_one(setup, "S-NUCA", "DEDUP")
        locality = run_one(setup, "RT-3", "DEDUP")
        # Both ran; the locality breakdown includes the 1.2x directory scale
        # (hard to compare directly, but the component must be present).
        assert "Directory" in locality.energy_breakdown
        assert locality.energy_breakdown["Directory"] > 0


class TestASRSearch:
    def test_asr_reports_chosen_level(self, setup):
        result = run_asr_best(setup, "PATRICIA")
        assert result.asr_level in (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_asr_label_triggers_search(self, setup):
        result = run_one(setup, "ASR", "PATRICIA")
        assert result.asr_level is not None

    def test_explicit_level_skips_search(self, setup):
        result = run_one(setup, "ASR", "PATRICIA", replication_level=0.25)
        assert result.asr_level is None

    def test_best_level_minimizes_edp(self, setup):
        best = run_asr_best(setup, "PATRICIA")
        best_edp = best.total_energy * best.completion_time
        for level in (0.0, 1.0):
            other = run_one(setup, "ASR", "PATRICIA", replication_level=level)
            other_edp = other.total_energy * other.completion_time
            assert best_edp <= other_edp * 1.0001


class TestRunMatrix:
    def test_matrix_shape(self, setup):
        results = run_matrix(setup, ["S-NUCA", "RT-3"], ["DEDUP", "BARNES"])
        assert set(results) == {"DEDUP", "BARNES"}
        assert set(results["DEDUP"]) == {"S-NUCA", "RT-3"}

    def test_generator_schemes_cover_every_benchmark(self, setup):
        """A one-shot iterable must not be exhausted after the first row."""
        results = run_matrix(
            setup, (scheme for scheme in ("S-NUCA", "RT-3")), ["DEDUP", "BARNES"]
        )
        assert set(results["BARNES"]) == {"S-NUCA", "RT-3"}
