"""Section 2.4.1 storage arithmetic: the paper's numbers, digit for digit."""

import pytest

from repro.common.params import MachineConfig
from repro.experiments.storage import render_storage, storage_report


@pytest.fixture(scope="module")
def report():
    return storage_report(MachineConfig.paper())


class TestPaperNumbers:
    def test_replica_reuse_1kb(self, report):
        assert report.replica_reuse_kb == pytest.approx(1.0)
        assert report.replica_reuse_bits_per_entry == 2

    def test_limited3_13_5kb(self, report):
        assert report.limited_k_kb == pytest.approx(13.5)
        # 3 cores x (2-bit counter + 1 mode bit + 6-bit core id) = 27 bits.
        assert report.limited_k_bits_per_entry == 27

    def test_complete_96kb(self, report):
        assert report.complete_kb == pytest.approx(96.0)
        assert report.complete_bits_per_entry == 192

    def test_ackwise4_12kb(self, report):
        assert report.ackwise_kb == pytest.approx(12.0)
        assert report.ackwise_bits_per_entry == 24

    def test_fullmap_32kb(self, report):
        assert report.fullmap_kb == pytest.approx(32.0)
        assert report.fullmap_bits_per_entry == 64

    def test_locality_total_14_5kb(self, report):
        """'Our classifier is implemented with 14.5KB storage overhead
        per 256KB LLC slice' (Conclusion)."""
        assert report.locality_total_kb == pytest.approx(14.5)

    def test_limited_plus_ackwise_below_fullmap(self, report):
        """'uses slightly less storage than the Full Map protocol'."""
        locality_total = report.locality_total_kb + report.ackwise_kb
        fullmap_total = report.fullmap_kb
        assert locality_total < fullmap_total + report.ackwise_kb
        # More precisely: 12 + 14.5 = 26.5 KB < 32 KB full-map bits alone.
        assert report.ackwise_kb + report.locality_total_kb < report.fullmap_kb

    def test_limited_overhead_4_5_percent(self, report):
        assert report.limited_overhead_vs_ackwise == pytest.approx(0.045, abs=0.005)

    def test_complete_overhead_30_percent(self, report):
        assert report.complete_overhead_vs_ackwise == pytest.approx(0.30, abs=0.01)


class TestScaling:
    def test_1024_core_complete_blowup(self):
        """Section 2.2.5: the Complete classifier exceeds 5x at 1024 cores."""
        config = MachineConfig.paper().with_overrides(num_cores=1024)
        report = storage_report(config)
        # Complete classifier bits vs the 256KB of data per slice.
        data_bits = config.llc_slice.capacity_bytes * 8
        classifier_bits = report.complete_bits_per_entry * report.llc_entries
        assert classifier_bits / data_bits > 1.0  # grossly unscalable

    def test_limited_k_grows_linearly_in_k(self):
        config = MachineConfig.paper()
        k3 = storage_report(config, k=3)
        k5 = storage_report(config, k=5)
        assert k5.limited_k_bits_per_entry == pytest.approx(
            k3.limited_k_bits_per_entry * 5 / 3
        )

    def test_limited5_is_9kb_more_than_limited3(self):
        """Section 4.3: Limited_5 'incurs an additional 9KB per core'."""
        config = MachineConfig.paper()
        delta = storage_report(config, k=5).limited_k_kb - storage_report(config, k=3).limited_k_kb
        assert delta == pytest.approx(9.0)


class TestRendering:
    def test_render_contains_key_numbers(self, report):
        text = render_storage(report)
        assert "13.5 KB" in text
        assert "96.0 KB" in text
        assert "14.5 KB" in text
