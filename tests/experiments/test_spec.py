"""Declarative experiment API: RunPoints, specs, registry, executor."""

import pytest

from repro.common.params import MachineConfig
from repro.experiments import ablations, comparison, fig9_limitedk, fig10_cluster
from repro.experiments import rt_sweep
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentSetup, run_one
from repro.experiments.spec import (
    ExperimentSpec,
    RunPoint,
    command_names,
    execute_spec,
    get_command,
    registered_commands,
    resolve_benchmarks,
    validate_benchmarks,
)
from repro.experiments.store import ResultStore

#: Every legacy CLI command and whether it maps to a spec grid.
LEGACY_COMMANDS = {
    "fig1": False,
    "fig6": True,
    "fig7": True,
    "fig8": True,
    "fig9": True,
    "fig10": True,
    "rt-sweep": True,
    "replacement": True,
    "oracle": True,
    "tla": True,
    "strategy": True,
    "organization": True,
    "breakdown": True,
    "table1": False,
    "table2": False,
    "storage": False,
    "summary": True,
}


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.05, seed=2)


class TestRunPoint:
    def test_frozen_and_hashable(self):
        point = RunPoint("RT-3", "DEDUP")
        assert hash(point) == hash(RunPoint("RT-3", "DEDUP"))
        with pytest.raises(AttributeError):
            point.scheme = "S-NUCA"

    def test_label_defaults_to_scheme(self):
        assert RunPoint("VR", "DEDUP").col_label == "VR"
        assert RunPoint("VR", "DEDUP", label="victim").col_label == "victim"

    def test_overrides_canonicalized(self):
        by_dict = RunPoint("RT-3", "DEDUP",
                           config_overrides={"cluster_size": 4,
                                             "replication_threshold": 3})
        by_pairs = RunPoint("RT-3", "DEDUP",
                            config_overrides=(("replication_threshold", 3),
                                              ("cluster_size", 4)))
        assert by_dict == by_pairs
        assert hash(by_dict) == hash(by_pairs)

    def test_effective_config_applies_overrides(self, setup):
        point = RunPoint("Locality", "DEDUP",
                         config_overrides=(("classifier_k", 5),))
        config = point.effective_config(setup.config)
        assert config.classifier_k == 5
        plain = RunPoint("Locality", "DEDUP")
        assert plain.effective_config(setup.config) is setup.config


class TestFingerprint:
    def test_stable_across_calls(self, setup):
        point = RunPoint("RT-3", "DEDUP", config_overrides={"cluster_size": 4})
        store = ResultStore.memory()
        first = store.key_for(point.fingerprint(setup))
        second = store.key_for(point.fingerprint(setup))
        assert first == second

    def test_label_and_kernel_do_not_change_the_address(self, setup):
        store = ResultStore.memory()
        base = store.key_for(RunPoint("RT-3", "DEDUP").fingerprint(setup))
        labeled = store.key_for(
            RunPoint("RT-3", "DEDUP", label="probe").fingerprint(setup)
        )
        batched = store.key_for(
            RunPoint("RT-3", "DEDUP", kernel="batched").fingerprint(setup)
        )
        assert base == labeled == batched

    def test_config_scale_seed_invalidate(self, setup):
        store = ResultStore.memory()
        base = store.key_for(RunPoint("RT-3", "DEDUP").fingerprint(setup))
        overridden = store.key_for(
            RunPoint("RT-3", "DEDUP",
                     config_overrides={"cluster_size": 4}).fingerprint(setup)
        )
        rescaled = store.key_for(
            RunPoint("RT-3", "DEDUP", scale=0.1).fingerprint(setup)
        )
        reseeded = store.key_for(
            RunPoint("RT-3", "DEDUP", seed=9).fingerprint(setup)
        )
        assert len({base, overridden, rescaled, reseeded}) == 4

    def test_scheme_kwargs_enter_the_address(self, setup):
        store = ResultStore.memory()
        base = store.key_for(RunPoint("RT-3", "DEDUP").fingerprint(setup))
        oracle = store.key_for(
            RunPoint("RT-3", "DEDUP",
                     scheme_kwargs={"oracle_lookup": True}).fingerprint(setup)
        )
        assert base != oracle

    def test_asr_search_space_enters_the_address(self, setup):
        store = ResultStore.memory()
        narrowed = ExperimentSetup(
            setup.config, scale=setup.scale, seed=setup.seed,
            asr_levels=(0.25,),
        )
        search_point = RunPoint("ASR", "DEDUP")
        assert store.key_for(search_point.fingerprint(setup)) != store.key_for(
            search_point.fingerprint(narrowed)
        )
        # An explicit level skips the search: the space is irrelevant.
        pinned = RunPoint("ASR", "DEDUP",
                          scheme_kwargs={"replication_level": 0.5})
        assert store.key_for(pinned.fingerprint(setup)) == store.key_for(
            pinned.fingerprint(narrowed)
        )
        # Non-ASR points never depend on the ASR search space.
        plain = RunPoint("RT-3", "DEDUP")
        assert store.key_for(plain.fingerprint(setup)) == store.key_for(
            plain.fingerprint(narrowed)
        )


class TestBenchmarkValidation:
    def test_unknown_name_lists_valid_benchmarks(self):
        with pytest.raises(ValueError) as excinfo:
            validate_benchmarks(["DEDUP", "NOPE"])
        message = str(excinfo.value)
        assert "'NOPE'" in message
        assert "BARNES" in message  # the valid list is spelled out

    def test_resolve_defaults(self):
        assert resolve_benchmarks(None, ("DEDUP",)) == ["DEDUP"]
        assert resolve_benchmarks(["BARNES"], ("DEDUP",)) == ["BARNES"]

    def test_spec_builders_validate_up_front(self, setup):
        with pytest.raises(ValueError):
            comparison.comparison_spec(setup, ["BOGUS"])


class TestRegistry:
    def test_every_legacy_command_is_registered(self):
        names = command_names()
        for name in LEGACY_COMMANDS:
            assert name in names

    def test_grid_commands_expose_spec_builders(self, setup):
        for name, is_grid in LEGACY_COMMANDS.items():
            command = get_command(name)
            assert command.is_grid == is_grid
            if is_grid:
                spec = command.build(setup, ["DEDUP"])
                assert isinstance(spec, ExperimentSpec)
                assert spec.points
                assert all(point.benchmark == "DEDUP" for point in spec.points)

    def test_descriptions_present(self):
        for command in registered_commands():
            assert command.description

    def test_grid_shapes_match_legacy_loops(self, setup):
        fig9 = fig9_limitedk.fig9_spec(setup)
        assert len(fig9.points) == len(fig9_limitedk.FIG9_BENCHMARKS) * len(
            fig9_limitedk.K_VALUES
        )
        assert fig9.baseline == f"k={setup.config.num_cores}"
        fig10 = fig10_cluster.fig10_spec(setup)
        sizes = fig10_cluster.cluster_sizes(setup.config.num_cores)
        assert fig10.labels() == tuple(f"C-{size}" for size in sizes)
        sweep = rt_sweep.rt_sweep_spec(setup)
        assert sweep.labels() == rt_sweep.RT_VALUES
        tla = ablations.tla_spec(setup, ["DEDUP"])
        assert tla.labels() == ("modified_lru", "lru", "tla")


class TestExecuteSpec:
    def test_matches_run_one(self, setup):
        spec = ExperimentSpec(
            "unit", (RunPoint("S-NUCA", "DEDUP"), RunPoint("RT-3", "DEDUP"))
        )
        results = execute_spec(spec, setup)
        direct = run_one(setup, "S-NUCA", "DEDUP")
        assert results["DEDUP"]["S-NUCA"].completion_time == direct.completion_time
        assert results["DEDUP"]["S-NUCA"].total_energy == direct.total_energy

    def test_duplicate_points_simulated_once(self, setup):
        store = ResultStore.memory()
        spec = ExperimentSpec(
            "dupes",
            (
                RunPoint("RT-3", "DEDUP", label="first"),
                RunPoint("RT-3", "DEDUP", label="second"),
            ),
        )
        results = execute_spec(spec, setup, store=store)
        assert store.misses == 1
        assert store.hits == 1
        assert results["DEDUP"]["first"] is results["DEDUP"]["second"]

    def test_store_reused_across_specs(self, setup):
        store = ResultStore.memory()
        spec = ExperimentSpec("one", (RunPoint("S-NUCA", "DEDUP"),))
        execute_spec(spec, setup, store=store)
        execute_spec(spec, setup, store=store)
        assert store.misses == 1
        assert store.hits == 1

    def test_release_decoded_centralized(self, setup):
        released = []
        original = setup.release_decoded
        setup.release_decoded = lambda benchmark: (
            released.append(benchmark), original(benchmark),
        )
        try:
            spec = ExperimentSpec(
                "release",
                (
                    RunPoint("S-NUCA", "DEDUP"),
                    RunPoint("RT-3", "DEDUP"),
                    RunPoint("S-NUCA", "BARNES"),
                ),
            )
            execute_spec(spec, setup, store=ResultStore.memory())
        finally:
            setup.release_decoded = original
        assert released == ["DEDUP", "BARNES"]

    def test_per_point_seed_override(self, setup):
        spec = ExperimentSpec(
            "seeds",
            (
                RunPoint("S-NUCA", "DEDUP", label="seed-2"),
                RunPoint("S-NUCA", "DEDUP", seed=7, label="seed-7"),
            ),
        )
        results = execute_spec(spec, setup, store=ResultStore.memory())
        row = results["DEDUP"]
        assert row["seed-2"].completion_time != row["seed-7"].completion_time
