"""Unit-level checks on the comparison assembly functions (no simulation)."""

import pytest

from repro.experiments.comparison import (
    average_row,
    fig6_energy,
    fig7_completion,
)
from repro.experiments.runner import RunResult
from repro.sim.stats import SimStats


def _result(scheme, benchmark, energy, time):
    stats = SimStats(num_cores=4)
    stats.completion_time = time
    return RunResult(
        scheme, benchmark, stats,
        energy_breakdown={"DRAM": energy},
    )


@pytest.fixture
def matrix():
    return {
        "A": {
            "S-NUCA": _result("S-NUCA", "A", energy=100.0, time=1000.0),
            "RT-3": _result("RT-3", "A", energy=80.0, time=900.0),
        },
        "B": {
            "S-NUCA": _result("S-NUCA", "B", energy=200.0, time=2000.0),
            "RT-3": _result("RT-3", "B", energy=100.0, time=1000.0),
        },
    }


class TestAssembly:
    def test_fig6_normalization(self, matrix):
        table = fig6_energy(matrix)
        assert table["A"]["RT-3"] == pytest.approx(0.8)
        assert table["B"]["RT-3"] == pytest.approx(0.5)

    def test_fig7_normalization(self, matrix):
        table = fig7_completion(matrix)
        assert table["A"]["RT-3"] == pytest.approx(0.9)
        assert table["B"]["RT-3"] == pytest.approx(0.5)

    def test_average_is_arithmetic(self, matrix):
        """The paper plots Average, not Geometric-Mean (Figure 6 caption)."""
        table = fig6_energy(matrix)
        avg = average_row(table)
        assert avg["RT-3"] == pytest.approx((0.8 + 0.5) / 2)

    def test_run_result_totals(self):
        result = _result("X", "Y", energy=123.0, time=7.0)
        assert result.total_energy == 123.0
        assert result.completion_time == 7.0
